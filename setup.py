"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``.  This file exists
so the package can also be installed in environments whose tooling predates
PEP 660 editable installs (e.g. ``python setup.py develop`` in offline
environments without the ``wheel`` package).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "THEMIS: fairness in federated stream processing under overload "
        "(SIGMOD 2016 reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy", "scipy", "networkx"],
)
