"""Discrete-event driver of a :class:`~repro.federation.fsps.FederatedSystem`.

Where the lockstep ``FederatedSystem.tick()`` advances every component once
per global shedding interval, the :class:`EventRuntime` schedules each
component's rounds as independent events on a deterministic heap
(:mod:`repro.runtime.scheduler`):

* one **source-generation** event stream per deployed query (window
  ``(previous fire, now]``, cadence = the federation's shedding interval);
* one **shedding-round** event stream per node, at the *node's own* cadence —
  ``SimulationConfig.node_shedding_intervals`` / ``FspsNode.shedding_interval``
  override the federation default, so sites in different administrative
  domains can shed at different rates (site autonomy, C3);
* one **coordinator** event stream per query (dissemination round gated by the
  coordinator's ``update_interval``, followed by the result-SIC snapshot);
* one **delivery** event per distinct network delivery instant.

For homogeneous intervals a seeded event-driven run is *result-identical* to
the lockstep loop — same per-query SIC series, same shed/received counts,
same bytes on the wire (asserted by
``tests/integration/test_event_runtime.py``).  The equal-time phase ordering
that makes this hold is encoded in the scheduler's event priorities; see
:mod:`repro.runtime.scheduler`.

On top of the scheduler the runtime exposes the mid-run **lifecycle API**:
queries can be deployed and undeployed and nodes added, decommissioned or
crash-failed while the simulation is running — each operation atomically
mutates the federation state (source re-routing, coordinator teardown) and
starts or cancels the affected event streams.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Optional, Sequence, Set, Tuple as PyTuple

from ..federation.coordinator import QueryCoordinator
from ..federation.fsps import (
    DeployedQuery,
    FederatedSystem,
    MigrationReport,
    RejoinReport,
)
from ..federation.node import FspsNode
from .scheduler import (
    PRIORITY_COORDINATOR,
    PRIORITY_DELIVERY,
    PRIORITY_NODE,
    PRIORITY_POST_DELIVERY,
    PRIORITY_SOURCE,
    EventScheduler,
)

__all__ = ["EventRuntime"]


class EventRuntime:
    """Drives a federated deployment from a discrete-event scheduler.

    Args:
        system: the federation to drive.  Components already present (nodes,
            queries, coordinators) get their event streams scheduled
            immediately; later lifecycle calls must go through the runtime so
            event streams stay in sync with the deployment state.
        node_intervals: per-node shedding-interval overrides (node id →
            seconds).  Falls back to ``FspsNode.shedding_interval`` and then
            to the federation's global interval.
        timer: optional wall-clock callable forwarded to the nodes' shedding
            rounds (the §7.6 shedder-overhead measurement).
        checkpoint_interval: cadence (seconds) of the federation-wide
            checkpoint round (``FederatedSystem.checkpoint_all``) that keeps
            the coordinator-held fragment checkpoints and coordinator standby
            states fresh — the recovery points for :meth:`rejoin_node` and
            :meth:`fail_coordinator`.  ``None`` (default) disables periodic
            checkpointing; checkpoints never mutate state, so enabling them
            does not change a run's results.
    """

    def __init__(
        self,
        system: FederatedSystem,
        node_intervals: Optional[Mapping[str, float]] = None,
        timer: Optional[Callable[[], float]] = None,
        checkpoint_interval: Optional[float] = None,
    ) -> None:
        if checkpoint_interval is not None and checkpoint_interval <= 0:
            raise ValueError(
                f"checkpoint_interval must be positive, got {checkpoint_interval}"
            )
        self.system = system
        self.timer = timer
        self.checkpoint_interval = checkpoint_interval
        self.default_interval = system.shedding_interval
        self.scheduler = EventScheduler(start=system.now)
        self._node_intervals: Dict[str, float] = dict(node_intervals or {})
        # (kind, id) -> recurring-event handle, so lifecycle ops can cancel.
        self._events: Dict[PyTuple[str, str], object] = {}
        # Delivery instants already covered by a scheduled event; one event
        # per distinct (time, priority) drains every message due then.
        self._pending_deliveries: Set[PyTuple[float, int]] = set()
        # The run horizon advances by whole default intervals, accumulated
        # with the same float additions the recurring events use, so the
        # final round of a run is never missed to rounding.
        self._horizon = system.now
        if system.network.send_listener is not None:
            raise ValueError(
                "the system's network already has a send listener; "
                "is another runtime attached?"
            )
        # Bound once so close() can compare identity when detaching.
        self._send_hook = self._on_send
        system.network.send_listener = self._send_hook
        for node in system.nodes.values():
            self._schedule_node(node)
        for query in system.queries.values():
            self._schedule_query_sources(query)
        for coordinator in system.coordinators.all():
            self._schedule_coordinator(coordinator)
        if checkpoint_interval is not None:
            self._schedule_checkpoints(checkpoint_interval)

    # ----------------------------------------------------------------- running
    @property
    def now(self) -> float:
        return self.scheduler.now

    def run(
        self,
        duration_seconds: Optional[float] = None,
        ticks: Optional[int] = None,
    ) -> None:
        """Advance the simulation by ``duration_seconds`` (or ``ticks``).

        The duration is quantized to whole default shedding intervals (like
        the lockstep driver, which can only advance tick by tick); lifecycle
        methods may be called between ``run`` calls — or from within event
        callbacks — to change the deployment mid-run.
        """
        if ticks is None:
            if duration_seconds is None or duration_seconds <= 0:
                raise ValueError(
                    f"duration must be positive, got {duration_seconds}"
                )
            ticks = max(1, int(round(duration_seconds / self.default_interval)))
        for _ in range(ticks):
            self._horizon += self.default_interval
        self.scheduler.run_until(self._horizon)
        self.system.now = self._horizon
        self.system.ticks += ticks

    def close(self) -> None:
        """Detach from the system's network (for reuse of the system)."""
        if self.system.network.send_listener is self._send_hook:
            self.system.network.send_listener = None

    # --------------------------------------------------------------- lifecycle
    def _sync_system_clock(self) -> None:
        """Advance ``system.now`` to the scheduler's current instant.

        ``run()`` syncs it at the horizon, but lifecycle methods may also be
        called from *within* event callbacks, where only the scheduler knows
        the current time — and ``deploy_query`` stamps ``deployed_at`` (the
        anchor of the stale-message drop guard in ``dispatch``) from
        ``system.now``.
        """
        if self.scheduler.now > self.system.now:
            self.system.now = self.scheduler.now

    def deploy_query(
        self,
        query_id: str,
        fragments: Mapping[str, object],
        sources: Sequence[object],
        placement: Mapping[str, str],
        nominal_rates: Optional[Dict[str, float]] = None,
    ) -> DeployedQuery:
        """Deploy a query mid-run and start its event streams.

        Source generation begins with the window opening at the current
        time; the query's coordinator round joins the global cadence.
        """
        self._sync_system_clock()
        deployed = self.system.deploy_query(
            query_id, fragments, sources, placement, nominal_rates=nominal_rates
        )
        self._schedule_query_sources(deployed)
        self._schedule_coordinator(self.system.coordinators.coordinator(query_id))
        return deployed

    def undeploy_query(self, query_id: str) -> QueryCoordinator:
        """Stop a query's event streams and remove it from the federation."""
        coordinator = self.system.undeploy_query(query_id)
        self._cancel("source", query_id)
        self._cancel("coordinator", query_id)
        return coordinator

    def add_node(
        self, node: FspsNode, shedding_interval: Optional[float] = None
    ) -> FspsNode:
        """Add a node mid-run; its first shedding round is one interval out."""
        self.system.add_node(node)
        if shedding_interval is not None:
            self._node_intervals[node.node_id] = float(shedding_interval)
        self._schedule_node(node)
        return node

    def migrate_fragment(
        self, fragment_id: str, target_node_id: str
    ) -> MigrationReport:
        """Live-migrate a fragment mid-run (drain → checkpoint → reroute →
        resume; see :meth:`FederatedSystem.migrate_fragment`).

        The protocol is atomic at the current scheduler instant: new sends
        are rerouted immediately, in-flight deliveries are replayed on the
        target in their original ``(time, priority, seq)`` order, and no
        event stream needs rescheduling (source-generation streams are
        per-query and node rounds are per-node — neither follows the
        fragment).
        """
        self._sync_system_clock()
        return self.system.migrate_fragment(fragment_id, target_node_id)

    def remove_node(
        self, node_id: str, migrate_to: Optional[Sequence[str]] = None
    ) -> FspsNode:
        """Gracefully decommission a node mid-run and stop its rounds.

        Hosted fragments are live-migrated to the remaining nodes (or the
        explicit ``migrate_to`` targets) before the node leaves — see
        :meth:`FederatedSystem.remove_node`.
        """
        self._sync_system_clock()
        node = self.system.remove_node(node_id, migrate_to=migrate_to)
        self._cancel("node", node_id)
        # A node later re-added under the same id must not inherit the
        # departed node's cadence override.
        self._node_intervals.pop(node_id, None)
        return node

    def fail_node(self, node_id: str) -> FspsNode:
        """Crash-fail a node mid-run: rounds stop, state handled by the FSPS."""
        self._sync_system_clock()
        node = self.system.fail_node(node_id)
        self._cancel("node", node_id)
        self._node_intervals.pop(node_id, None)
        return node

    def crash_node_silently(self, node_id: str) -> None:
        """Kill a node the way a real machine dies: without telling anyone.

        The node's shedding rounds stop and its network endpoint goes dead
        (inbound and outbound transmissions are discarded), but the
        federation's control plane is *not* informed — the node stays in
        ``system.nodes``, sources keep routing to it, and no lost-placement
        record is taken.  Detecting the silence and driving the
        :meth:`fail_node` → :meth:`rejoin_node` recovery is the failure
        detector's job (:mod:`repro.runtime.heartbeat`); fault plans use this
        entry point for planned crashes (:mod:`repro.faults`).
        """
        if node_id not in self.system.nodes:
            raise ValueError(f"node {node_id!r} does not exist")
        self._cancel("node", node_id)
        self.system.network.dead_endpoints.add(node_id)

    def repair_node(self, node_id: str) -> None:
        """Bring a silently-crashed endpoint back online (machine reboot).

        Only the network endpoint is revived; the process state is gone.  If
        the crash was detected in the meantime, the failure detector's next
        sweep rebuilds the node and rejoins it from checkpoints.  If it was
        *not* detected yet, the node cannot simply resume — its rounds were
        cancelled and its in-memory state is stale — so the endpoint repair
        also leaves recovery to the detector.
        """
        self.system.network.dead_endpoints.discard(node_id)

    def node_running(self, node_id: str) -> bool:
        """True if the node's shedding-round stream is scheduled.

        Distinguishes a live node from a silently-crashed one still present
        in ``system.nodes``: only a running process emits heartbeats, so the
        failure detector keys its beacons off this rather than membership.
        """
        return ("node", node_id) in self._events

    def rejoin_node(
        self, node: FspsNode, shedding_interval: Optional[float] = None
    ) -> RejoinReport:
        """Rejoin a crash-failed node id mid-run with a fresh node instance.

        Fragments are restored from the last coordinator-held checkpoints
        (see :meth:`FederatedSystem.rejoin_node`); the node's shedding
        rounds restart one interval out, like :meth:`add_node`.
        """
        self._sync_system_clock()
        report = self.system.rejoin_node(node)
        if shedding_interval is not None:
            self._node_intervals[node.node_id] = float(shedding_interval)
        self._schedule_node(node)
        return report

    def fail_coordinator(self, query_id: str) -> QueryCoordinator:
        """Crash-fail a query's coordinator mid-run and promote a standby.

        The failed coordinator's event stream is cancelled and the promoted
        standby's stream starts one interval out (the failover gap); the
        failed coordinator is returned for loss accounting.
        """
        self._sync_system_clock()
        self._cancel("coordinator", query_id)
        failed = self.system.fail_coordinator(query_id)
        self._schedule_coordinator(
            self.system.coordinators.coordinator(query_id)
        )
        return failed

    def checkpoint_now(self) -> int:
        """Take one federation-wide checkpoint round at the current instant."""
        self._sync_system_clock()
        return self.system.checkpoint_all(self.system.now)

    # -------------------------------------------------------- event scheduling
    def _cancel(self, kind: str, key: str) -> None:
        handle = self._events.pop((kind, key), None)
        if handle is not None:
            handle.cancel()

    def _node_interval(self, node: FspsNode) -> float:
        override = self._node_intervals.get(node.node_id)
        if override is not None:
            return override
        if node.shedding_interval is not None:
            return node.shedding_interval
        return self.default_interval

    def _schedule_node(self, node: FspsNode) -> None:
        interval = self._node_interval(node)
        key = ("node", node.node_id)

        def fire(now: float) -> None:
            self.system.run_node_round(node, now, timer=self.timer)
            self._events[key] = self.scheduler.schedule(
                now + interval, PRIORITY_NODE, fire
            )

        self._events[key] = self.scheduler.schedule(
            self.scheduler.now + interval, PRIORITY_NODE, fire
        )

    def _schedule_query_sources(self, query: DeployedQuery) -> None:
        interval = self.default_interval
        key = ("source", query.query_id)
        # The generation window opens where the previous one closed, so no
        # simulated time is double-generated or skipped.
        state = {"start": self.scheduler.now}

        def fire(now: float) -> None:
            self.system.generate_query_sources(query, state["start"], now)
            state["start"] = now
            self._events[key] = self.scheduler.schedule(
                now + interval, PRIORITY_SOURCE, fire
            )

        self._events[key] = self.scheduler.schedule(
            self.scheduler.now + interval, PRIORITY_SOURCE, fire
        )

    def _schedule_coordinator(self, coordinator: QueryCoordinator) -> None:
        # The coordinator round is *polled* at the global cadence and gated by
        # the coordinator's own update_interval (exactly like the lockstep
        # loop) — so sweeping coordinator_update_interval behaves identically
        # under both drivers.  The poll also takes the per-interval result-SIC
        # snapshot that feeds the reported time series.
        interval = self.default_interval
        key = ("coordinator", coordinator.query_id)

        def fire(now: float) -> None:
            self.system.run_coordinator_round(coordinator, now)
            coordinator.snapshot(now)
            self._events[key] = self.scheduler.schedule(
                now + interval, PRIORITY_COORDINATOR, fire
            )

        self._events[key] = self.scheduler.schedule(
            self.scheduler.now + interval, PRIORITY_COORDINATOR, fire
        )

    def _schedule_checkpoints(self, interval: float) -> None:
        """Recurring federation-wide checkpoint round.

        One global event covers every node and coordinator alive at fire
        time, so lifecycle changes need no checkpoint-stream bookkeeping.
        Runs at coordinator priority (after the instant's node rounds), so an
        envelope captures the post-round state of its fragment.  Checkpoint
        rounds never mutate federation state — enabling them cannot change a
        run's results.
        """
        key = ("checkpoint", "__all__")

        def fire(now: float) -> None:
            self.system.checkpoint_all(now)
            self._events[key] = self.scheduler.schedule(
                now + interval, PRIORITY_COORDINATOR, fire
            )

        self._events[key] = self.scheduler.schedule(
            self.scheduler.now + interval, PRIORITY_COORDINATOR, fire
        )

    # --------------------------------------------------------------- messaging
    def _on_send(self, message: object, deliver_at: float) -> None:
        """Network send hook: make sure a delivery event covers ``deliver_at``.

        Zero-latency messages sent from a node or coordinator round are
        delivered at the *end* of the current instant (POST_DELIVERY): the
        lockstep loop's delivery phase has already passed at that point, and
        every same-instant round must observe the pre-send state for the two
        drivers to stay result-identical.
        """
        scheduler = self.scheduler
        priority = PRIORITY_DELIVERY
        current = scheduler.current_priority
        if (
            deliver_at <= scheduler.now
            and current is not None
            and current >= PRIORITY_DELIVERY
        ):
            priority = PRIORITY_POST_DELIVERY
        key = (deliver_at, priority)
        if key in self._pending_deliveries:
            return
        self._pending_deliveries.add(key)

        def fire(now: float) -> None:
            self._pending_deliveries.discard(key)
            self.system.deliver_messages(now)

        scheduler.schedule(deliver_at, priority, fire)
