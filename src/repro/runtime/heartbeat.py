"""Heartbeat-based failure detection and automatic recovery.

The paper's FSPS sites are autonomous: nobody calls ``fail_node`` when a
machine dies.  The :class:`FailureDetector` closes that loop for the event
runtime — every ``interval`` simulated seconds each running node emits a
:class:`~repro.federation.network.HeartbeatMessage` towards the coordinator
endpoint **through the network**, so heartbeats suffer the same latency, loss
and partitions as everything else.  A node unheard of for
``timeout_intervals`` consecutive intervals is declared dead, which drives
the existing manual recovery path automatically:

``declare dead`` → :meth:`EventRuntime.fail_node` (lost-placement recording,
source unrouting) → once the endpoint is reachable again and a
``node_factory`` is configured → :meth:`EventRuntime.rejoin_node` (restore
hosted fragments from the coordinator-held checkpoints) or plain
:meth:`EventRuntime.add_node` when the node hosted nothing.

Because heartbeats are best-effort, sustained loss can produce **false
positives**: a live node declared dead.  The detector treats those exactly
like real crashes — fail, then checkpoint-restore rejoin — which is the
safe behaviour (the alternative, ignoring silence, turns every real crash
into an undetected one).  Detection and recovery latencies are recorded per
incident for the chaos experiment's report.

Determinism: the sweep iterates nodes in sorted id order, all decisions
derive from simulated time, and with zero injected faults every heartbeat
arrives — the detector then never mutates the federation, so enabling it
cannot change a fault-free run's results (it only adds heartbeat traffic to
the message counters).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..core.bounded import BoundedLog
from ..federation.fsps import COORDINATOR_ENDPOINT
from ..federation.network import HeartbeatMessage
from ..federation.node import FspsNode
from .runtime import EventRuntime
from .scheduler import PRIORITY_FAULT

__all__ = ["FailureDetector"]


class FailureDetector:
    """Periodic heartbeat sweep attached to an :class:`EventRuntime`.

    Args:
        runtime: the event runtime driving the federation.
        interval: heartbeat period in simulated seconds.
        timeout_intervals: number of silent intervals before a node is
            declared dead; the detection timeout is
            ``interval * timeout_intervals``.
        node_factory: ``node_id -> FspsNode`` builder used to reconstruct a
            declared-dead node once its endpoint is reachable again.  Without
            one the detector only *detects* (fail_node); recovery stays
            manual.
        max_incident_records: bound on the retained detection/recovery
            records (oldest evicted first, evictions counted).
    """

    def __init__(
        self,
        runtime: EventRuntime,
        interval: float,
        timeout_intervals: int = 3,
        node_factory: Optional[Callable[[str], FspsNode]] = None,
        max_incident_records: int = 256,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        if timeout_intervals < 1:
            raise ValueError(
                f"timeout_intervals must be at least 1, got {timeout_intervals}"
            )
        self.runtime = runtime
        self.system = runtime.system
        self.interval = float(interval)
        self.timeout = float(interval) * timeout_intervals
        self.node_factory = node_factory
        # node id -> simulated time of the last heartbeat *received* (not
        # sent); initialised to attach time so a node gets a full timeout of
        # grace before its first beacon can land.
        self.last_seen: Dict[str, float] = {
            node_id: runtime.now for node_id in self.system.nodes
        }
        # node id -> time it was declared dead; cleared on recovery.
        self.dead: Dict[str, float] = {}
        # Per-incident records, bounded like the injector timeline so long
        # soaks keep flat memory; ``.dropped`` counts evicted entries.
        self.detections: BoundedLog = BoundedLog(maxlen=max_incident_records)
        self.recoveries: BoundedLog = BoundedLog(maxlen=max_incident_records)
        # Optional hook called with the failed FspsNode right after a
        # declare-dead; experiment trackers use it to fold the departing
        # node's counters before the object is dropped.
        self.on_node_failed: Optional[Callable[[FspsNode], None]] = None
        if self.system.failure_detector is not None:
            raise ValueError("the system already has a failure detector attached")
        self.system.failure_detector = self
        self._event = runtime.scheduler.schedule(
            runtime.scheduler.now + self.interval, PRIORITY_FAULT, self._sweep
        )

    # ------------------------------------------------------------------ inbound
    def on_heartbeat(self, node_id: str, now: float) -> None:
        """Record a heartbeat delivery (called by the system dispatcher)."""
        previous = self.last_seen.get(node_id, 0.0)
        if now > previous:
            self.last_seen[node_id] = now

    # -------------------------------------------------------------------- sweep
    def _sweep(self, now: float) -> None:
        system = self.system
        runtime = self.runtime
        # Emit beacons from every node whose process is actually running —
        # a silently-crashed node has no round stream and sends nothing
        # (its endpoint would drop the send anyway while it is dead).
        for node_id in sorted(system.nodes):
            self.last_seen.setdefault(node_id, now)
            if not runtime.node_running(node_id):
                continue
            system.network.send(
                HeartbeatMessage(
                    destination=COORDINATOR_ENDPOINT, node_id=node_id, sent_at=now
                ),
                sent_at=now,
                source=node_id,
            )
        # Declare nodes silent for longer than the timeout dead and run the
        # crash-failure path (lost-placement recording, source unrouting).
        for node_id in sorted(system.nodes):
            last = self.last_seen.get(node_id, now)
            if now - last > self.timeout:
                failed = runtime.fail_node(node_id)
                if self.on_node_failed is not None:
                    self.on_node_failed(failed)
                self.dead[node_id] = now
                self.detections.append(
                    {
                        "node_id": node_id,
                        "last_seen": last,
                        "declared_at": now,
                        "detection_latency": now - last,
                    }
                )
        # Recover declared-dead nodes whose endpoint is reachable again: a
        # fresh process rejoins from the coordinator-held checkpoints (or
        # joins empty if the node hosted nothing when it was declared dead).
        if self.node_factory is not None:
            for node_id in sorted(self.dead):
                if node_id in system.network.dead_endpoints:
                    continue  # machine still down
                node = self.node_factory(node_id)
                if system.awaiting_rejoin(node_id):
                    runtime.rejoin_node(node)
                else:
                    runtime.add_node(node)
                declared_at = self.dead.pop(node_id)
                self.last_seen[node_id] = now
                self.recoveries.append(
                    {
                        "node_id": node_id,
                        "declared_at": declared_at,
                        "recovered_at": now,
                        "recovery_latency": now - declared_at,
                    }
                )
        self._event = runtime.scheduler.schedule(
            now + self.interval, PRIORITY_FAULT, self._sweep
        )

    # ------------------------------------------------------------------ summary
    def summary(self) -> Dict[str, object]:
        return {
            "detections": list(self.detections),
            "recoveries": list(self.recoveries),
            "detections_dropped": self.detections.dropped,
            "recoveries_dropped": self.recoveries.dropped,
            "still_dead": sorted(self.dead),
        }

    def close(self) -> None:
        """Stop the sweep and detach from the system."""
        self._event.cancel()
        if self.system.failure_detector is self:
            self.system.failure_detector = None
