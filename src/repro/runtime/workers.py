"""Forked worker processes executing the sharded runtime's shard windows.

:class:`ShardWorkerPool` is the multiprocess backend of
:class:`~repro.runtime.sharded.ShardedRuntime` (``processes=True``).  Each
shard gets one forked worker holding a **full replica** of the federation
(fork-time copy-on-write); a worker executes only its own shard's scheduler,
so the replica's other sites go stale — by design: the conservative
time-windowing guarantees nothing a worker computes inside a window depends
on another shard's state, and everything that *does* cross sites travels as
an explicit boundary message.

Protocol (strict request/response over one pipe per worker):

* ``window end`` / ``barrier t`` — run the owned shard (and, at barriers,
  the replicated control lane) exactly like the inline loop would; reply
  with the **boundary outbox**: traffic routed to shards this worker does
  not own, serialised through :mod:`repro.state.wire`.  The parent routes
  each outbox entry to its owning worker (``inject``) *before* the next
  window or barrier command, so an entry delivering exactly at the new
  frontier is in place when that instant executes.  Action tokens travel
  with the entries — the receiving heap merges them into exactly the global
  order the single-heap runtime would have produced.
* ``lifecycle`` — between-run operations are **broadcast**: every replica
  (workers and the parent itself) executes the same operation, which keeps
  all replicas structurally identical (placements, routes, schedules,
  checkpoint stores).  Lifecycle operations never touch the network
  (checkpoints, migration extraction/adoption, fail/rejoin are all direct
  state transfers), so replication cannot double-count traffic; sends a
  replica *would* route to a shard it does not own are simply dropped — the
  owning replica enqueues its own identical copy.  Where replicas disagree
  (a stale replica computes stale loss accounting), the reply of the
  **owning** worker — the one whose shard hosts the touched site — is
  authoritative; migration ships the owner's checkpoint to every replica so
  the moved state is bit-exact everywhere.
* ``collect`` (at close) — workers report their authoritative slices:
  network/ledger scalar counters as deltas against the fork-time baseline
  (window work is disjoint across workers, so the deltas sum exactly;
  per-operation lifecycle deltas are attributed to the owning worker only),
  per-node statistics and per-query coordinator state from their owners,
  and the owned shards' remaining in-flight entries plus per-link reliable
  state.  The parent patches its replica with all of it, after which the
  ordinary single-process collection path reads the exact final state.

Restrictions (all raise with instructions to run inline shards instead):
zero-latency models (no positive lookahead window), fault injection and
heartbeat detection (their control events are scheduled post-fork, which
replicas would never see), and mid-run deploy/undeploy/add/remove churn
(shipping live query plans across the process boundary is not supported).
"""

from __future__ import annotations

import heapq
import multiprocessing
import traceback
from typing import Any, Dict, List, Optional, Tuple as PyTuple

from ..state.wire import (
    entry_from_wire,
    entry_to_wire,
    message_from_wire,
    message_to_wire,
    pending_send_from_wire,
    pending_send_to_wire,
)
from .scheduler import PRIORITY_COORDINATOR, PRIORITY_POST_DELIVERY
from .sharded import _PHASES

__all__ = ["ShardWorkerPool"]

# Operations whose argument payloads (live fragments, operator pipelines,
# generator closures) cannot be shipped to forked replicas.
_UNSUPPORTED_OPS = ("deploy_query", "undeploy_query", "add_node", "remove_node")

# Lifecycle operations whose *return value* carries owner-authoritative data
# and is plain enough to pickle back (reports, coordinator ledgers).  All
# other operations return the parent replica's local result — structurally
# identical, but live objects (a failed node still holds operator closures)
# that cannot cross the pipe.
_SHIP_RESULT = frozenset({"rejoin_node", "fail_coordinator"})

# Scalar counters merged across workers at collect time (see _flat_scalars).
_NET_SCALARS = ("sent_messages", "delivered_messages", "bytes_sent", "bytes_delivered")
_STATS_DICTS = (
    "sent",
    "delivered",
    "dropped",
    "duplicates",
    "retransmits",
    "expired",
    "tuples_sent",
    "tuples_delivered",
    "tuples_expired",
)
_STATS_SCALARS = ("bytes_wire", "acks_sent")
_SYSTEM_SCALARS = (
    "result_tuples_arrived",
    "dropped_result_tuples",
    "result_tuples_lost_to_crash",
    "result_tuples_retired",
)


# ------------------------------------------------------------- scalar algebra
def _flat_scalars(system) -> Dict[tuple, float]:
    """Every cumulative counter of a run as one flat ``{key: value}`` dict."""
    network = system.network
    flat: Dict[tuple, float] = {}
    for name in _NET_SCALARS:
        flat[("net", name)] = getattr(network, name)
    stats = network.stats
    for name in _STATS_DICTS:
        for kind, value in getattr(stats, name).items():
            flat[("stats", name, kind)] = value
    for name in _STATS_SCALARS:
        flat[("stats", name)] = getattr(stats, name)
    for name in _SYSTEM_SCALARS:
        flat[("sys", name)] = getattr(system, name, 0)
    return flat


def _apply_scalars(system, flat: Dict[tuple, float]) -> None:
    network = system.network
    stats = network.stats
    for name in _STATS_DICTS:
        getattr(stats, name).clear()
    for key, value in flat.items():
        group = key[0]
        if group == "net":
            setattr(network, key[1], value)
        elif group == "sys":
            setattr(system, key[1], value)
        elif len(key) == 3:
            getattr(stats, key[1])[key[2]] = value
        else:
            setattr(stats, key[1], value)


def _diff_scalars(
    after: Dict[tuple, float], before: Dict[tuple, float]
) -> Dict[tuple, float]:
    delta: Dict[tuple, float] = {}
    for key in set(after) | set(before):
        d = after.get(key, 0) - before.get(key, 0)
        if d:
            delta[key] = d
    return delta


def _add_scalars(into: Dict[tuple, float], delta: Dict[tuple, float]) -> None:
    for key, value in delta.items():
        into[key] = into.get(key, 0) + value


# ---------------------------------------------------------------- worker side
def _link_sender_shard(plan, link) -> int:
    return plan.endpoint_shard(link[0])


def _link_receiver_shard(plan, link) -> int:
    # Per-query result lanes (3-tuple links) drain on the query's home
    # shard; everything else drains where its destination endpoint lives —
    # mirrors ShardedRuntime._route_entry.
    if len(link) > 2:
        return plan.query_shard.get(link[2], 0)
    return plan.endpoint_shard(link[1])


def _worker_main(runtime, shard: int, conn) -> None:
    """Command loop of one forked shard worker (see module docstring)."""
    system = runtime.system
    network = runtime.network
    sched = runtime._shards[shard]
    outbox: List[PyTuple[int, dict]] = []
    broadcast = [False]  # replicated-execution mode: drop boundary traffic
    discount: Dict[tuple, float] = {}  # replicated counter deltas (non-owner)
    stash: Dict[str, Any] = {}

    def sink(entry, dest: int) -> bool:
        if dest == shard:
            return False
        if not broadcast[0]:
            outbox.append((dest, entry_to_wire(entry)))
        return True

    network.shard_sink = sink

    def run_replicated(fn, *args):
        """Run a broadcast operation, bookkeeping its replicated deltas."""
        before = _flat_scalars(system)
        broadcast[0] = True
        try:
            result = fn(*args)
        finally:
            broadcast[0] = False
        delta = _diff_scalars(_flat_scalars(system), before)
        _add_scalars(discount, delta)
        return result, delta

    def flush() -> List[PyTuple[int, dict]]:
        out, outbox[:] = list(outbox), []
        return out

    while True:
        try:
            cmd = conn.recv()
        except EOFError:
            break
        op = cmd[0]
        try:
            if op == "window":
                runtime._started = True
                runtime._run_shard_window(sched, cmd[1])
                runtime._frontier = cmd[1]
                conn.send(("ok", flush()))
            elif op == "barrier":
                runtime._started = True
                t = cmd[1]
                runtime._frontier = t
                for priority in _PHASES:
                    if priority == PRIORITY_COORDINATOR:
                        # Checkpoint rounds (the only control events sharing
                        # this phase) interleave with the shard's coordinator
                        # rounds in spawn-rank order, like the inline
                        # barrier.  They are sendless — every control event
                        # a worker can still see is (fault injection and
                        # heartbeats are rejected up front) — so no counter
                        # discount is needed around them.
                        runtime._run_merged_instant(
                            (sched, runtime._control), t, priority
                        )
                        continue
                    runtime._run_instant(sched, t, priority)
                    delta = run_replicated(
                        runtime._run_instant, runtime._control, t, priority
                    )[1]
                    if shard == 0:
                        # Control events are replicated on every worker; only
                        # worker 0's counter contributions survive the merge.
                        _add_scalars(discount, {k: -v for k, v in delta.items()})
                progress = True
                while progress:
                    progress = False
                    if sched.has_events_at(t, PRIORITY_POST_DELIVERY):
                        runtime._run_instant(sched, t, PRIORITY_POST_DELIVERY)
                        progress = True
                    if runtime._control.has_events_at(t, PRIORITY_POST_DELIVERY):
                        delta = run_replicated(
                            runtime._run_instant,
                            runtime._control,
                            t,
                            PRIORITY_POST_DELIVERY,
                        )[1]
                        if shard == 0:
                            _add_scalars(
                                discount, {k: -v for k, v in delta.items()}
                            )
                        progress = True
                conn.send(("ok", flush()))
            elif op == "inject":
                for dest, wire in cmd[1]:
                    entry = entry_from_wire(wire)
                    heapq.heappush(network._shard_queues[dest], entry)
                    runtime._on_enqueue(entry, dest)
                conn.send(("ok", None))
            elif op == "lifecycle":
                name, args, kwargs, owner = cmd[1], cmd[2], cmd[3], cmd[4]
                fn = getattr(runtime, "_local_" + name)
                result, delta = run_replicated(lambda: fn(*args, **kwargs))
                if owner:
                    # The owner's replicated deltas are the true ones: hand
                    # them to the parent and drop them from the discount so
                    # they are counted exactly once in the merge.
                    _add_scalars(discount, {k: -v for k, v in delta.items()})
                    payload = result if name in _SHIP_RESULT else None
                    conn.send(("ok", (payload, delta)))
                else:
                    conn.send(("ok", None))
            elif op == "migrate_extract":
                fragment_id, target, owner = cmd[1], cmd[2], cmd[3]
                (fragment, checkpoint), _ = run_replicated(
                    system.extract_fragment_for_migration, fragment_id, target
                )
                stash["migration"] = fragment
                if owner:
                    # Queue entries already travelling towards the old host
                    # leave with the fragment: only this worker's copy of
                    # them is real, so they cross the pipe and re-enter on
                    # the shard owning the new host (see _rehome_inflight).
                    # A same-shard move keeps them right here.
                    moved = []
                    if runtime._plan.endpoint_shard(target) != shard:
                        moved = [
                            entry_to_wire(entry)
                            for entry in runtime._extract_inflight_for(
                                fragment_id, shard
                            )
                        ]
                    conn.send(("ok", (checkpoint, moved)))
                else:
                    conn.send(("ok", None))
            elif op == "migrate_apply":
                checkpoint, target, owner = cmd[1], cmd[2], cmd[3]
                fragment = stash.pop("migration")
                report, delta = run_replicated(
                    system.apply_fragment_migration, fragment, checkpoint, target
                )
                if owner:
                    _add_scalars(discount, {k: -v for k, v in delta.items()})
                    conn.send(("ok", (report, delta)))
                else:
                    conn.send(("ok", None))
            elif op == "finish":
                horizon, ticks = cmd[1], cmd[2]
                runtime._frontier = horizon
                for s in (sched, runtime._control):
                    if horizon > s.now:
                        s.now = horizon
                system.now = horizon
                system.ticks += ticks
                conn.send(("ok", None))
            elif op == "collect":
                conn.send(("ok", _collect_worker(runtime, shard, discount)))
            elif op == "exit":
                conn.send(("ok", None))
                break
            else:  # pragma: no cover - protocol bug
                conn.send(("err", f"unknown command {op!r}"))
        except Exception:
            conn.send(("err", traceback.format_exc()))
    conn.close()


def _collect_worker(runtime, shard: int, discount: Dict[tuple, float]) -> dict:
    """This worker's authoritative slice of the final run state."""
    system = runtime.system
    network = runtime.network
    plan = runtime._plan
    nodes = {
        node_id: dict(vars(node.stats))
        for node_id, node in system.nodes.items()
        if plan.node_shard.get(node_id) == shard
    }
    watermarks = {}
    epoch_tails = {}
    for query in system.queries.values():
        for fragment in query.fragments.values():
            host = system.placement.get(fragment.fragment_id)
            if host is None or plan.node_shard.get(host) != shard:
                continue
            if fragment.is_root:
                watermarks[(query.query_id, fragment.fragment_id)] = (
                    fragment.output_watermark
                )
    for key, seq in system._epoch_tails.items():
        host = system.placement.get(key[1])
        if host is not None and plan.node_shard.get(host) == shard:
            epoch_tails[key] = seq
    coordinators = {}
    for coordinator in system.coordinators.all():
        if plan.query_shard.get(coordinator.query_id, 0) != shard:
            continue
        coordinators[coordinator.query_id] = {
            "state": coordinator.snapshot_state(system.now),
            "result_values": list(coordinator.result_values),
        }
    return {
        "scalars": _flat_scalars(system),
        "discount": dict(discount),
        "queue": [entry_to_wire(e) for e in network._shard_queues[shard]],
        "reliable": {
            "next_seq": {
                link: seq
                for link, seq in network._next_seq.items()
                if _link_sender_shard(plan, link) == shard
            },
            "unacked": {
                link: {s: pending_send_to_wire(p) for s, p in pending.items()}
                for link, pending in network._unacked.items()
                if _link_sender_shard(plan, link) == shard
            },
            "recv_next": {
                link: value
                for link, value in network._recv_next.items()
                if _link_receiver_shard(plan, link) == shard
            },
            "recv_buffer": {
                link: {s: message_to_wire(m) for s, m in buffer.items()}
                for link, buffer in network._recv_buffer.items()
                if _link_receiver_shard(plan, link) == shard
            },
        },
        "nodes": nodes,
        "watermarks": watermarks,
        "epoch_tails": epoch_tails,
        "coordinators": coordinators,
    }


# ---------------------------------------------------------------- parent side
class ShardWorkerPool:
    """One forked worker process per shard, driven by the parent run loop."""

    def __init__(self, runtime) -> None:
        self._rt = runtime
        network = runtime.network
        lookahead = network.latency_model.min_latency()
        if lookahead <= 0:
            raise ValueError(
                "sharded_processes requires a strictly positive minimum "
                "cross-site latency (the conservative lookahead window); "
                "zero-latency models must run inline shards"
            )
        if network.fault_policy is not None:
            raise ValueError(
                "sharded_processes cannot replicate a fault policy attached "
                "before the fork deterministically; run fault injection with "
                "inline shards"
            )
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError as exc:  # pragma: no cover - non-POSIX platforms
            raise RuntimeError(
                "sharded_processes requires the fork start method; run "
                "inline shards on this platform"
            ) from exc
        # Fork-time counter baseline: identical in the parent and (by
        # inheritance) every worker — the anchor of the delta merge.
        self._baseline = _flat_scalars(runtime.system)
        self._lifecycle_deltas: Dict[tuple, float] = {}
        self._pipes = []
        self._procs = []
        self._closed = False
        for shard in range(len(runtime._shards)):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(runtime, shard, child_conn),
                daemon=True,
                name=f"repro-shard-{shard}",
            )
            proc.start()
            child_conn.close()
            self._pipes.append(parent_conn)
            self._procs.append(proc)

    # ------------------------------------------------------------ primitives
    def _send(self, commands) -> List[int]:
        """Dispatch one command per worker; returns the indices sent to."""
        if isinstance(commands, tuple):
            commands = [commands] * len(self._pipes)
        live = [i for i, cmd in enumerate(commands) if cmd is not None]
        for index in live:
            self._pipes[index].send(commands[index])
        return live

    def _gather(self, live: List[int]) -> List[Any]:
        replies: List[Any] = [None] * len(self._pipes)
        failures = []
        for index in live:
            status, value = self._pipes[index].recv()
            if status == "err":
                failures.append(f"[shard {index}]\n{value}")
            else:
                replies[index] = value
        if failures:
            raise RuntimeError("shard worker failed:\n" + "\n".join(failures))
        return replies

    def _broadcast(self, commands) -> List[Any]:
        """Send one command per worker (or the same to all); gather replies."""
        return self._gather(self._send(commands))

    def _route(self, outboxes) -> None:
        """Deliver every boundary entry to the worker owning its shard."""
        per_worker: List[List[PyTuple[int, dict]]] = [
            [] for _ in self._pipes
        ]
        for outbox in outboxes:
            if not outbox:
                continue
            for dest, wire in outbox:
                per_worker[dest].append((dest, wire))
        commands = [
            ("inject", batch) if batch else None for batch in per_worker
        ]
        if any(cmd is not None for cmd in commands):
            self._broadcast(commands)

    def _parent_control(self, t: float) -> None:
        """Advance the parent's replicated control lane through instant ``t``.

        Keeps ``_control.next_event_time()`` (the barrier schedule the run
        loop steers by) accurate; the data its events touch on the parent
        replica is stale and patched over at collect time.
        """
        rt = self._rt
        rt._frontier = t
        for priority in _PHASES:
            rt._run_instant(rt._control, t, priority)
        while rt._control.has_events_at(t, PRIORITY_POST_DELIVERY):
            rt._run_instant(rt._control, t, PRIORITY_POST_DELIVERY)

    # -------------------------------------------------------------- run loop
    def run_to(self, horizon: float, ticks: int) -> None:
        rt = self._rt
        lookahead = rt.network.latency_model.min_latency()
        while rt._frontier < horizon:
            end = min(horizon, rt._frontier + lookahead)
            barrier = rt._control.next_event_time()
            if barrier is not None and barrier < end:
                end = barrier
            self._route(self._broadcast(("window", end)))
            rt._frontier = end
            if barrier is not None and barrier == end and end < horizon:
                self._parent_control(end)
                self._route(self._broadcast(("barrier", end)))
        self._parent_control(horizon)
        self._route(self._broadcast(("barrier", horizon)))
        self._broadcast(("finish", horizon, ticks))
        rt._frontier = horizon
        for sched in rt._shards:
            if horizon > sched.now:
                sched.now = horizon
        if horizon > rt._control.now:
            rt._control.now = horizon

    # ------------------------------------------------------------- lifecycle
    def lifecycle(self, op: str, args, kwargs):
        rt = self._rt
        if op in _UNSUPPORTED_OPS:
            raise NotImplementedError(
                f"{op} is not supported with sharded_processes (live query "
                "plans cannot cross the process boundary); run mid-run "
                "deployment churn with inline shards"
            )
        if op == "migrate_fragment":
            return self._migrate(*args)
        owner = self._lifecycle_owner(op, args)
        # The commands go out *before* the parent executes: argument objects
        # must cross the pipe in their pre-operation state (rejoining a node,
        # say, hosts fragments on it whose operator closures do not pickle).
        # Validation stays consistent — every replica applies the same checks
        # to the same state, so an invalid operation raises on all of them
        # and mutates none.
        live = self._send(
            [
                ("lifecycle", op, args, kwargs, index == owner)
                for index in range(len(self._pipes))
            ]
        )
        try:
            local = getattr(rt, "_local_" + op)(*args, **kwargs)
        finally:
            replies = self._gather(live)
        if owner is None:
            return local
        result, delta = replies[owner]
        _add_scalars(self._lifecycle_deltas, delta)
        return result if result is not None else local

    def _lifecycle_owner(self, op: str, args) -> Optional[int]:
        """The worker whose replica truly hosts the operation's target."""
        plan = self._rt._plan
        if op in ("fail_node", "crash_node_silently", "repair_node"):
            return plan.node_shard.get(args[0])
        if op == "rejoin_node":
            return plan.node_shard.get(args[0].node_id)
        if op == "fail_coordinator":
            return plan.query_shard.get(args[0], 0)
        return None  # checkpoint_now &c: every replica agrees structurally

    def _migrate(self, fragment_id: str, target_node_id: str):
        rt = self._rt
        plan = rt._plan
        rt._sync_system_clock()
        source_id = rt.system.placement.get(fragment_id)
        # Parent extracts first — validation errors surface here, before any
        # replica mutated.  The *owner's* checkpoint is the true state; it
        # is shipped to every replica (parent included), so the fragment
        # resumes bit-identically wherever it is applied.
        fragment, _ = rt.system.extract_fragment_for_migration(
            fragment_id, target_node_id
        )
        source_owner = plan.node_shard.get(source_id, 0)
        target_owner = plan.node_shard.get(target_node_id, 0)
        replies = self._broadcast(
            [
                ("migrate_extract", fragment_id, target_node_id, index == source_owner)
                for index in range(len(self._pipes))
            ]
        )
        checkpoint, moved = replies[source_owner]
        replies = self._broadcast(
            [
                ("migrate_apply", checkpoint, target_node_id, index == target_owner)
                for index in range(len(self._pipes))
            ]
        )
        rt.system.apply_fragment_migration(fragment, checkpoint, target_node_id)
        if moved:
            # The fragment's in-flight batches follow it to the new host's
            # shard (see ShardedRuntime._rehome_inflight): the source owner
            # extracted them, the target owner re-enqueues them.
            self._broadcast(
                [
                    ("inject", [(target_owner, wire) for wire in moved])
                    if index == target_owner
                    else None
                    for index in range(len(self._pipes))
                ]
            )
        report, delta = replies[target_owner]
        _add_scalars(self._lifecycle_deltas, delta)
        return report

    # ----------------------------------------------------------------- close
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._patch(self._broadcast(("collect",)))
        finally:
            for pipe in self._pipes:
                try:
                    pipe.send(("exit",))
                    pipe.recv()
                except (OSError, EOFError, BrokenPipeError):
                    pass
                pipe.close()
            for proc in self._procs:
                proc.join(timeout=10)
                if proc.is_alive():  # pragma: no cover - hung worker
                    proc.terminate()

    def _patch(self, replies: List[dict]) -> None:
        """Overwrite the parent replica with the workers' authoritative state."""
        rt = self._rt
        system = rt.system
        network = rt.network
        # Counters: fork baseline + the sum of each worker's own (window)
        # deltas + each lifecycle operation's owner-attributed delta.
        total = dict(self._baseline)
        for reply in replies:
            delta = _diff_scalars(reply["scalars"], self._baseline)
            _add_scalars(total, delta)
            _add_scalars(total, {k: -v for k, v in reply["discount"].items()})
        _add_scalars(total, self._lifecycle_deltas)
        _apply_scalars(system, total)
        # In-flight queues: each shard's surviving entries from its owner.
        next_seq: Dict[tuple, int] = {}
        unacked: Dict[tuple, dict] = {}
        recv_next: Dict[tuple, int] = {}
        recv_buffer: Dict[tuple, dict] = {}
        for shard, reply in enumerate(replies):
            entries = [entry_from_wire(w) for w in reply["queue"]]
            heapq.heapify(entries)
            network._shard_queues[shard] = entries
            reliable = reply["reliable"]
            next_seq.update(reliable["next_seq"])
            for link, pending in reliable["unacked"].items():
                unacked[link] = {
                    seq: pending_send_from_wire(p) for seq, p in pending.items()
                }
            recv_next.update(reliable["recv_next"])
            for link, buffer in reliable["recv_buffer"].items():
                recv_buffer[link] = {
                    seq: message_from_wire(m) for seq, m in buffer.items()
                }
            for node_id, stats in reply["nodes"].items():
                node = system.nodes.get(node_id)
                if node is not None:
                    for name, value in stats.items():
                        setattr(node.stats, name, value)
            for (query_id, fragment_id), watermark in reply["watermarks"].items():
                query = system.queries.get(query_id)
                if query is not None and fragment_id in query.fragments:
                    fragment = query.fragments[fragment_id]
                    fragment._output_epoch, fragment._output_seq = watermark
            for key, seq in reply["epoch_tails"].items():
                system._epoch_tails[key] = seq
            for query_id, payload in reply["coordinators"].items():
                coordinator = system.coordinators.get(query_id)
                if coordinator is None:
                    continue
                coordinator.restore_state(payload["state"])
                coordinator.result_values.clear()
                coordinator.result_values.extend(payload["result_values"])
        network._next_seq = next_seq
        network._unacked = unacked
        network._recv_next = recv_next
        network._recv_buffer = recv_buffer
