"""Deterministic discrete-event scheduler.

The event runtime replaces the lockstep ``FederatedSystem.tick()`` loop with a
heap of ``(time, priority, seq)``-ordered events: source generation rounds,
network deliveries, per-node shedding rounds and per-query coordinator rounds
are all independently scheduled.  Determinism is the design constraint — the
differential tests assert that a seeded event-driven run with homogeneous
intervals is *result-identical* to the lockstep loop — so ties are broken
first by an explicit phase priority (mirroring the phase order inside one
lockstep tick) and then by scheduling order.

The scheduler knows nothing about the federation; it stores opaque callbacks.
Cancellation is lazy: :meth:`ScheduledEvent.cancel` marks the event and the
run loop skips it when popped, which keeps ``cancel`` O(1) — the lifecycle
API (query undeploy, node failure) relies on this.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional

__all__ = [
    "EventScheduler",
    "ScheduledEvent",
    "PRIORITY_FAULT",
    "PRIORITY_SOURCE",
    "PRIORITY_DELIVERY",
    "PRIORITY_NODE",
    "PRIORITY_COORDINATOR",
    "PRIORITY_POST_DELIVERY",
]

# Phase priorities for events scheduled at the same instant.  They mirror the
# phase order of one lockstep tick: sources generate, due messages are
# delivered, nodes run their shedding rounds, coordinators disseminate and
# snapshot.  POST_DELIVERY exists for zero-latency messages sent *during* a
# node or coordinator phase: the lockstep loop would only deliver them at the
# next tick (its delivery phase has already passed), so the event runtime
# delivers them at the end of the current instant — after every same-instant
# round has observed the pre-send state, exactly like the lockstep path.
PRIORITY_SOURCE = 0
PRIORITY_DELIVERY = 1
PRIORITY_NODE = 2
PRIORITY_COORDINATOR = 3
PRIORITY_POST_DELIVERY = 4
# Fault-injection and failure-detector events fire before anything else at
# their instant: a crash planned for time t must be visible to t's source,
# delivery and shedding phases, exactly as if the machine died just before
# the instant began.
PRIORITY_FAULT = -1


class ScheduledEvent:
    """A scheduled callback; ordered by ``(time, priority, seq)``.

    ``rank`` is optional cross-scheduler ordering metadata: the sharded
    runtime stamps every lineage-spawned event with its action token so
    barrier instants can merge events from several schedulers in the exact
    order one global heap would have popped them.  The scheduler itself
    never reads it.
    """

    __slots__ = ("time", "priority", "seq", "fn", "cancelled", "_scheduler", "rank")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        fn: Callable[[float], None],
        scheduler: Optional["EventScheduler"] = None,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.fn = fn
        self.cancelled = False
        self._scheduler = scheduler
        self.rank = None

    def cancel(self) -> None:
        """Mark the event as cancelled; it is skipped when popped."""
        if not self.cancelled:
            self.cancelled = True
            if self._scheduler is not None:
                self._scheduler._note_cancelled()

    def __lt__(self, other: "ScheduledEvent") -> bool:
        if self.time != other.time:
            return self.time < other.time
        if self.priority != other.priority:
            return self.priority < other.priority
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"ScheduledEvent(t={self.time}, p={self.priority}{state})"


class EventScheduler:
    """A deterministic event heap with an inclusive ``run_until`` horizon."""

    # Lazily-cancelled entries are compacted away once they exceed the live
    # entries (~50% dead), so long churn/migration runs do not accumulate
    # dead events; small heaps are never compacted (not worth a rebuild).
    COMPACT_MIN_CANCELLED = 64

    def __init__(self, start: float = 0.0) -> None:
        self._heap: List[ScheduledEvent] = []
        self._seq = itertools.count()
        self.now = float(start)
        # Priority of the event currently being processed (None outside
        # run_until); the runtime consults it to order zero-latency
        # deliveries after the sending phase.
        self.current_priority: Optional[int] = None
        self.processed_events = 0
        # Cancelled events still sitting in the heap; maintained by
        # ScheduledEvent.cancel / the pops that skip them.
        self._cancelled = 0
        self.compactions = 0

    def schedule(
        self, time: float, priority: int, fn: Callable[[float], None]
    ) -> ScheduledEvent:
        """Schedule ``fn(time)``; returns a handle whose ``cancel()`` works.

        Scheduling at the current instant is allowed (zero-latency message
        deliveries); scheduling in the past is a programming error.
        """
        if time < self.now:
            raise ValueError(
                f"cannot schedule event at {time} before current time {self.now}"
            )
        event = ScheduledEvent(time, priority, next(self._seq), fn, self)
        heapq.heappush(self._heap, event)
        return event

    # --------------------------------------------------------------- compaction
    def _note_cancelled(self) -> None:
        self._cancelled += 1
        self._maybe_compact()

    def _maybe_compact(self) -> None:
        """Drop cancelled entries once they outnumber the live ones.

        ``heapify`` over the surviving events preserves the full
        ``(time, priority, seq)`` order — the total order lives on the
        events, not on heap positions — so compaction is invisible to the
        run loop (asserted in ``tests/runtime/test_scheduler.py``).
        """
        cancelled = self._cancelled
        if cancelled < self.COMPACT_MIN_CANCELLED:
            return
        if cancelled * 2 <= len(self._heap):
            return
        # In place: run_until holds a reference to the heap list across event
        # callbacks (which may cancel events), so the list object must stay.
        heap = self._heap
        heap[:] = [event for event in heap if not event.cancelled]
        heapq.heapify(heap)
        self._cancelled = 0
        self.compactions += 1

    def run_until(self, end: float) -> int:
        """Process every event with ``time <= end`` (inclusive), in order.

        Events scheduled while running — deliveries, recurring-round
        reschedules — are processed in the same call when they fall within
        the horizon.  Afterwards ``now`` is advanced to ``end`` even if the
        heap ran dry, so later lifecycle calls anchor at the horizon.
        Returns the number of events processed.
        """
        heap = self._heap
        processed = 0
        while heap and heap[0].time <= end:
            event = heapq.heappop(heap)
            if event.cancelled:
                self._cancelled -= 1
                continue
            self.now = event.time
            self.current_priority = event.priority
            try:
                event.fn(event.time)
            finally:
                self.current_priority = None
            processed += 1
        if end > self.now:
            self.now = end
        self.processed_events += processed
        return processed

    def run_window(self, end: float) -> int:
        """Process every event with ``time < end`` (strict), in order.

        The conservative time-windowing of the sharded runtime needs a
        *strict-exclusive* horizon: a boundary message sent at ``T`` over a
        link with latency equal to the lookahead arrives exactly at the
        window end and must land in the *next* window, after the barrier
        exchange — an inclusive horizon would silently miss it.  ``now`` is
        left at the last processed instant (not advanced to ``end``), so the
        window-end instant can still be scheduled into and processed by
        :meth:`run_instant`.
        """
        heap = self._heap
        processed = 0
        while heap and heap[0].time < end:
            event = heapq.heappop(heap)
            if event.cancelled:
                self._cancelled -= 1
                continue
            self.now = event.time
            self.current_priority = event.priority
            try:
                event.fn(event.time)
            finally:
                self.current_priority = None
            processed += 1
        self.processed_events += processed
        return processed

    def run_instant(self, time: float, priority: int) -> int:
        """Process the events at exactly ``(time, priority)``, in seq order.

        Barrier instants (window ends that carry global events — faults,
        checkpoint rounds, the run horizon) are phase-stepped across shards:
        the sharded runtime calls this per shard per phase priority so that
        every shard observes a globally consistent phase order at the
        barrier, exactly like the single-heap runtime's ``(time, priority,
        seq)`` pops.  Events the callbacks schedule at the same
        ``(time, priority)`` are processed in the same call (the
        POST_DELIVERY cascade), at higher priorities by later phases.
        """
        if time < self.now:
            raise ValueError(
                f"cannot run instant {time} before current time {self.now}"
            )
        heap = self._heap
        processed = 0
        while heap and heap[0].time == time and heap[0].priority <= priority:
            event = heapq.heappop(heap)
            if event.cancelled:
                self._cancelled -= 1
                continue
            if event.priority < priority:
                # A lower-priority event at the barrier instant means a
                # phase was scheduled into after its pass ran; that breaks
                # the lockstep phase order the barrier stepping reproduces.
                raise RuntimeError(
                    f"event at ({time}, {event.priority}) scheduled after "
                    f"its barrier phase ran (current phase {priority})"
                )
            self.now = event.time
            self.current_priority = event.priority
            try:
                event.fn(event.time)
            finally:
                self.current_priority = None
            processed += 1
        if time > self.now:
            self.now = time
        self.processed_events += processed
        return processed

    def peek_instant(self, time: float, priority: int) -> Optional[ScheduledEvent]:
        """The next pending event at exactly ``(time, priority)``, unpopped."""
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
            self._cancelled -= 1
        if heap and heap[0].time == time and heap[0].priority == priority:
            return heap[0]
        return None

    def run_one(self, time: float, priority: int) -> None:
        """Pop and run exactly one event at ``(time, priority)``.

        Caller must have :meth:`peek_instant`-ed it — the heap top is
        assumed to be a live event at that exact instant.  Used by the
        sharded runtime's rank-merged barrier phases, which pick the next
        event across several schedulers before running it.
        """
        event = heapq.heappop(self._heap)
        assert (
            not event.cancelled
            and event.time == time
            and event.priority == priority
        )
        self.now = event.time
        self.current_priority = event.priority
        try:
            event.fn(event.time)
        finally:
            self.current_priority = None
        self.processed_events += 1

    def has_events_at(self, time: float, priority: int) -> bool:
        """True if a pending event sits at exactly ``(time, priority)``."""
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
            self._cancelled -= 1
        return bool(heap) and heap[0].time == time and heap[0].priority == priority

    def next_event_time(self) -> Optional[float]:
        """Time of the earliest pending (non-cancelled) event, if any."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
            self._cancelled -= 1
        if not self._heap:
            return None
        return self._heap[0].time

    def pending_events(self) -> int:
        """Number of scheduled, not-yet-cancelled events."""
        return len(self._heap) - self._cancelled

    def __len__(self) -> int:
        return len(self._heap)
