"""Sharded multi-core federation driver.

The single-heap :class:`~repro.runtime.runtime.EventRuntime` drives every
site from one scheduler, so a fig12-style scale-out saturates one core.
This module partitions the federation **by site**: each shard owns a subset
of the nodes (and the fragments, shedders and estimators they host), runs
them on its own :class:`~repro.runtime.scheduler.EventScheduler`, and
synchronises with the other shards only where the paper's sites themselves
interact — the network.

Two execution modes share all of the code:

* **inline** (default): every shard scheduler lives in this process and the
  run loop executes them sequentially window by window.  Nothing is
  serialized, every lifecycle feature works (fault injection, heartbeat
  detection, mid-run deploys), and the mode exists to make the windowed
  schedule itself debuggable and differentially testable.
* **multiprocess**: shards are executed by forked worker processes
  (`multiprocessing`, one process per worker, several shards per worker
  allowed); boundary messages cross process borders through the PR 4 state
  serializers (:mod:`repro.state.wire`).

Conservative time-windowing
---------------------------
All shards repeatedly execute the same half-open window ``[T, T+L)`` where
``L = latency_model.min_latency()`` is the minimum latency between distinct
endpoints.  A message sent inside the window is delivered at
``send_time + latency >= T + L``, i.e. never inside the window itself, so
shards cannot influence each other mid-window and may run in any order —
or in parallel.  Window ends that carry *global* events (fault injections,
failure-detector sweeps, federation-wide checkpoint rounds, the run
horizon) are **barrier instants**: the instant is phase-stepped across all
shards priority by priority (FAULT → SOURCE → DELIVERY → NODE →
COORDINATOR → POST_DELIVERY fixpoint), which reproduces exactly the
``(time, priority, seq)`` pop order of the single heap.  A zero-latency
model degenerates to phase-stepping every instant (correct, not parallel).

Deterministic boundary merge
----------------------------
The single-heap runtime orders same-instant deliveries by the network's
global transmit counter — a number that depends on which shard happened to
transmit first, so it cannot survive sharding.  Instead every transmit is
stamped with an **action token** ``(time, ctx_priority, ctx_rank, k)``:

* ``time`` — the sending context's instant;
* ``ctx_priority`` — the phase priority of the executing event (source,
  delivery, node, coordinator, post-delivery, fault);
* ``ctx_rank`` — the executing event's own rank: for a delivery event the
  ``(deliver_at, token)`` of the in-flight entry being processed, for a
  stream event (node round, source route, coordinator round, sweep) the
  lineage of the *schedule call that created it*, stored flat as
  ``(tp_levels, root, k_path)`` (see :meth:`ShardedRuntime._extend_rank`)
  — comparison-equivalent to nesting the creating call's full token, but
  bounded-cost to compare however deep a recurring chain grows;
* ``k`` — the ordinal of this action within its context.

Tokens are totally ordered, identical no matter how shards interleave, and
— by construction — sort same-instant transmissions exactly the way the
single global counter did (``tests/properties/test_merge_order.py``).  The
network's per-link FIFO heaps order boundary messages by
``(deliver_at, token)``; this is the ``(time, priority, site_id, seq)``
total order of the merge.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Set, Tuple as PyTuple

from ..federation.coordinator import QueryCoordinator
from ..federation.fsps import (
    DeployedQuery,
    FederatedSystem,
    MigrationReport,
    RejoinReport,
)
from ..federation.node import FspsNode
from .scheduler import (
    PRIORITY_COORDINATOR,
    PRIORITY_DELIVERY,
    PRIORITY_FAULT,
    PRIORITY_NODE,
    PRIORITY_POST_DELIVERY,
    PRIORITY_SOURCE,
    EventScheduler,
)

__all__ = ["ShardedRuntime", "ShardPlan"]

# Context priority of actions performed outside any scheduled event:
# construction-time spawns and between-run lifecycle calls.  Construction
# precedes every event (-2 < PRIORITY_FAULT); ambient mid-run actions at the
# frontier instant come after everything that executed there.
_CTX_INIT = -2
_CTX_AMBIENT = 5

# Barrier-instant phases, in single-heap pop order.
_PHASES = (
    PRIORITY_FAULT,
    PRIORITY_SOURCE,
    PRIORITY_DELIVERY,
    PRIORITY_NODE,
    PRIORITY_COORDINATOR,
)


class ShardPlan:
    """Site → shard partition plus endpoint routing for boundary traffic.

    Nodes are assigned round-robin in creation order (deterministic and
    balanced for the homogeneous fleets of the paper's experiments); hosted
    fragments follow their node implicitly.  Source endpoints stick to the
    shard of the node their route first fed — the recurring generation event
    (and the generator's RNG closure) lives there for the rest of the run.
    Queries are homed on the shard of their first routed node: the query's
    coordinator state, result stream and coordinator rounds live there.
    """

    def __init__(self, num_shards: int) -> None:
        if num_shards <= 0:
            raise ValueError(f"num_shards must be positive, got {num_shards}")
        self.num_shards = num_shards
        self.node_shard: Dict[str, int] = {}
        self.source_shard: Dict[str, int] = {}
        self.query_shard: Dict[str, int] = {}
        self._next = 0

    def assign_node(self, node_id: str) -> int:
        shard = self.node_shard.get(node_id)
        if shard is None:
            shard = self._next % self.num_shards
            self._next += 1
            self.node_shard[node_id] = shard
        return shard

    def endpoint_shard(self, endpoint: str) -> int:
        shard = self.node_shard.get(endpoint)
        if shard is not None:
            return shard
        return self.source_shard.get(endpoint, 0)


class _SchedulerFacade:
    """The ``runtime.scheduler`` surface for fault/heartbeat subsystems.

    :class:`~repro.faults.injector.FaultInjector` and
    :class:`~repro.runtime.heartbeat.FailureDetector` schedule their global
    events through ``runtime.scheduler.schedule``.  The facade routes them
    onto the control-lane scheduler — their fire times become window
    barriers — and wraps the callbacks so actions they perform (heartbeat
    sends, lifecycle spawns, their own reschedules) carry correctly ranked
    tokens.
    """

    def __init__(self, runtime: "ShardedRuntime") -> None:
        self._runtime = runtime

    @property
    def now(self) -> float:
        return self._runtime._control.now

    @property
    def current_priority(self) -> Optional[int]:
        return self._runtime._control.current_priority

    def schedule(self, time: float, priority: int, fn: Callable[[float], None]):
        if self._runtime._pool is not None:
            raise RuntimeError(
                "the control-lane scheduler cannot accept new events under "
                "sharded_processes: fault injection and heartbeat detection "
                "schedule through it post-fork, which the worker replicas "
                "would never see — run those scenarios with inline shards "
                "(sharded_processes=False)"
            )
        return self._runtime._spawn(self._runtime._control, time, priority, fn)


class ShardedRuntime:
    """Drives a federation from per-site shard schedulers (see module doc).

    Mirrors the :class:`EventRuntime` constructor and lifecycle API so the
    simulator, the failure detector and the fault injector can use either
    interchangeably.  ``workers`` is the number of shards; ``processes=True``
    executes them on a forked worker pool (multiprocess mode),
    ``processes=False`` executes them inline.
    """

    def __init__(
        self,
        system: FederatedSystem,
        node_intervals: Optional[Mapping[str, float]] = None,
        timer: Optional[Callable[[], float]] = None,
        checkpoint_interval: Optional[float] = None,
        workers: int = 2,
        processes: bool = False,
        partition: Optional[Mapping[str, int]] = None,
    ) -> None:
        if checkpoint_interval is not None and checkpoint_interval <= 0:
            raise ValueError(
                f"checkpoint_interval must be positive, got {checkpoint_interval}"
            )
        self.system = system
        self.timer = timer
        self.checkpoint_interval = checkpoint_interval
        self.default_interval = system.shedding_interval
        self._plan = ShardPlan(workers)
        for node_id, shard in (partition or {}).items():
            if not (0 <= shard < workers):
                raise ValueError(
                    f"partition[{node_id!r}] must be in [0, {workers}), got {shard}"
                )
            self._plan.node_shard[node_id] = int(shard)
        self._node_intervals: Dict[str, float] = dict(node_intervals or {})
        self._started = False
        start = system.now
        self._frontier = start
        self._horizon = start
        self._shards: List[EventScheduler] = [
            EventScheduler(start=start) for _ in range(workers)
        ]
        # Global control lane: fault injections, failure-detector sweeps and
        # federation-wide checkpoint rounds.  Its event times are the window
        # barriers, so these globally-visible events run phase-interleaved
        # with every shard at a consistent instant.
        self._control = EventScheduler(start=start)
        self._pool = None
        self.scheduler = _SchedulerFacade(self)
        self._events: Dict[PyTuple[str, ...], object] = {}
        self._pending: Set[PyTuple[int, float, int]] = set()
        # Action-token state (see module docstring).
        self._active: Optional[EventScheduler] = None
        self._ctx: Optional[PyTuple[int, tuple]] = None
        self._intra_key: Optional[tuple] = None
        self._intra = 0
        # Interns lineage tp_levels tuples (see _extend_rank) so same-grid
        # chains share one object and compare by identity.
        self._tp_intern: Dict[tuple, tuple] = {}
        network = system.network
        if network.send_listener is not None:
            raise ValueError(
                "the system's network already has a send listener; "
                "is another runtime attached?"
            )
        if network.sequence_hook is not None:
            raise ValueError("the system's network already has a sequence hook")
        # Claim the network like EventRuntime does (double-attach guard); the
        # per-shard delivery events hang off the enqueue listener instead.
        self._send_hook = lambda message, deliver_at: None
        network.send_listener = self._send_hook
        network.sequence_hook = self._action_token
        network.attach_shards(workers, self._route_entry)
        network.enqueue_listener = self._on_enqueue
        self.network = network
        # Spawn order mirrors EventRuntime.__init__ exactly — construction
        # ranks seed the whole lineage order.
        for node in system.nodes.values():
            self._plan.assign_node(node.node_id)
        for node in system.nodes.values():
            self._schedule_node(node)
        for query in system.queries.values():
            self._home_query(query)
            self._schedule_query_sources(query)
        for coordinator in system.coordinators.all():
            self._schedule_coordinator(coordinator)
        if checkpoint_interval is not None:
            self._schedule_checkpoints(checkpoint_interval)
        if processes:
            from .workers import ShardWorkerPool

            self._pool = ShardWorkerPool(self)

    # ------------------------------------------------------------- action tokens
    def _action_token(self) -> tuple:
        """Rank of the next action in the currently executing context."""
        dctx = self.network.delivery_context
        sched = self._active
        if dctx is not None:
            if sched is not None and sched.current_priority is not None:
                pri = sched.current_priority
                now = sched.now
            else:
                # Ambient drain (drain_network at collect time): logical time
                # is the entry's own delivery time.
                pri = PRIORITY_DELIVERY
                now = dctx[0]
            rank: tuple = dctx
        elif self._ctx is not None:
            pri, rank = self._ctx
            now = sched.now
        else:
            pri, rank = (_CTX_INIT if not self._started else _CTX_AMBIENT), ()
            now = self._frontier
        key = (now, pri, rank)
        if key != self._intra_key:
            self._intra_key = key
            self._intra = 0
        k = self._intra
        self._intra += 1
        return (now, pri, rank, k)

    # ------------------------------------------------------------------ routing
    def _route_entry(self, entry) -> int:
        control = entry.control
        if control is not None:
            # Retransmission timer: fires on the sender's shard, which is
            # also where the link's ack consumes the unacked record — one
            # shard owns each link's sender-side state.
            return self._plan.endpoint_shard(control[1][0])
        message = entry.message
        kind = message.kind
        if kind == "result":
            # The coordinator endpoint is shared; the owning shard is the
            # query's home (the batch knows its query).
            return self._plan.query_shard.get(message.batch.query_id, 0)
        if kind == "ack":
            return self._plan.endpoint_shard(message.link[0])
        if kind == "heartbeat":
            # Failure detector state lives with the control lane; its
            # deliveries drain on shard 0.
            return 0
        return self._plan.endpoint_shard(message.destination)

    def _on_enqueue(self, entry, shard: int) -> None:
        deliver_at = entry.deliver_at
        active = self._active
        priority = PRIORITY_DELIVERY
        if (
            active is not None
            and active.current_priority is not None
            and deliver_at <= active.now
            and active.current_priority >= PRIORITY_DELIVERY
        ):
            priority = PRIORITY_POST_DELIVERY
        key = (shard, deliver_at, priority)
        if key in self._pending:
            return
        self._pending.add(key)
        sched = self._shards[shard]

        def fire(now: float) -> None:
            self._pending.discard(key)
            prev_active, prev_ctx = self._active, self._ctx
            self._active, self._ctx = sched, None
            try:
                for message in self.network.deliver_due_shard(shard, now):
                    self.system.dispatch(message, now)
            finally:
                self._active, self._ctx = prev_active, prev_ctx

        sched.schedule(deliver_at, priority, fire)

    # ----------------------------------------------------------- event spawning
    def _extend_rank(self, token: tuple) -> tuple:
        """Lineage rank of the event created by the schedule call ``token``.

        The natural lineage — each event's rank nesting the full token of
        the schedule call that created it — is order-correct but unbounded:
        a recurring round reschedules itself from inside its own context,
        so the chain deepens by one level per round, and same-grid chains
        (which tie on every ``(time, priority)`` level and differ only at
        the very root) cost O(depth^2) per comparison.  The rank is instead
        stored pre-linearized, in exactly the order the nested comparison
        would visit its parts, as a flat triple ``(tp_levels, root,
        k_path)``:

        * ``tp_levels`` — the chain's ``(time, priority)`` pairs, newest
          first: the prefix every nested comparison walks top-down;
        * ``root`` — the originating context, reached only when every level
          ties: ``()`` for construction/ambient chains, the ``(deliver_at,
          token)`` delivery context for delivery-spawned chains;
        * ``k_path`` — the per-level intra-context ordinals, oldest first:
          the nested comparison unwinds them root-to-leaf after the levels
          tie, so same-grid chains diverge right at ``k_path[0]``.

        The triple orders exactly like the nested form.  Mixed root shapes
        could only meet under a tied level priority, and root-context
        priorities ({-2, 5} ambient, {1, 4} delivery) are disjoint from the
        chain phases (-1, 0, 2, 3) — the same shape-compatibility argument
        the nested encoding relied on.  ``tp_levels`` is interned, so the
        same-grid chains that made the nested form quadratic now share one
        tuple object and compare with a single identity check.
        """
        now, pri, parent, k = token
        if len(parent) == 3:
            tp, root, ks = parent
        else:  # () construction/ambient, or a (deliver_at, token) delivery ctx
            tp, root, ks = (), parent, ()
        tp = ((now, pri),) + tp
        intern = self._tp_intern
        if len(intern) > 8192:
            # Bound the table on long runs.  Interning is a pure comparison
            # fast-path — order never depends on identity — and chains
            # re-converge on a shared object at their next extension.
            intern.clear()
        tp = intern.setdefault(tp, tp)
        return (tp, root, ks + (k,))

    def _spawn(
        self,
        sched: EventScheduler,
        time: float,
        priority: int,
        fn: Callable[[float], None],
    ):
        """Schedule ``fn`` ranked by the lineage of this schedule call."""
        rank = self._extend_rank(self._action_token())

        def fire(now: float) -> None:
            prev_active, prev_ctx = self._active, self._ctx
            self._active, self._ctx = sched, (priority, rank)
            try:
                fn(now)
            finally:
                self._active, self._ctx = prev_active, prev_ctx

        event = sched.schedule(time, priority, fire)
        # The rank doubles as cross-scheduler order: barrier instants merge
        # shard and control events of one phase by it (it reproduces the
        # single heap's schedule order, which local per-lane seqs cannot).
        event.rank = rank
        return event

    def _cancel(self, *key: str) -> None:
        handle = self._events.pop(key, None)
        if handle is not None:
            handle.cancel()

    def _node_interval(self, node: FspsNode) -> float:
        override = self._node_intervals.get(node.node_id)
        if override is not None:
            return override
        if node.shedding_interval is not None:
            return node.shedding_interval
        return self.default_interval

    def _schedule_node(self, node: FspsNode) -> None:
        interval = self._node_interval(node)
        shard = self._plan.assign_node(node.node_id)
        sched = self._shards[shard]
        key = ("node", node.node_id)

        def fire(now: float) -> None:
            self.system.run_node_round(node, now, timer=self.timer)
            self._events[key] = self._spawn(sched, now + interval, PRIORITY_NODE, fire)

        self._events[key] = self._spawn(
            sched, sched.now + interval, PRIORITY_NODE, fire
        )

    def _home_query(self, query: DeployedQuery) -> None:
        shard = 0
        for route in query.source_plan:
            if route.node_id is not None:
                shard = self._plan.assign_node(route.node_id)
                break
        self._plan.query_shard[query.query_id] = shard

    def _schedule_query_sources(self, query: DeployedQuery) -> None:
        interval = self.default_interval
        for index, route in enumerate(query.source_plan):
            if route.node_id is not None:
                shard = self._plan.assign_node(route.node_id)
            else:
                shard = self._plan.query_shard.get(query.query_id, 0)
            self._plan.source_shard.setdefault(route.source_id, shard)
            sched = self._shards[shard]
            key = ("source", query.query_id, str(index))
            self._schedule_route(query, route, sched, key, interval)

    def _schedule_route(self, query, route, sched, key, interval) -> None:
        # The generation window opens where the previous one closed, so no
        # simulated time is double-generated or skipped.
        state = {"start": sched.now}

        def fire(now: float) -> None:
            self.system.generate_source_route(query, route, state["start"], now)
            state["start"] = now
            self._events[key] = self._spawn(
                sched, now + interval, PRIORITY_SOURCE, fire
            )

        self._events[key] = self._spawn(
            sched, sched.now + interval, PRIORITY_SOURCE, fire
        )

    def _schedule_coordinator(self, coordinator: QueryCoordinator) -> None:
        interval = self.default_interval
        shard = self._plan.query_shard.get(coordinator.query_id, 0)
        sched = self._shards[shard]
        key = ("coordinator", coordinator.query_id)

        def fire(now: float) -> None:
            self.system.run_coordinator_round(coordinator, now)
            coordinator.snapshot(now)
            self._events[key] = self._spawn(
                sched, now + interval, PRIORITY_COORDINATOR, fire
            )

        self._events[key] = self._spawn(
            sched, sched.now + interval, PRIORITY_COORDINATOR, fire
        )

    def _schedule_checkpoints(self, interval: float) -> None:
        key = ("checkpoint", "__all__")

        def fire(now: float) -> None:
            self.system.checkpoint_all(now)
            self._events[key] = self._spawn(
                self._control, now + interval, PRIORITY_COORDINATOR, fire
            )

        self._events[key] = self._spawn(
            self._control, self._control.now + interval, PRIORITY_COORDINATOR, fire
        )

    # ----------------------------------------------------------------- running
    @property
    def now(self) -> float:
        return self._frontier

    def run(
        self,
        duration_seconds: Optional[float] = None,
        ticks: Optional[int] = None,
    ) -> None:
        """Advance by ``duration_seconds``/``ticks`` (EventRuntime semantics)."""
        if ticks is None:
            if duration_seconds is None or duration_seconds <= 0:
                raise ValueError(f"duration must be positive, got {duration_seconds}")
            ticks = max(1, int(round(duration_seconds / self.default_interval)))
        self._started = True
        for _ in range(ticks):
            self._horizon += self.default_interval
        if self._pool is not None:
            self._pool.run_to(self._horizon, ticks)
        else:
            self._run_to(self._horizon)
        self.system.now = self._horizon
        self.system.ticks += ticks

    def _run_to(self, horizon: float) -> None:
        lookahead = self.network.latency_model.min_latency()
        while True:
            if lookahead <= 0:
                t = self._next_instant()
                if t is None or t > horizon:
                    break
                self._frontier = t
                self._run_barrier_instant(t)
                if t == horizon:
                    break
            else:
                frontier = self._frontier
                if frontier >= horizon:
                    break
                end = min(horizon, frontier + lookahead)
                barrier = self._control.next_event_time()
                if barrier is not None and barrier < end:
                    end = barrier
                for sched in self._shards:
                    self._run_shard_window(sched, end)
                self._frontier = end
                if barrier is not None and barrier == end and end < horizon:
                    self._run_barrier_instant(end)
        if lookahead > 0:
            # The horizon instant itself (events at exactly t == horizon,
            # plus any control events due then) runs as a barrier.
            self._run_barrier_instant(horizon)
        self._frontier = horizon
        for sched in self._shards:
            if horizon > sched.now:
                sched.now = horizon
        if horizon > self._control.now:
            self._control.now = horizon

    def _next_instant(self) -> Optional[float]:
        times = [
            t
            for t in (
                *(sched.next_event_time() for sched in self._shards),
                self._control.next_event_time(),
            )
            if t is not None
        ]
        if not times:
            return None
        return min(times)

    def _run_shard_window(self, sched: EventScheduler, end: float) -> None:
        prev = self._active
        self._active = sched
        try:
            sched.run_window(end)
        finally:
            self._active = prev
        if sched.now < end:
            sched.now = end

    def _run_barrier_instant(self, t: float) -> None:
        """Phase-step instant ``t`` across every shard plus the control lane.

        Fault-priority control events (crash injections, detector sweeps)
        run before any shard phase by priority.  The coordinator phase — the
        only one shard and control lanes share (checkpoint rounds) — is
        rank-merged so its interleave matches the single heap's schedule
        order; every other phase runs lane by lane, shards before control.
        """
        schedulers = list(self._shards) + [self._control]
        for priority in _PHASES:
            if priority == PRIORITY_COORDINATOR:
                # The control lane shares this phase with the shard lanes
                # (checkpoint rounds vs per-query coordinator rounds), and a
                # federation-wide checkpoint reads state every shard writes:
                # the interleave must follow the single-heap schedule order,
                # which the spawn ranks carry.
                self._run_merged_instant(schedulers, t, priority)
                continue
            for sched in self._shards:
                self._run_instant(sched, t, priority)
            self._run_instant(self._control, t, priority)
        # POST_DELIVERY fixpoint: a zero-latency delivery can trigger sends
        # that land new post-delivery events on other shards at the same
        # instant; repeat until the instant is globally quiescent.
        progress = True
        while progress:
            progress = False
            for sched in schedulers:
                if sched.has_events_at(t, PRIORITY_POST_DELIVERY):
                    self._run_instant(sched, t, PRIORITY_POST_DELIVERY)
                    progress = True

    def _run_instant(self, sched: EventScheduler, t: float, priority: int) -> None:
        prev = self._active
        self._active = sched
        try:
            sched.run_instant(t, priority)
        finally:
            self._active = prev

    def _run_merged_instant(
        self, lanes: Sequence[EventScheduler], t: float, priority: int
    ) -> None:
        """Execute one barrier phase across ``lanes`` in spawn-rank order.

        Same-phase events on *different shards* commute (their sends cannot
        land before the next window), so ordinarily each lane runs its whole
        phase in turn.  Control-lane events do not commute with shard events
        — a checkpoint round captures coordinator and fragment state that
        the same instant's coordinator rounds are mutating — so when lanes
        share a phase, events are popped one at a time in the global order
        the spawn ranks record.  Every event at a shared phase comes from
        :meth:`_spawn` (deliveries never share a phase with the control
        lane), so a rank is always present.
        """
        while True:
            best: Optional[EventScheduler] = None
            best_rank = None
            for sched in lanes:
                event = sched.peek_instant(t, priority)
                if event is None:
                    continue
                if best is None or event.rank < best_rank:
                    best, best_rank = sched, event.rank
            if best is None:
                break
            prev = self._active
            self._active = best
            try:
                best.run_one(t, priority)
            finally:
                self._active = prev
        for sched in lanes:
            if t > sched.now:
                sched.now = t

    def close(self) -> None:
        """Detach from the network (and stop the worker pool, if any)."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        network = self.network
        if network.send_listener is self._send_hook:
            network.send_listener = None
        if getattr(network, "enqueue_listener", None) is self._on_enqueue:
            network.enqueue_listener = None
        network.detach_shards()
        # sequence_hook stays installed: the in-flight queue already holds
        # token-ordered entries, and collect-time drains (acks!) must keep
        # producing comparable tokens rather than plain ints.

    # --------------------------------------------------------------- lifecycle
    def _sync_system_clock(self) -> None:
        now = self._active.now if self._active is not None else self._frontier
        if now > self.system.now:
            self.system.now = now

    def _lifecycle(self, op: str, *args, **kwargs):
        """Run a lifecycle op locally or through the worker pool."""
        if self._pool is not None:
            return self._pool.lifecycle(op, args, kwargs)
        return getattr(self, "_local_" + op)(*args, **kwargs)

    def deploy_query(
        self,
        query_id: str,
        fragments: Mapping[str, object],
        sources: Sequence[object],
        placement: Mapping[str, str],
        nominal_rates: Optional[Dict[str, float]] = None,
    ) -> DeployedQuery:
        return self._lifecycle(
            "deploy_query",
            query_id,
            fragments,
            sources,
            placement,
            nominal_rates=nominal_rates,
        )

    def _local_deploy_query(
        self, query_id, fragments, sources, placement, nominal_rates=None
    ) -> DeployedQuery:
        self._sync_system_clock()
        deployed = self.system.deploy_query(
            query_id, fragments, sources, placement, nominal_rates=nominal_rates
        )
        self._home_query(deployed)
        self._schedule_query_sources(deployed)
        self._schedule_coordinator(self.system.coordinators.coordinator(query_id))
        return deployed

    def undeploy_query(self, query_id: str) -> QueryCoordinator:
        return self._lifecycle("undeploy_query", query_id)

    def _local_undeploy_query(self, query_id: str) -> QueryCoordinator:
        query = self.system.queries.get(query_id)
        coordinator = self.system.undeploy_query(query_id)
        if query is not None:
            for index in range(len(query.source_plan)):
                self._cancel("source", query_id, str(index))
        self._cancel("coordinator", query_id)
        return coordinator

    def add_node(
        self, node: FspsNode, shedding_interval: Optional[float] = None
    ) -> FspsNode:
        return self._lifecycle("add_node", node, shedding_interval=shedding_interval)

    def _local_add_node(self, node, shedding_interval=None) -> FspsNode:
        self.system.add_node(node)
        if shedding_interval is not None:
            self._node_intervals[node.node_id] = float(shedding_interval)
        self._schedule_node(node)
        return node

    def migrate_fragment(
        self, fragment_id: str, target_node_id: str
    ) -> MigrationReport:
        return self._lifecycle("migrate_fragment", fragment_id, target_node_id)

    def _local_migrate_fragment(self, fragment_id, target_node_id) -> MigrationReport:
        self._sync_system_clock()
        source_id = self.system.placement.get(fragment_id)
        report = self.system.migrate_fragment(fragment_id, target_node_id)
        self._rehome_inflight(fragment_id, source_id, target_node_id)
        return report

    def _rehome_inflight(
        self, fragment_id: str, source_id: Optional[str], target_node_id: str
    ) -> None:
        """Move a migrated fragment's in-flight batches to the new host shard.

        Batches already travelling towards the old host follow the placement
        table on delivery (:meth:`FederatedSystem.dispatch` forwards them),
        so their queue entries must drain on the shard that owns the *new*
        host — otherwise the forwarded processing would mutate the target
        node from the source node's shard, breaking both the one-shard-per-
        node state ownership the windows rely on and (in multiprocess mode)
        process isolation.  Entries keep their tokens: they merge into the
        new shard's heap exactly where the global order puts them.
        """
        if source_id is None:
            return
        src = self._plan.endpoint_shard(source_id)
        dst = self._plan.endpoint_shard(target_node_id)
        if src != dst:
            self._inject_inflight(self._extract_inflight_for(fragment_id, src), dst)

    def _extract_inflight_for(self, fragment_id: str, shard: int) -> List:
        """Pop the in-flight data entries bound for ``fragment_id`` off a shard."""
        queue = self.network._shard_queues[shard]
        moved = [
            entry
            for entry in queue
            if entry.message is not None
            and entry.message.kind == "data"
            and entry.message.target_fragment_id == fragment_id
        ]
        if moved:
            gone = {id(entry) for entry in moved}
            queue[:] = [entry for entry in queue if id(entry) not in gone]
            heapq.heapify(queue)
        return moved

    def _inject_inflight(self, entries, shard: int) -> None:
        for entry in entries:
            heapq.heappush(self.network._shard_queues[shard], entry)
            self._on_enqueue(entry, shard)

    def remove_node(
        self, node_id: str, migrate_to: Optional[Sequence[str]] = None
    ) -> FspsNode:
        return self._lifecycle("remove_node", node_id, migrate_to=migrate_to)

    def _local_remove_node(self, node_id, migrate_to=None) -> FspsNode:
        self._sync_system_clock()
        hosting = self.system.nodes.get(node_id)
        hosted = list(hosting.fragments) if hosting is not None else []
        node = self.system.remove_node(node_id, migrate_to=migrate_to)
        for fragment_id in hosted:
            self._rehome_inflight(
                fragment_id, node_id, self.system.placement[fragment_id]
            )
        self._cancel("node", node_id)
        self._node_intervals.pop(node_id, None)
        return node

    def fail_node(self, node_id: str) -> FspsNode:
        return self._lifecycle("fail_node", node_id)

    def _local_fail_node(self, node_id: str) -> FspsNode:
        self._sync_system_clock()
        node = self.system.fail_node(node_id)
        self._cancel("node", node_id)
        self._node_intervals.pop(node_id, None)
        return node

    def crash_node_silently(self, node_id: str) -> None:
        return self._lifecycle("crash_node_silently", node_id)

    def _local_crash_node_silently(self, node_id: str) -> None:
        if node_id not in self.system.nodes:
            raise ValueError(f"node {node_id!r} does not exist")
        self._cancel("node", node_id)
        self.system.network.dead_endpoints.add(node_id)

    def repair_node(self, node_id: str) -> None:
        return self._lifecycle("repair_node", node_id)

    def _local_repair_node(self, node_id: str) -> None:
        self.system.network.dead_endpoints.discard(node_id)

    def node_running(self, node_id: str) -> bool:
        return ("node", node_id) in self._events

    def rejoin_node(
        self, node: FspsNode, shedding_interval: Optional[float] = None
    ) -> RejoinReport:
        return self._lifecycle("rejoin_node", node, shedding_interval=shedding_interval)

    def _local_rejoin_node(self, node, shedding_interval=None) -> RejoinReport:
        self._sync_system_clock()
        report = self.system.rejoin_node(node)
        if shedding_interval is not None:
            self._node_intervals[node.node_id] = float(shedding_interval)
        self._schedule_node(node)
        return report

    def fail_coordinator(self, query_id: str) -> QueryCoordinator:
        return self._lifecycle("fail_coordinator", query_id)

    def _local_fail_coordinator(self, query_id: str) -> QueryCoordinator:
        self._sync_system_clock()
        self._cancel("coordinator", query_id)
        failed = self.system.fail_coordinator(query_id)
        self._schedule_coordinator(self.system.coordinators.coordinator(query_id))
        return failed

    def checkpoint_now(self) -> int:
        return self._lifecycle("checkpoint_now")

    def _local_checkpoint_now(self) -> int:
        self._sync_system_clock()
        return self.system.checkpoint_all(self.system.now)
