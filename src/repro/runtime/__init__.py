"""Discrete-event federation runtime.

Replaces the lockstep ``FederatedSystem.tick()`` loop with a deterministic
discrete-event scheduler: source generation, per-node shedding rounds,
coordinator ``updateSIC`` rounds and network deliveries are independently
scheduled events, enabling heterogeneous per-node shedding intervals and
mid-run cluster / query lifecycle changes while staying result-identical to
the lockstep loop for homogeneous, seeded runs.  The
:class:`~repro.runtime.heartbeat.FailureDetector` adds heartbeat-based
failure detection and automatic checkpoint-restore recovery on top.
"""

from .heartbeat import FailureDetector
from .runtime import EventRuntime
from .scheduler import EventScheduler, ScheduledEvent
from .sharded import ShardedRuntime, ShardPlan

__all__ = [
    "EventRuntime",
    "EventScheduler",
    "ScheduledEvent",
    "FailureDetector",
    "ShardedRuntime",
    "ShardPlan",
]
