"""Discrete-event federation runtime.

Replaces the lockstep ``FederatedSystem.tick()`` loop with a deterministic
discrete-event scheduler: source generation, per-node shedding rounds,
coordinator ``updateSIC`` rounds and network deliveries are independently
scheduled events, enabling heterogeneous per-node shedding intervals and
mid-run cluster / query lifecycle changes while staying result-identical to
the lockstep loop for homogeneous, seeded runs.
"""

from .runtime import EventRuntime
from .scheduler import EventScheduler, ScheduledEvent

__all__ = ["EventRuntime", "EventScheduler", "ScheduledEvent"]
