"""Fragment plan compiler: fused single-pass columnar execution.

The columnar v2 kernels (ColumnBlock + NumPy backends) made each *stage* of
the pipeline fast, but a fragment still pays per-block Python dispatch at
every operator boundary: ``advance_items`` → ``_process_columnar`` → SIC
rebind → ``_route_items`` → ``ingest_block`` → window bucketing, per operator
per tick.  For the common aggregate-query shape — a linear
``SourceReceiver → Filter* → WindowedAggregate → OutputOperator`` chain — all
of that dispatch is avoidable: the whole prefix can run as **one** columnar
pass per tick.

:func:`compile_fused_plan` walks a finalized fragment and, when every stage
is fusible, emits a :class:`FusedPlan`.  Per tick the plan:

1. drains the receiver's ``ImmediateWindow`` pane into one merged block,
2. evaluates every filter as a boolean mask on the *original* columns and
   AND-combines them, so the survivor gather happens once no matter how many
   filters are chained (mask fusion),
3. stamps the propagated SIC share as a constant column, and
4. buckets the surviving rows straight into the aggregate's ``TimeWindow``
   pane accumulators (change-point bucketing via ``insert_block``).

Determinism / bit-exactness
---------------------------
Every reduction the fused path performs replicates the staged arithmetic
operation-for-operation: pane SIC folds go through :func:`seq_sum` on the
same constant columns the staged path would have folded, and propagated
shares are computed as ``input_sic / survivors`` — identical to
``propagate_sic([input_sic], survivors)[0]`` because summing a one-element
list is exact.  Seeded fused runs are therefore bit-exact result-identical
to staged runs (the differential suite asserts it).

State and fallback
------------------
The plan owns **no state**: buffered input lives in the receiver's window
and windowed state in the aggregate's ``TimeWindow``, exactly where the
staged pipeline keeps them.  Checkpoints, migration and fail/rejoin therefore
see the staged layout unchanged, and any individual tick may fall back to
staged execution (list-backed blocks after a restore, per-tuple delivery,
a payload column the filters cannot vectorize) without moving data:
:meth:`FusedPlan.run_prefix` validates the tick's buffered input *before*
touching any state and simply declines when it is not fusible.

The fusion switch mirrors the columnar backend registry: process-wide
(``set_fusion`` / ``use_fusion``), seeded from ``REPRO_FUSION`` (default
``"on"``), surfaced as ``SimulationConfig.fusion`` and scoped by the
simulator around each run.  The list backend always runs staged — it is the
NumPy-free equivalence oracle.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional, Sequence, Tuple as PyTuple

try:  # Guarded: the list backend (and its CI leg) works without NumPy.
    import numpy as np
except ImportError:  # pragma: no cover - exercised only on stripped installs
    np = None

from ..core.columns import ColumnAppender, ColumnBlock, get_default_backend
from ..core.tuples import seq_sum
from .operators.aggregate import Average, Count, Max, Min, Sum
from .operators.stateless import Filter, OutputOperator, SourceReceiver
from .windows import ImmediateWindow, TimeWindow, _PaneAcc

if np is not None:
    from ..core import kernels as _kernels
else:  # pragma: no cover - stripped installs never activate fusion
    _kernels = None

__all__ = [
    "FUSION_MODES",
    "FusedPlan",
    "compile_fused_plan",
    "fused_execution_active",
    "fusion_enabled",
    "set_fusion",
    "use_fusion",
]

FUSION_MODES = ("on", "off")

_fusion_mode = os.environ.get("REPRO_FUSION", "on")
if _fusion_mode not in FUSION_MODES:  # pragma: no cover - defensive env handling
    raise ValueError(
        f"REPRO_FUSION must be one of {FUSION_MODES}, got {_fusion_mode!r}"
    )


def fusion_enabled() -> bool:
    """True when fused fragment execution is switched on process-wide."""
    return _fusion_mode == "on"


def set_fusion(mode: str) -> str:
    """Set the process-wide fusion mode; returns the previous mode."""
    global _fusion_mode
    if mode not in FUSION_MODES:
        raise ValueError(f"fusion mode must be one of {FUSION_MODES}, got {mode!r}")
    previous = _fusion_mode
    _fusion_mode = mode
    return previous


@contextmanager
def use_fusion(mode: str) -> Iterator[None]:
    """Scope the fusion mode to a ``with`` block (mirrors ``use_backend``)."""
    previous = set_fusion(mode)
    try:
        yield
    finally:
        set_fusion(previous)


def fused_execution_active() -> bool:
    """Fusion is on *and* the numpy columnar backend is the process default.

    The list backend always runs staged: it doubles as the NumPy-free
    fallback and the equivalence oracle for the differential suites.
    """
    return _fusion_mode == "on" and np is not None and get_default_backend() == "numpy"


# Exact types only: subclasses may override _process/_compute with semantics
# the fused pass does not replicate, so they decline fusion.
_FUSIBLE_AGGREGATES = (Average, Count, Max, Min, Sum)


def compile_fused_plan(fragment) -> Optional["FusedPlan"]:
    """Compile ``fragment`` into a :class:`FusedPlan`, or ``None``.

    Fusible shape — checked structurally, once per fragment:

    * a linear port-0 chain ``SourceReceiver → Filter* → aggregate → output``
      (every operator feeds exactly the next one, nothing else);
    * exactly one bound source, feeding the chain head, and no upstream
      fragment bindings;
    * every filter carries a column annotation
      (:meth:`Filter.field_threshold`);
    * the aggregate is one of Average/Sum/Count/Max/Min over a *tumbling*
      ``TimeWindow``;
    * the chain tail is the fragment's exit operator.

    Anything else — joins, unions, group-by, top-k, statistics, sliding
    windows, multi-port operators, opaque filter predicates — returns
    ``None`` and the fragment runs the staged pipeline unchanged.
    """
    order = fragment._order
    ops = fragment.operators
    if len(order) < 3:
        return None
    if fragment.upstream_bindings:
        return None
    if len(fragment.source_bindings) != 1:
        return None
    ((entry_id, entry_port),) = fragment.source_bindings.values()
    if entry_id != order[0] or entry_port != 0:
        return None
    if fragment.exit_operator_id != order[-1]:
        return None
    for index, op_id in enumerate(order):
        targets = list(fragment._adjacency.get(op_id, ()))
        if index + 1 < len(order):
            if targets != [(order[index + 1], 0)]:
                return None
        elif targets:
            return None
    receiver = ops[order[0]]
    if type(receiver) is not SourceReceiver or receiver.num_ports != 1:
        return None
    if type(receiver._windows[0]) is not ImmediateWindow:
        return None
    aggregate = ops[order[-2]]
    if type(aggregate) not in _FUSIBLE_AGGREGATES or aggregate.num_ports != 1:
        return None
    window = aggregate._windows[0]
    if type(window) is not TimeWindow or window.is_sliding:
        return None
    if type(ops[order[-1]]) is not OutputOperator:
        return None
    filter_ids = tuple(order[1:-2])
    for op_id in filter_ids:
        filt = ops[op_id]
        if type(filt) is not Filter or filt.num_ports != 1:
            return None
        if getattr(filt.predicate, "column_field", None) is None:
            return None
        if type(filt._windows[0]) is not ImmediateWindow:
            return None
    return FusedPlan(
        receiver=receiver,
        receiver_id=order[0],
        filters=tuple(ops[op_id] for op_id in filter_ids),
        filter_ids=filter_ids,
        aggregate=aggregate,
        aggregate_id=order[-2],
        suffix_ids=tuple(order[-2:]),
    )


class FusedPlan:
    """A compiled fused execution plan for one linear fragment chain.

    ``run_prefix`` replaces the staged receiver→filters→aggregate-ingest
    dispatch; the aggregate and output operators still advance through the
    fragment's normal loop (``suffix_ids``) so pane closing, Equation-3 SIC
    propagation over windows and result emission stay on the proven path.

    Operator references are captured at compile time: a fragment's operator
    objects are stable after :meth:`~QueryFragment.finalize` (checkpoint
    restore mutates them in place, and any re-wiring re-finalizes, which
    recompiles the plan).
    """

    __slots__ = (
        "receiver",
        "receiver_id",
        "filters",
        "filter_ids",
        "aggregate",
        "aggregate_id",
        "suffix_ids",
    )

    def __init__(
        self,
        receiver: SourceReceiver,
        receiver_id: str,
        filters: PyTuple[Filter, ...],
        filter_ids: PyTuple[str, ...],
        aggregate,
        aggregate_id: str,
        suffix_ids: Sequence[str],
    ) -> None:
        self.receiver = receiver
        self.receiver_id = receiver_id
        self.filters = filters
        self.filter_ids = filter_ids
        self.aggregate = aggregate
        self.aggregate_id = aggregate_id
        self.suffix_ids = tuple(suffix_ids)

    def run_prefix(self, fragment, now: float) -> bool:
        """Run receiver → filters → aggregate ingest as one fused pass.

        Returns ``False`` — having touched no state — when this tick's
        buffered input is not fusible (per-tuple items, list-backed or
        mixed-schema blocks, a filter column that is not float64); the
        caller then runs the full staged pipeline for the tick.
        """
        receiver = self.receiver
        filters = self.filters
        for filt in filters:
            # Filters never buffer across ticks in normal operation; a
            # non-empty accumulator (e.g. a hand-driven test) must drain
            # through the staged loop, which advances every operator.
            if filt._windows[0]._acc.items:
                return False
        window = receiver._windows[0]
        acc = window._acc
        items = acc.items
        if not items:
            return True  # empty tick: nothing buffered, run the suffix only
        fields = None
        check_fields = len(items) > 1  # a lone range never needs a concat
        for item in items:
            if type(item) is not tuple:  # a Tuple object, not a (block, lo, hi) range
                return False
            block = item[0]
            if not block.is_array_backed:
                return False
            if check_fields:
                block_fields = list(block.values)
                if fields is None:
                    fields = block_fields
                elif block_fields != fields:
                    return False
            for filt in filters:
                column = block.values.get(filt.predicate.column_field)
                if not (isinstance(column, np.ndarray) and column.dtype == np.float64):
                    return False
        # -- drain the receiver pane ---------------------------------------
        # Equivalent to ImmediateWindow.advance + WindowPane.as_block with
        # the pane object elided: same accumulator reset, same
        # concat_ranges merge (insertion order, no sorting), same
        # incrementally-maintained SIC total.
        window._acc = _PaneAcc()
        count = acc.count
        appender = ColumnAppender()
        if all(appender.append_range(b, lo, hi) for b, lo, hi in items):
            # Uniform array-backed ranges: one in-order pass into the
            # appender's preallocated buffers; build() trims views —
            # element-identical to the concat_ranges merge of the same
            # ranges.
            merged = appender.build()
        else:
            merged = ColumnBlock.concat_ranges(items)
        receiver.emitted_tuples += count
        # == propagate_sic([acc.sic], count)[0]: a one-element sum is exact.
        share = acc.sic / count
        sic_column = np.full(count, share)
        # -- fused filter ladder: masks on the original columns ------------
        mask = None
        total = count
        for filt in filters:
            fragment._pending_cost += filt.cost_per_tuple * count
            fragment._pending_tuples += count
            filt.ingested_tuples += count
            # Bit-equal to the staged pane fold: the SIC column is constant
            # and seq_sum replicates _PaneAcc.add_range on both the cumsum
            # (long) and scalar-loop (short) branches.
            input_sic = seq_sum(sic_column)
            predicate = filt.predicate
            stage_mask = predicate.column_compare(
                merged.values[predicate.column_field], predicate.column_threshold
            )
            mask = stage_mask if mask is None else mask & stage_mask
            kept = int(np.count_nonzero(mask))
            if kept == 0:
                filt.lost_sic += input_sic
                return True  # whole pane rejected: downstream sees nothing
            filt.emitted_tuples += kept
            share = input_sic / kept
            sic_column = np.full(kept, share)
            count = kept
        # -- one survivor gather + change-point window bucketing -----------
        if mask is None or count == total:
            block = _kernels.constant_sic_block(merged, sic_column)
        else:
            block = _kernels.apply_mask(merged, mask, sic_column)
        aggregate = self.aggregate
        aggregate.ingest_block(block)
        fragment._pending_cost += aggregate.cost_per_tuple * count
        fragment._pending_tuples += count
        return True
