"""Streaming substrate: schemas, windows, operators, query graphs, CQL, engine."""

from .cql import CqlError, QuerySpec, compile_query, parse, plan
from .engine import LocalEngine
from .query import Edge, FragmentOutput, QueryFragment, QueryGraph
from .schema import Field, Schema
from .windows import CountWindow, ImmediateWindow, TimeWindow, WindowBuffer, WindowPane

__all__ = [
    "CqlError",
    "QuerySpec",
    "compile_query",
    "parse",
    "plan",
    "LocalEngine",
    "Edge",
    "FragmentOutput",
    "QueryFragment",
    "QueryGraph",
    "Field",
    "Schema",
    "CountWindow",
    "ImmediateWindow",
    "TimeWindow",
    "WindowBuffer",
    "WindowPane",
]
