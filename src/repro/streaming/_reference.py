"""Reference (pre-optimisation) window implementations.

Preserves the seed's tuple-at-a-time window buffers exactly as they shipped,
mirroring :mod:`repro.core._reference` for the shedding hot paths:

* **Correctness oracle** — the columnar :class:`repro.streaming.windows.
  TimeWindow` / :class:`ImmediateWindow` must close panes with identical
  membership and ordering for any insertion sequence, and identical SIC
  values up to float-summation reordering: the new panes accumulate SIC in
  insertion order while this reference re-sums after sorting by timestamp,
  so out-of-order multi-batch input may differ in the last ULP (bit-exact
  when input arrives time-ordered, as every engine path produces);
  ``tests/streaming/test_columnar_windows.py`` checks the fast path against
  this reference on randomized inputs.
* **Perf baseline** — ``scripts/bench_report.py`` and
  ``benchmarks/test_bench_micro.py`` time the columnar insert path against
  this per-tuple reference so the recorded speedups in
  ``BENCH_shedding.json`` are machine-independent.

Do not "improve" this module — its per-tuple object churn (one list append
and one ``with_sic`` copy per tuple per pane, pane SIC re-summed on access)
is the point.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core.tuples import Tuple

__all__ = ["ReferenceWindowPane", "ReferenceImmediateWindow", "ReferenceTimeWindow"]


@dataclass
class ReferenceWindowPane:
    """The seed's pane: tuple list plus on-demand SIC re-summing."""

    start: float
    end: float
    tuples: List[Tuple]

    @property
    def total_sic(self) -> float:
        return sum(t.sic for t in self.tuples)

    def __len__(self) -> int:
        return len(self.tuples)


class ReferenceImmediateWindow:
    """The seed's degenerate window: releases tuples on every advance."""

    def __init__(self) -> None:
        self._buffer: List[Tuple] = []

    def insert(self, tuples: Sequence[Tuple]) -> None:
        self._buffer.extend(tuples)

    def advance(self, now: float) -> List[ReferenceWindowPane]:
        if not self._buffer:
            return []
        pane = ReferenceWindowPane(start=float("-inf"), end=now, tuples=self._buffer)
        self._buffer = []
        return [pane]

    def pending_count(self) -> int:
        return len(self._buffer)


class ReferenceTimeWindow:
    """The seed's time window: per-tuple pane routing and list appends."""

    DEFAULT_ALLOWED_LATENESS = 0.5

    def __init__(
        self,
        size_seconds: float,
        slide_seconds: Optional[float] = None,
        allowed_lateness: Optional[float] = None,
    ) -> None:
        if size_seconds <= 0:
            raise ValueError(f"size_seconds must be positive, got {size_seconds}")
        slide = slide_seconds if slide_seconds is not None else size_seconds
        if slide <= 0:
            raise ValueError(f"slide_seconds must be positive, got {slide}")
        if slide > size_seconds:
            raise ValueError("slide_seconds cannot exceed size_seconds")
        self.size = float(size_seconds)
        self.slide = float(slide)
        if allowed_lateness is None:
            allowed_lateness = self.DEFAULT_ALLOWED_LATENESS
        if allowed_lateness < 0:
            raise ValueError(
                f"allowed_lateness must be non-negative, got {allowed_lateness}"
            )
        self.allowed_lateness = float(allowed_lateness)
        self._panes: Dict[int, List[Tuple]] = {}
        self._last_closed_end: float = float("-inf")

    @property
    def is_sliding(self) -> bool:
        return self.slide < self.size

    def _pane_indices(self, timestamp: float) -> List[int]:
        last = int(math.floor(timestamp / self.slide))
        first = int(math.floor((timestamp - self.size) / self.slide)) + 1
        return list(range(first, last + 1))

    def insert(self, tuples: Sequence[Tuple]) -> None:
        for t in tuples:
            indices = self._pane_indices(t.timestamp)
            indices = [
                i for i in indices if i * self.slide + self.size > self._last_closed_end
            ]
            if not indices:
                continue
            if len(indices) == 1:
                self._panes.setdefault(indices[0], []).append(t)
                continue
            share = t.sic / len(indices)
            for idx in indices:
                self._panes.setdefault(idx, []).append(t.with_sic(share))

    def advance(self, now: float) -> List[ReferenceWindowPane]:
        closed: List[ReferenceWindowPane] = []
        for idx in sorted(self._panes):
            start = idx * self.slide
            end = start + self.size
            if end + self.allowed_lateness <= now:
                tuples = self._panes.pop(idx)
                tuples.sort(key=lambda t: t.timestamp)
                closed.append(ReferenceWindowPane(start=start, end=end, tuples=tuples))
                self._last_closed_end = max(self._last_closed_end, end)
        return closed

    def pending_count(self) -> int:
        return sum(len(ts) for ts in self._panes.values())
