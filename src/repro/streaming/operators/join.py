"""Windowed equi-join.

The TOP-5 query of the complex workload joins CPU and memory measurement
streams on the node identifier within a one-second window
(``AllSrcCPU.id = AllSrcMem.id``).  :class:`WindowEquiJoin` implements that
join as a two-port operator: both ports buffer tuples in identically
configured time windows, aligned panes are joined atomically, and the joined
output shares the input SIC (Equation 3).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ...core.tuples import Tuple
from ..windows import TimeWindow
from .base import Operator, PaneGroup

__all__ = ["WindowEquiJoin"]


class WindowEquiJoin(Operator):
    """Join two streams on equal key values within a time window.

    Args:
        left_key: key field of port-0 tuples.
        right_key: key field of port-1 tuples.
        window_seconds: window range applied to both ports.
        slide_seconds: optional slide.
        left_prefix / right_prefix: prefixes applied to payload fields of the
            joined output when both sides define the same field name.
    """

    def __init__(
        self,
        left_key: str,
        right_key: str,
        window_seconds: float = 1.0,
        slide_seconds: Optional[float] = None,
        left_prefix: str = "left_",
        right_prefix: str = "right_",
        cost_per_tuple: float = 1.0,
    ) -> None:
        super().__init__(
            name=f"join[{left_key}={right_key}]",
            cost_per_tuple=cost_per_tuple,
            num_ports=2,
            window_factory=lambda: TimeWindow(window_seconds, slide_seconds),
        )
        self.left_key = left_key
        self.right_key = right_key
        self.left_prefix = left_prefix
        self.right_prefix = right_prefix

    def _merge_payload(self, left: Tuple, right: Tuple) -> Dict[str, object]:
        values: Dict[str, object] = {}
        for name, value in left.values.items():
            values[name] = value
        for name, value in right.values.items():
            if name in values and values[name] != value:
                values[f"{self.right_prefix}{name}"] = value
            else:
                values.setdefault(name, value)
        return values

    def _process(self, panes: PaneGroup, now: float) -> List[Tuple]:
        left_pane = panes.get(0)
        right_pane = panes.get(1)
        if left_pane is None or right_pane is None:
            # One side of the join has no data for this window: no output,
            # the consumed SIC is lost exactly as the paper's model dictates.
            return []
        # Hash join: build on the right side, probe with the left side.
        build: Dict[object, List[Tuple]] = {}
        for t in right_pane.tuples:
            key = t.values.get(self.right_key)
            if key is None:
                continue
            build.setdefault(key, []).append(t)
        timestamp = self._pane_timestamp(panes, now)
        outputs: List[Tuple] = []
        for left in left_pane.tuples:
            key = left.values.get(self.left_key)
            if key is None:
                continue
            for right in build.get(key, ()):  # type: ignore[arg-type]
                outputs.append(
                    Tuple(
                        timestamp=timestamp,
                        sic=0.0,
                        values=self._merge_payload(left, right),
                    )
                )
        return outputs
