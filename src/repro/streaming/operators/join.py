"""Windowed equi-join.

The TOP-5 query of the complex workload joins CPU and memory measurement
streams on the node identifier within a one-second window
(``AllSrcCPU.id = AllSrcMem.id``).  :class:`WindowEquiJoin` implements that
join as a two-port operator: both ports buffer tuples in identically
configured time windows, aligned panes are joined atomically, and the joined
output shares the input SIC (Equation 3).

Columnar integration: under the default merge rule the join's *output*
payload schema is data-dependent — a shared field name is prefixed only on
the rows where the two sides carry different values — so the join cannot
emit a uniform-schema :class:`~repro.core.columns.ColumnBlock` and
``_process_columnar`` stays a deliberate per-tuple fallback.  The *input*
side is vectorized instead: when both panes are column-backed, the build and
probe phases read the key and payload columns directly and materialize
payload dicts only for matching rows, instead of materializing every
buffered tuple first.  Both paths emit identical tuples in identical order
(differential-tested in ``tests/streaming/test_join_columnar.py``).

``columnar_output=True`` opts into a *prefix-normalised* merge rule instead:
a right-side field is renamed ``right_prefix + name`` whenever the left
schema defines ``name`` — always, not only on conflicting rows.  The output
schema is then uniform across rows, so ``_process_columnar`` emits one
joined ``ColumnBlock`` per round and downstream operators stay columnar.
The default stays off because the rule changes the output schema on rows
where the shared values happen to be equal.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ...core.columns import ColumnBlock, to_pylist
from ...core.tuples import Tuple
from ..windows import TimeWindow, WindowPane
from .base import Operator, PaneGroup

__all__ = ["WindowEquiJoin"]


class WindowEquiJoin(Operator):
    """Join two streams on equal key values within a time window.

    Args:
        left_key: key field of port-0 tuples.
        right_key: key field of port-1 tuples.
        window_seconds: window range applied to both ports.
        slide_seconds: optional slide.
        left_prefix / right_prefix: prefixes applied to payload fields of the
            joined output when both sides define the same field name.
        columnar_output: opt into the prefix-normalised merge rule (a right
            field is prefixed whenever its name exists in the left schema,
            regardless of the row's values), which makes the output schema
            uniform and lets the join emit ``ColumnBlock`` output directly.
    """

    def __init__(
        self,
        left_key: str,
        right_key: str,
        window_seconds: float = 1.0,
        slide_seconds: Optional[float] = None,
        left_prefix: str = "left_",
        right_prefix: str = "right_",
        cost_per_tuple: float = 1.0,
        columnar_output: bool = False,
    ) -> None:
        super().__init__(
            name=f"join[{left_key}={right_key}]",
            cost_per_tuple=cost_per_tuple,
            num_ports=2,
            window_factory=lambda: TimeWindow(window_seconds, slide_seconds),
        )
        self.left_key = left_key
        self.right_key = right_key
        self.left_prefix = left_prefix
        self.right_prefix = right_prefix
        self.columnar_output = bool(columnar_output)

    def _merge_payload(self, left: Tuple, right: Tuple) -> Dict[str, object]:
        values: Dict[str, object] = {}
        for name, value in left.values.items():
            values[name] = value
        if self.columnar_output:
            # Prefix-normalised rule: a name in the *left schema* is always
            # prefixed, so every output row carries the same schema.
            prefix = self.right_prefix
            left_fields = left.values
            for name, value in right.values.items():
                if name in left_fields:
                    values[f"{prefix}{name}"] = value
                else:
                    values[name] = value
            return values
        for name, value in right.values.items():
            if name in values and values[name] != value:
                values[f"{self.right_prefix}{name}"] = value
            else:
                values.setdefault(name, value)
        return values

    def _process_columnar(
        self, panes: PaneGroup, now: float
    ) -> Optional[ColumnBlock]:
        """Emit a joined column block (``columnar_output`` only).

        Under the default merge rule this is an explicit per-tuple fallback:
        a shared field is prefixed only on rows where the sides disagree, so
        the output schema varies row by row and there is no uniform column
        representation to emit — the columnar win lives in :meth:`_process`
        instead, which probes the pane *columns* directly.

        With ``columnar_output=True`` the prefix-normalised rule fixes the
        schema per round, and both panes being column-backed lets the probe
        gather survivor rows straight into output columns.
        """
        if not self.columnar_output:
            return None
        left_pane = panes.get(0)
        right_pane = panes.get(1)
        if left_pane is None or right_pane is None:
            return None  # _process loses the consumed SIC, as today
        left_block = left_pane.as_block()
        right_block = right_pane.as_block()
        if left_block is None or right_block is None:
            return None  # per-tuple pane: fall back to the row join
        timestamp = self._pane_timestamp(panes, now)
        right_keys = right_block.values.get(self.right_key)
        left_keys = left_block.values.get(self.left_key)
        if right_keys is None or left_keys is None:
            return ColumnBlock([], [], {})  # no row carries the key
        build: Dict[object, List[int]] = {}
        for j, key in enumerate(to_pylist(right_keys)):
            if key is None:
                continue
            build.setdefault(key, []).append(j)
        left_rows: List[int] = []
        right_rows: List[int] = []
        for i, key in enumerate(to_pylist(left_keys)):
            if key is None:
                continue
            rows = build.get(key)
            if rows:
                for j in rows:
                    left_rows.append(i)
                    right_rows.append(j)
        count = len(left_rows)
        if count == 0:
            return ColumnBlock([], [], {})
        # Same field order as the normalised row merge: left block fields
        # first, then right block fields (prefixed where shared).
        values: Dict[str, List[object]] = {}
        for field, column in left_block.values.items():
            column = to_pylist(column)
            values[field] = [column[i] for i in left_rows]
        prefix = self.right_prefix
        left_fields = left_block.values
        for field, column in right_block.values.items():
            column = to_pylist(column)
            name = f"{prefix}{field}" if field in left_fields else field
            values[name] = [column[j] for j in right_rows]
        return ColumnBlock(
            timestamps=[timestamp] * count,
            sics=[0.0] * count,
            values=values,
        )

    def _process(self, panes: PaneGroup, now: float) -> List[Tuple]:
        left_pane = panes.get(0)
        right_pane = panes.get(1)
        if left_pane is None or right_pane is None:
            # One side of the join has no data for this window: no output,
            # the consumed SIC is lost exactly as the paper's model dictates.
            return []
        timestamp = self._pane_timestamp(panes, now)
        left_block = left_pane.as_block()
        right_block = right_pane.as_block()
        if left_block is not None and right_block is not None:
            return self._join_blocks(left_block, right_block, timestamp)
        return self._join_tuples(left_pane, right_pane, timestamp)

    def _join_tuples(
        self, left_pane: WindowPane, right_pane: WindowPane, timestamp: float
    ) -> List[Tuple]:
        """Seed per-tuple hash join: build on the right, probe with the left."""
        build: Dict[object, List[Tuple]] = {}
        for t in right_pane.tuples:
            key = t.values.get(self.right_key)
            if key is None:
                continue
            build.setdefault(key, []).append(t)
        outputs: List[Tuple] = []
        for left in left_pane.tuples:
            key = left.values.get(self.left_key)
            if key is None:
                continue
            for right in build.get(key, ()):  # type: ignore[arg-type]
                outputs.append(
                    Tuple(
                        timestamp=timestamp,
                        sic=0.0,
                        values=self._merge_payload(left, right),
                    )
                )
        return outputs

    def _join_blocks(
        self, left_block: ColumnBlock, right_block: ColumnBlock, timestamp: float
    ) -> List[Tuple]:
        """Column-probing hash join over two column-backed panes.

        Rows are visited in pane order, exactly like the per-tuple path, and
        payload dicts are built (in block field order — the order
        ``to_tuples`` would have used) only for the rows that actually match.
        """
        right_keys = right_block.values.get(self.right_key)
        left_keys = left_block.values.get(self.left_key)
        if right_keys is None or left_keys is None:
            # A missing key column means no row can carry the key — the
            # per-tuple path would have skipped every row too.
            return []
        right_keys = to_pylist(right_keys)
        left_keys = to_pylist(left_keys)
        build: Dict[object, List[int]] = {}
        for j, key in enumerate(right_keys):
            if key is None:
                continue
            build.setdefault(key, []).append(j)
        left_fields = list(left_block.values)
        left_columns = [to_pylist(left_block.values[f]) for f in left_fields]
        right_fields = list(right_block.values)
        right_columns = [
            to_pylist(right_block.values[f]) for f in right_fields
        ]
        right_prefix = self.right_prefix
        normalised = self.columnar_output
        left_field_set = set(left_fields)
        outputs: List[Tuple] = []
        for i, key in enumerate(left_keys):
            if key is None:
                continue
            rows = build.get(key)
            if not rows:
                continue
            for j in rows:
                # Same merge rule as _merge_payload, applied to column rows.
                values: Dict[str, object] = {
                    f: column[i] for f, column in zip(left_fields, left_columns)
                }
                if normalised:
                    for f, column in zip(right_fields, right_columns):
                        name = f"{right_prefix}{f}" if f in left_field_set else f
                        values[name] = column[j]
                else:
                    for f, column in zip(right_fields, right_columns):
                        value = column[j]
                        if f in values and values[f] != value:
                            values[f"{right_prefix}{f}"] = value
                        else:
                            values.setdefault(f, value)
                outputs.append(Tuple(timestamp=timestamp, sic=0.0, values=values))
        return outputs
