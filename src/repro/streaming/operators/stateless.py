"""Stateless operators: receivers, projection, mapping, filtering, union, output.

These operators process tuples as they arrive (through an
:class:`~repro.streaming.windows.ImmediateWindow`) and do not maintain window
state.  They still propagate SIC through the base-class machinery: the SIC of
an atomically processed group is preserved as long as at least one tuple
survives the transformation, which is exactly the paper's model — information
content is only lost when an operator emits nothing (or when tuples are shed).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence

from ...core.columns import ColumnBlock
from ...core.tuples import Tuple
from .base import Operator, PaneGroup

try:  # Guarded: the list columnar backend works without NumPy.
    import numpy as np
except ImportError:  # pragma: no cover - exercised only on stripped installs
    np = None


def _pane_group_blocks(panes: PaneGroup) -> Optional[List[ColumnBlock]]:
    """All panes of the group as blocks in port order, or ``None``.

    Returns ``None`` (caller falls back to the per-tuple path) unless every
    pane of the group is columnar.
    """
    blocks: List[ColumnBlock] = []
    for port in sorted(panes):
        block = panes[port].as_block()
        if block is None:
            return None
        blocks.append(block)
    return blocks

__all__ = [
    "SourceReceiver",
    "Project",
    "MapValues",
    "Filter",
    "Union",
    "OutputOperator",
]


class SourceReceiver(Operator):
    """Entry operator bound to a single data source.

    A receiver simply forwards the source tuples into the query graph.  It is
    modelled explicitly because the paper counts receivers when reporting the
    number of operators per fragment (e.g. the TOP-5 fragment has 10 CPU and
    10 memory receivers).
    """

    def __init__(self, source_id: str, cost_per_tuple: float = 0.1) -> None:
        super().__init__(name=f"recv[{source_id}]", cost_per_tuple=cost_per_tuple)
        self.source_id = source_id

    def _process(self, panes: PaneGroup, now: float) -> List[Tuple]:
        return [t.copy() for t in self._all_tuples(panes)]

    def _process_columnar(
        self, panes: PaneGroup, now: float
    ) -> Optional[ColumnBlock]:
        blocks = _pane_group_blocks(panes)
        if blocks is None:
            return None
        if len(blocks) == 1:
            # The base class rewrites the SIC column of the returned block,
            # which must not alias the pane's storage.
            return blocks[0].shallow_copy()
        return ColumnBlock.concat(blocks)


class Project(Operator):
    """Keep only a subset of payload fields."""

    def __init__(self, fields: Sequence[str], cost_per_tuple: float = 0.1) -> None:
        super().__init__(name=f"project{list(fields)}", cost_per_tuple=cost_per_tuple)
        self.fields = list(fields)

    def _process(self, panes: PaneGroup, now: float) -> List[Tuple]:
        outputs = []
        for t in self._all_tuples(panes):
            values = {f: t.values.get(f) for f in self.fields}
            outputs.append(Tuple(timestamp=t.timestamp, sic=0.0, values=values))
        return outputs


class MapValues(Operator):
    """Apply a per-tuple payload transformation."""

    def __init__(
        self,
        func: Callable[[Dict[str, Any]], Dict[str, Any]],
        name: str = "map",
        cost_per_tuple: float = 0.2,
    ) -> None:
        super().__init__(name=name, cost_per_tuple=cost_per_tuple)
        self.func = func

    def _process(self, panes: PaneGroup, now: float) -> List[Tuple]:
        outputs = []
        for t in self._all_tuples(panes):
            outputs.append(
                Tuple(timestamp=t.timestamp, sic=0.0, values=dict(self.func(t.values)))
            )
        return outputs


class Filter(Operator):
    """Keep tuples satisfying a predicate (CQL ``Where`` / ``Having``)."""

    def __init__(
        self,
        predicate: Callable[[Tuple], bool],
        name: str = "filter",
        cost_per_tuple: float = 0.2,
    ) -> None:
        super().__init__(name=name, cost_per_tuple=cost_per_tuple)
        self.predicate = predicate

    @classmethod
    def field_threshold(
        cls, field: str, op: str, threshold: float, cost_per_tuple: float = 0.2
    ) -> "Filter":
        """Build a filter comparing one payload field with a constant."""
        comparators: Dict[str, Callable[[Any, Any], bool]] = {
            ">=": lambda a, b: a >= b,
            "<=": lambda a, b: a <= b,
            ">": lambda a, b: a > b,
            "<": lambda a, b: a < b,
            "==": lambda a, b: a == b,
            "!=": lambda a, b: a != b,
            "=": lambda a, b: a == b,
        }
        if op not in comparators:
            raise ValueError(f"unsupported comparison operator {op!r}")
        compare = comparators[op]

        def predicate(t: Tuple) -> bool:
            value = t.values.get(field)
            return value is not None and compare(value, threshold)

        # Columnar annotation: lets vectorized consumers (Filter fast path,
        # windowed aggregates with a Having clause) evaluate the predicate
        # over a payload column instead of materializing tuples.
        predicate.column_field = field
        predicate.column_compare = compare
        predicate.column_threshold = threshold

        return cls(predicate, name=f"filter[{field} {op} {threshold}]",
                   cost_per_tuple=cost_per_tuple)

    def _process(self, panes: PaneGroup, now: float) -> List[Tuple]:
        return [t.copy() for t in self._all_tuples(panes) if self.predicate(t)]

    def _process_columnar(
        self, panes: PaneGroup, now: float
    ) -> Optional[ColumnBlock]:
        field = getattr(self.predicate, "column_field", None)
        if field is None:
            return None
        blocks = _pane_group_blocks(panes)
        if blocks is None:
            return None
        compare = self.predicate.column_compare
        threshold = self.predicate.column_threshold
        kept: List[ColumnBlock] = []
        for block in blocks:
            column = block.values.get(field)
            if column is None:
                # Uniform schema without the field: the predicate rejects
                # every row of this block.
                continue
            if (
                np is not None
                and isinstance(column, np.ndarray)
                and column.dtype == np.float64
            ):
                # Columnar v2: the predicate is one element-wise comparison
                # (float64 columns carry no None) and survivors are gathered
                # with a boolean mask per column.
                mask = compare(column, threshold)
                survivors = int(np.count_nonzero(mask))
                if survivors == len(column):
                    kept.append(block)
                    continue
                if survivors == 0:
                    continue
                kept.append(
                    ColumnBlock._unchecked(
                        block.timestamps[mask],
                        # Placeholder SIC column: like every _process_columnar
                        # result, the base class rebinds it with the
                        # propagated shares before the block is observable.
                        np.zeros(survivors),
                        {f: col[mask] for f, col in block.values.items()},
                        block.source_id,
                    )
                )
                continue
            keep = [
                i
                for i, v in enumerate(column)
                if v is not None and compare(v, threshold)
            ]
            if len(keep) == len(column):
                kept.append(block)
                continue
            if not keep:
                continue
            if block.is_array_backed:
                index = np.asarray(keep)
                kept.append(
                    ColumnBlock._unchecked(
                        block.timestamps[index],
                        np.zeros(len(keep)),
                        {f: col[index] for f, col in block.values.items()},
                        block.source_id,
                    )
                )
                continue
            kept.append(
                ColumnBlock._unchecked(
                    [block.timestamps[i] for i in keep],
                    # Placeholder SIC column: like every _process_columnar
                    # result, the base class rebinds it with the propagated
                    # shares before the block is observable.
                    [0.0] * len(keep),
                    {
                        f: [col[i] for i in keep]
                        for f, col in block.values.items()
                    },
                    block.source_id,
                )
            )
        if not kept:
            return ColumnBlock([], [], {})
        if len(kept) == 1:
            return kept[0].shallow_copy()
        return ColumnBlock.concat(kept)


class Union(Operator):
    """Merge several input streams into one (pass-through, multi-port)."""

    def __init__(self, num_ports: int = 2, cost_per_tuple: float = 0.1) -> None:
        super().__init__(
            name=f"union[{num_ports}]",
            cost_per_tuple=cost_per_tuple,
            num_ports=num_ports,
        )

    def _process(self, panes: PaneGroup, now: float) -> List[Tuple]:
        merged = [t.copy() for t in self._all_tuples(panes)]
        merged.sort(key=lambda t: t.timestamp)
        return merged


class OutputOperator(Operator):
    """Root operator emitting result tuples to the query user."""

    def __init__(self, cost_per_tuple: float = 0.1) -> None:
        super().__init__(name="output", cost_per_tuple=cost_per_tuple)

    def _process(self, panes: PaneGroup, now: float) -> List[Tuple]:
        return [t.copy() for t in self._all_tuples(panes)]
