"""Stateless operators: receivers, projection, mapping, filtering, union, output.

These operators process tuples as they arrive (through an
:class:`~repro.streaming.windows.ImmediateWindow`) and do not maintain window
state.  They still propagate SIC through the base-class machinery: the SIC of
an atomically processed group is preserved as long as at least one tuple
survives the transformation, which is exactly the paper's model — information
content is only lost when an operator emits nothing (or when tuples are shed).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence

from ...core.tuples import Tuple
from .base import Operator, PaneGroup

__all__ = [
    "SourceReceiver",
    "Project",
    "MapValues",
    "Filter",
    "Union",
    "OutputOperator",
]


class SourceReceiver(Operator):
    """Entry operator bound to a single data source.

    A receiver simply forwards the source tuples into the query graph.  It is
    modelled explicitly because the paper counts receivers when reporting the
    number of operators per fragment (e.g. the TOP-5 fragment has 10 CPU and
    10 memory receivers).
    """

    def __init__(self, source_id: str, cost_per_tuple: float = 0.1) -> None:
        super().__init__(name=f"recv[{source_id}]", cost_per_tuple=cost_per_tuple)
        self.source_id = source_id

    def _process(self, panes: PaneGroup, now: float) -> List[Tuple]:
        return [t.copy() for t in self._all_tuples(panes)]


class Project(Operator):
    """Keep only a subset of payload fields."""

    def __init__(self, fields: Sequence[str], cost_per_tuple: float = 0.1) -> None:
        super().__init__(name=f"project{list(fields)}", cost_per_tuple=cost_per_tuple)
        self.fields = list(fields)

    def _process(self, panes: PaneGroup, now: float) -> List[Tuple]:
        outputs = []
        for t in self._all_tuples(panes):
            values = {f: t.values.get(f) for f in self.fields}
            outputs.append(Tuple(timestamp=t.timestamp, sic=0.0, values=values))
        return outputs


class MapValues(Operator):
    """Apply a per-tuple payload transformation."""

    def __init__(
        self,
        func: Callable[[Dict[str, Any]], Dict[str, Any]],
        name: str = "map",
        cost_per_tuple: float = 0.2,
    ) -> None:
        super().__init__(name=name, cost_per_tuple=cost_per_tuple)
        self.func = func

    def _process(self, panes: PaneGroup, now: float) -> List[Tuple]:
        outputs = []
        for t in self._all_tuples(panes):
            outputs.append(
                Tuple(timestamp=t.timestamp, sic=0.0, values=dict(self.func(t.values)))
            )
        return outputs


class Filter(Operator):
    """Keep tuples satisfying a predicate (CQL ``Where`` / ``Having``)."""

    def __init__(
        self,
        predicate: Callable[[Tuple], bool],
        name: str = "filter",
        cost_per_tuple: float = 0.2,
    ) -> None:
        super().__init__(name=name, cost_per_tuple=cost_per_tuple)
        self.predicate = predicate

    @classmethod
    def field_threshold(
        cls, field: str, op: str, threshold: float, cost_per_tuple: float = 0.2
    ) -> "Filter":
        """Build a filter comparing one payload field with a constant."""
        comparators: Dict[str, Callable[[Any, Any], bool]] = {
            ">=": lambda a, b: a >= b,
            "<=": lambda a, b: a <= b,
            ">": lambda a, b: a > b,
            "<": lambda a, b: a < b,
            "==": lambda a, b: a == b,
            "!=": lambda a, b: a != b,
            "=": lambda a, b: a == b,
        }
        if op not in comparators:
            raise ValueError(f"unsupported comparison operator {op!r}")
        compare = comparators[op]

        def predicate(t: Tuple) -> bool:
            value = t.values.get(field)
            return value is not None and compare(value, threshold)

        return cls(predicate, name=f"filter[{field} {op} {threshold}]",
                   cost_per_tuple=cost_per_tuple)

    def _process(self, panes: PaneGroup, now: float) -> List[Tuple]:
        return [t.copy() for t in self._all_tuples(panes) if self.predicate(t)]


class Union(Operator):
    """Merge several input streams into one (pass-through, multi-port)."""

    def __init__(self, num_ports: int = 2, cost_per_tuple: float = 0.1) -> None:
        super().__init__(
            name=f"union[{num_ports}]",
            cost_per_tuple=cost_per_tuple,
            num_ports=num_ports,
        )

    def _process(self, panes: PaneGroup, now: float) -> List[Tuple]:
        merged = [t.copy() for t in self._all_tuples(panes)]
        merged.sort(key=lambda t: t.timestamp)
        return merged


class OutputOperator(Operator):
    """Root operator emitting result tuples to the query user."""

    def __init__(self, cost_per_tuple: float = 0.1) -> None:
        super().__init__(name="output", cost_per_tuple=cost_per_tuple)

    def _process(self, panes: PaneGroup, now: float) -> List[Tuple]:
        return [t.copy() for t in self._all_tuples(panes)]
