"""Windowed aggregate operators: average, sum, count, max, min, group-by.

These implement the aggregate workload of Table 1 (``AVG``, ``MAX``,
``COUNT ... Having``) and the aggregation steps of the complex workload.  Each
operator consumes a time window atomically and emits one tuple per window
(or one per group for :class:`GroupByAggregate`), so Equation (3) assigns the
whole window's SIC to the emitted result.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Union

from ...core.columns import seq_sum, to_pylist
from ...core.tuples import Tuple
from ..windows import TimeWindow, WindowPane
from .base import Operator, PaneGroup

try:  # Guarded: the list columnar backend works without NumPy.
    import numpy as np
except ImportError:  # pragma: no cover - exercised only on stripped installs
    np = None

# The qualifying-value sequence of one window: a float64 array on the fully
# vectorized path, a plain list everywhere else.  Reductions over arrays go
# through sequential-order primitives (np.cumsum's last element, np.min/max —
# bit-equal to the left-to-right Python loop), never pairwise np.sum.
Values = Union[List[float], "np.ndarray"]

__all__ = [
    "WindowedAggregate",
    "Average",
    "Sum",
    "Count",
    "Max",
    "Min",
    "GroupByAggregate",
]


class WindowedAggregate(Operator):
    """Base class for single-field aggregates over a time window.

    Args:
        field: payload field the aggregate is computed over.
        output_field: name of the output payload field.
        window_seconds: window range (``[Range n sec]``).
        slide_seconds: optional slide for sliding windows.
        predicate: optional per-tuple predicate applied before aggregation
            (CQL ``Having``); tuples failing it still count towards the SIC of
            the window (the operator consumed them) but not towards the value.
    """

    aggregate_name = "agg"

    def __init__(
        self,
        field: str,
        output_field: Optional[str] = None,
        window_seconds: float = 1.0,
        slide_seconds: Optional[float] = None,
        predicate: Optional[Callable[[Tuple], bool]] = None,
        cost_per_tuple: float = 0.5,
    ) -> None:
        super().__init__(
            name=f"{self.aggregate_name}({field})",
            cost_per_tuple=cost_per_tuple,
            window_factory=lambda: TimeWindow(window_seconds, slide_seconds),
        )
        self.field = field
        self.output_field = output_field or self.aggregate_name
        self.predicate = predicate

    def _values(self, panes: PaneGroup) -> Values:
        """Qualifying values of the window, pulled column-wise when possible.

        Columnar panes contribute their payload column directly (with the
        ``Having`` predicate evaluated over the predicate field's column);
        non-columnar panes — and any predicate without a column annotation —
        go through the seed per-tuple loop.  Both paths visit the same rows
        in the same (timestamp-sorted) order, so the extracted value
        sequence is identical either way.  ``float64`` columns (the columnar
        v2 representation) stay arrays end to end — the predicate becomes a
        boolean mask and :meth:`_compute` reduces with sequential-order
        primitives — so the per-row Python loop disappears entirely.
        """
        predicate = self.predicate
        predicate_field = (
            getattr(predicate, "column_field", None)
            if predicate is not None
            else None
        )
        # Qualifying values per pane, in pane order: float64 arrays from the
        # vectorized path, lists from the per-tuple/object-column fallbacks.
        parts: List[Values] = []
        for port in sorted(panes):
            pane = panes[port]
            if predicate is None:
                cols = pane.columns(self.field)
                if cols is not None:
                    (column,) = cols
                    if column is None:
                        # Uniform schema, no row carries the field.
                        continue
                    if (
                        np is not None
                        and isinstance(column, np.ndarray)
                        and column.dtype == np.float64
                    ):
                        parts.append(column)
                        continue
                    chunk: List[float] = []
                    for value in column:
                        if value is None:
                            continue
                        chunk.append(float(value))
                    parts.append(chunk)
                    continue
            elif predicate_field is not None:
                cols = pane.columns(self.field, predicate_field)
                if cols is not None:
                    column, predicate_column = cols
                    # predicate_column None: the Having field is absent from
                    # the uniform schema, so every row fails the predicate.
                    if column is None or predicate_column is None:
                        continue
                    compare = predicate.column_compare
                    threshold = predicate.column_threshold
                    if (
                        np is not None
                        and isinstance(column, np.ndarray)
                        and column.dtype == np.float64
                        and isinstance(predicate_column, np.ndarray)
                        and predicate_column.dtype == np.float64
                    ):
                        # Element-wise comparison == the scalar predicate
                        # applied per row (float64 columns carry no None).
                        parts.append(column[compare(predicate_column, threshold)])
                        continue
                    chunk = []
                    for value, probe in zip(column, predicate_column):
                        if probe is None or not compare(probe, threshold):
                            continue
                        if value is None:
                            continue
                        chunk.append(float(value))
                    parts.append(chunk)
                    continue
            chunk = []
            self._tuple_values(pane, chunk)
            parts.append(chunk)
        if not parts:
            return []
        if np is not None and all(isinstance(p, np.ndarray) for p in parts):
            return parts[0] if len(parts) == 1 else np.concatenate(parts)
        flat: List[float] = []
        for part in parts:
            if np is not None and isinstance(part, np.ndarray):
                flat.extend(part.tolist())
            else:
                flat.extend(part)
        return flat

    def _tuple_values(self, pane: WindowPane, values: List[float]) -> None:
        """Seed per-tuple extraction for one pane (appends into ``values``)."""
        field = self.field
        predicate = self.predicate
        for t in pane.tuples:
            if predicate is not None and not predicate(t):
                continue
            value = t.values.get(field)
            if value is None:
                continue
            values.append(float(value))

    def _compute(self, values: Values) -> Optional[float]:
        raise NotImplementedError

    def _process(self, panes: PaneGroup, now: float) -> List[Tuple]:
        values = self._values(panes)
        result = self._compute(values)
        if result is None:
            return []
        timestamp = self._pane_timestamp(panes, now)
        return [Tuple(timestamp=timestamp, sic=0.0, values={self.output_field: result})]


class Average(WindowedAggregate):
    """``Select Avg(t.v) From Src[Range n sec]``."""

    aggregate_name = "avg"

    def _compute(self, values: Values) -> Optional[float]:
        if len(values) == 0:
            return None
        return seq_sum(values) / len(values)


class Sum(WindowedAggregate):
    """Windowed sum."""

    aggregate_name = "sum"

    def _compute(self, values: Values) -> Optional[float]:
        if len(values) == 0:
            return None
        return seq_sum(values)


class Count(WindowedAggregate):
    """``Select Count(t.v) From Src[Range n sec] Having <predicate>``.

    A window with zero qualifying tuples still emits a count of 0 when the
    window itself was non-empty: the query consumed data and produced a
    (perfectly valid) result of zero.
    """

    aggregate_name = "count"

    def _process(self, panes: PaneGroup, now: float) -> List[Tuple]:
        if not any(len(pane) for pane in panes.values()):
            return []
        values = self._values(panes)
        timestamp = self._pane_timestamp(panes, now)
        return [
            Tuple(
                timestamp=timestamp,
                sic=0.0,
                values={self.output_field: float(len(values))},
            )
        ]

    def _compute(self, values: List[float]) -> Optional[float]:  # pragma: no cover
        return float(len(values))


class Max(WindowedAggregate):
    """``Select Max(t.v) From Src[Range n sec]``."""

    aggregate_name = "max"

    def _compute(self, values: Values) -> Optional[float]:
        if len(values) == 0:
            return None
        if np is not None and isinstance(values, np.ndarray):
            return float(values.max())
        return max(values)


class Min(WindowedAggregate):
    """Windowed minimum."""

    aggregate_name = "min"

    def _compute(self, values: Values) -> Optional[float]:
        if len(values) == 0:
            return None
        if np is not None and isinstance(values, np.ndarray):
            return float(values.min())
        return min(values)


class GroupByAggregate(Operator):
    """Group tuples by a key field and aggregate a value field per group.

    Emits one tuple per group and window; the window SIC is divided equally
    across the emitted groups (Equation 3).
    """

    _AGGREGATES: Dict[str, Callable[[List[float]], float]] = {
        "avg": lambda vs: sum(vs) / len(vs),
        "sum": lambda vs: float(sum(vs)),
        "count": lambda vs: float(len(vs)),
        "max": max,
        "min": min,
    }

    def __init__(
        self,
        key_field: str,
        value_field: str,
        aggregate: str = "avg",
        window_seconds: float = 1.0,
        slide_seconds: Optional[float] = None,
        cost_per_tuple: float = 0.6,
    ) -> None:
        if aggregate not in self._AGGREGATES:
            raise ValueError(
                f"unknown aggregate {aggregate!r}; expected one of "
                f"{sorted(self._AGGREGATES)}"
            )
        super().__init__(
            name=f"groupby[{key_field}].{aggregate}({value_field})",
            cost_per_tuple=cost_per_tuple,
            window_factory=lambda: TimeWindow(window_seconds, slide_seconds),
        )
        self.key_field = key_field
        self.value_field = value_field
        self.aggregate = aggregate

    def _process(self, panes: PaneGroup, now: float) -> List[Tuple]:
        groups: Dict[Any, List[float]] = {}
        for port in sorted(panes):
            pane = panes[port]
            cols = pane.columns(self.key_field, self.value_field)
            if cols is not None:
                keys, group_values = cols
                # A None column: uniform schema without the key/value field —
                # no row can contribute to any group.  to_pylist keeps the
                # keys emitted into output payloads plain Python objects.
                if keys is not None and group_values is not None:
                    for key, value in zip(
                        to_pylist(keys), to_pylist(group_values)
                    ):
                        if key is None or value is None:
                            continue
                        groups.setdefault(key, []).append(float(value))
                continue
            for t in pane.tuples:
                key = t.values.get(self.key_field)
                value = t.values.get(self.value_field)
                if key is None or value is None:
                    continue
                groups.setdefault(key, []).append(float(value))
        if not groups:
            return []
        timestamp = self._pane_timestamp(panes, now)
        compute = self._AGGREGATES[self.aggregate]
        outputs = []
        for key in sorted(groups, key=str):
            outputs.append(
                Tuple(
                    timestamp=timestamp,
                    sic=0.0,
                    values={
                        self.key_field: key,
                        self.aggregate: compute(groups[key]),
                    },
                )
            )
        return outputs
