"""Statistical operators: covariance and partial/mergeable statistics.

The ``COV`` query of the complex workload computes, every second, the
covariance of the CPU usage of two nodes.  The query is deployed as a chain of
fragments; every fragment computes covariance statistics over its own pair of
sources and forwards *mergeable partial statistics* downstream, where they are
combined using the pairwise-update formulas (Chan et al.) so the chain
produces the covariance over all contributing fragments.

Partial aggregates for the AVG-all tree deployment live here as well.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ...core.tuples import Tuple
from ..windows import TimeWindow, WindowPane
from .base import Operator, PaneGroup

try:  # Guarded: the list columnar backend works without NumPy.
    import numpy as np
except ImportError:  # pragma: no cover - exercised only on stripped installs
    np = None


def _pane_float_series(pane: WindowPane, field: str) -> List[float]:
    """``field`` of every pane row as floats, column-wise when possible.

    Mirrors the seed's ``float(t.values.get(field, 0.0))`` semantics: rows
    without the field contribute ``0.0`` (uniform block schemas make that a
    whole-pane decision on the columnar path).  ``float64`` columns convert
    through ``tolist()`` — the identical Python floats, one C call — so the
    sequential Welford/merge consumers keep operating on plain scalars.
    """
    cols = pane.columns(field)
    if cols is not None:
        (column,) = cols
        if column is None:
            # Uniform schema without the field: every row reads as 0.0.
            return [0.0] * len(pane)
        if np is not None and isinstance(column, np.ndarray):
            if column.dtype == np.float64:
                return column.tolist()
            return [float(v) for v in column.tolist()]
        return [float(v) for v in column]
    return [float(t.values.get(field, 0.0)) for t in pane.tuples]

__all__ = [
    "CovarianceStats",
    "Covariance",
    "CovarianceMerge",
    "PartialAverage",
    "AverageMerge",
]


@dataclass
class CovarianceStats:
    """Mergeable sufficient statistics for a sample covariance."""

    count: float = 0.0
    mean_x: float = 0.0
    mean_y: float = 0.0
    comoment: float = 0.0

    def add(self, x: float, y: float) -> None:
        self.count += 1.0
        dx = x - self.mean_x
        self.mean_x += dx / self.count
        self.mean_y += (y - self.mean_y) / self.count
        self.comoment += dx * (y - self.mean_y)

    def merge(self, other: "CovarianceStats") -> "CovarianceStats":
        if other.count == 0:
            return self
        if self.count == 0:
            return CovarianceStats(
                other.count, other.mean_x, other.mean_y, other.comoment
            )
        total = self.count + other.count
        dx = other.mean_x - self.mean_x
        dy = other.mean_y - self.mean_y
        merged = CovarianceStats(
            count=total,
            mean_x=self.mean_x + dx * other.count / total,
            mean_y=self.mean_y + dy * other.count / total,
            comoment=self.comoment
            + other.comoment
            + dx * dy * self.count * other.count / total,
        )
        return merged

    def covariance(self) -> Optional[float]:
        """Population covariance, or ``None`` when no samples exist."""
        if self.count < 1:
            return None
        return self.comoment / self.count

    def to_payload(self) -> Dict[str, float]:
        return {
            "cov_count": self.count,
            "cov_mean_x": self.mean_x,
            "cov_mean_y": self.mean_y,
            "cov_comoment": self.comoment,
            "cov": self.covariance() if self.count >= 1 else 0.0,
        }

    @classmethod
    def from_payload(cls, values: Dict[str, object]) -> Optional["CovarianceStats"]:
        try:
            return cls(
                count=float(values["cov_count"]),
                mean_x=float(values["cov_mean_x"]),
                mean_y=float(values["cov_mean_y"]),
                comoment=float(values["cov_comoment"]),
            )
        except (KeyError, TypeError, ValueError):
            return None


class Covariance(Operator):
    """Windowed covariance between two input streams.

    Port 0 carries the ``x`` series and port 1 the ``y`` series; samples are
    paired by arrival order within the aligned window (both sources sample the
    quantity at the same cadence in the paper's monitoring workload).
    """

    def __init__(
        self,
        field_x: str = "value",
        field_y: str = "value",
        window_seconds: float = 1.0,
        slide_seconds: Optional[float] = None,
        emit_partials: bool = False,
        cost_per_tuple: float = 0.8,
    ) -> None:
        super().__init__(
            name=f"cov({field_x},{field_y})",
            cost_per_tuple=cost_per_tuple,
            num_ports=2,
            window_factory=lambda: TimeWindow(window_seconds, slide_seconds),
        )
        self.field_x = field_x
        self.field_y = field_y
        self.emit_partials = emit_partials

    def _process(self, panes: PaneGroup, now: float) -> List[Tuple]:
        left = panes.get(0)
        right = panes.get(1)
        if left is None or right is None:
            return []
        xs = _pane_float_series(left, self.field_x)
        ys = _pane_float_series(right, self.field_y)
        pairs = min(len(xs), len(ys))
        if pairs == 0:
            return []
        stats = CovarianceStats()
        for x, y in zip(xs[:pairs], ys[:pairs]):
            stats.add(x, y)
        timestamp = self._pane_timestamp(panes, now)
        payload: Dict[str, object]
        if self.emit_partials:
            payload = stats.to_payload()
        else:
            payload = {"cov": stats.covariance()}
        return [Tuple(timestamp=timestamp, sic=0.0, values=payload)]


class CovarianceMerge(Operator):
    """Merge partial covariance statistics from several upstream fragments."""

    def __init__(
        self,
        num_ports: int = 2,
        window_seconds: float = 1.0,
        slide_seconds: Optional[float] = None,
        emit_partials: bool = False,
        cost_per_tuple: float = 0.3,
    ) -> None:
        super().__init__(
            name="cov-merge",
            cost_per_tuple=cost_per_tuple,
            num_ports=num_ports,
            window_factory=lambda: TimeWindow(window_seconds, slide_seconds),
        )
        self.emit_partials = emit_partials

    def _process(self, panes: PaneGroup, now: float) -> List[Tuple]:
        merged = CovarianceStats()
        found = False
        for t in self._all_tuples(panes):
            stats = CovarianceStats.from_payload(t.values)
            if stats is None:
                continue
            merged = merged.merge(stats)
            found = True
        if not found:
            return []
        timestamp = self._pane_timestamp(panes, now)
        payload: Dict[str, object]
        if self.emit_partials:
            payload = merged.to_payload()
        else:
            payload = {"cov": merged.covariance()}
        return [Tuple(timestamp=timestamp, sic=0.0, values=payload)]


class PartialAverage(Operator):
    """Emit mergeable (sum, count) partials of a field per window.

    Used by the leaf fragments of the AVG-all tree deployment: each fragment
    averages its own 10 sources and forwards the partial sums to the root
    fragment, which combines them with :class:`AverageMerge`.
    """

    def __init__(
        self,
        field: str = "v",
        window_seconds: float = 1.0,
        slide_seconds: Optional[float] = None,
        cost_per_tuple: float = 0.5,
    ) -> None:
        super().__init__(
            name=f"partial-avg({field})",
            cost_per_tuple=cost_per_tuple,
            window_factory=lambda: TimeWindow(window_seconds, slide_seconds),
        )
        self.field = field

    def _process(self, panes: PaneGroup, now: float) -> List[Tuple]:
        values: List[float] = []
        for port in sorted(panes):
            pane = panes[port]
            cols = pane.columns(self.field)
            if cols is not None:
                (column,) = cols
                # column None: uniform schema without the field — nothing to
                # average from this pane.
                if column is not None:
                    if (
                        np is not None
                        and isinstance(column, np.ndarray)
                        and column.dtype == np.float64
                    ):
                        # float64 columns carry no None; tolist() yields the
                        # identical Python floats in one call.
                        values.extend(column.tolist())
                    else:
                        values.extend(
                            float(v) for v in column if v is not None
                        )
                continue
            values.extend(
                float(t.values[self.field])
                for t in pane.tuples
                if self.field in t.values and t.values[self.field] is not None
            )
        if not values:
            return []
        timestamp = self._pane_timestamp(panes, now)
        return [
            Tuple(
                timestamp=timestamp,
                sic=0.0,
                values={
                    "partial_sum": float(sum(values)),
                    "partial_count": float(len(values)),
                    "avg": sum(values) / len(values),
                },
            )
        ]


class AverageMerge(Operator):
    """Combine (sum, count) partials into a global average."""

    def __init__(
        self,
        num_ports: int = 2,
        window_seconds: float = 1.0,
        slide_seconds: Optional[float] = None,
        emit_partials: bool = False,
        cost_per_tuple: float = 0.3,
    ) -> None:
        super().__init__(
            name="avg-merge",
            cost_per_tuple=cost_per_tuple,
            num_ports=num_ports,
            window_factory=lambda: TimeWindow(window_seconds, slide_seconds),
        )
        self.emit_partials = emit_partials

    def _process(self, panes: PaneGroup, now: float) -> List[Tuple]:
        total = 0.0
        count = 0.0
        found = False
        for t in self._all_tuples(panes):
            if "partial_sum" in t.values and "partial_count" in t.values:
                total += float(t.values["partial_sum"])
                count += float(t.values["partial_count"])
                found = True
        if not found or count == 0:
            return []
        timestamp = self._pane_timestamp(panes, now)
        values: Dict[str, object] = {"avg": total / count}
        if self.emit_partials:
            values.update({"partial_sum": total, "partial_count": count})
        return [Tuple(timestamp=timestamp, sic=0.0, values=values)]
