"""Top-k operators.

``TOP-5`` in the complex workload reports, every second, the five node
identifiers with the largest available CPU among nodes with enough free
memory.  :class:`TopK` implements the windowed top-k selection and
:class:`TopKMerge` combines partial top-k lists produced by upstream fragments
(the TOP-5 query is deployed as a chain of fragments, each contributing its
local candidates — §7, "Experimental set-up").
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ...core.columns import to_pylist
from ...core.tuples import Tuple
from ..windows import TimeWindow
from .base import Operator, PaneGroup

__all__ = ["TopK", "TopKMerge"]


def _collect_best(
    panes: PaneGroup, id_field: str, value_field: str
) -> Dict[object, float]:
    """Best value per identifier across the group, column-wise when possible.

    Columns convert through :func:`to_pylist` before row iteration so the
    identifiers that end up in output payloads are the identical Python
    objects on both columnar backends.
    """
    best: Dict[object, float] = {}
    for port in sorted(panes):
        pane = panes[port]
        cols = pane.columns(id_field, value_field)
        if cols is not None:
            idents, values = cols
            # A None column: uniform schema without the id/value field — the
            # pane offers no candidates.
            if idents is not None and values is not None:
                for ident, value in zip(to_pylist(idents), to_pylist(values)):
                    if ident is None or value is None:
                        continue
                    value = float(value)
                    if ident not in best or value > best[ident]:
                        best[ident] = value
            continue
        for t in pane.tuples:
            ident = t.values.get(id_field)
            value = t.values.get(value_field)
            if ident is None or value is None:
                continue
            value = float(value)
            if ident not in best or value > best[ident]:
                best[ident] = value
    return best


class TopK(Operator):
    """Emit the ``k`` tuples with the largest ``value_field`` per window.

    One output tuple is emitted per rank, carrying the identifier, the value
    and the rank, so downstream operators (and the Kendall-distance error
    metric) can reconstruct the ranked list.
    """

    def __init__(
        self,
        k: int,
        value_field: str,
        id_field: str,
        window_seconds: float = 1.0,
        slide_seconds: Optional[float] = None,
        cost_per_tuple: float = 0.8,
    ) -> None:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        super().__init__(
            name=f"top{k}({id_field} by {value_field})",
            cost_per_tuple=cost_per_tuple,
            window_factory=lambda: TimeWindow(window_seconds, slide_seconds),
        )
        self.k = int(k)
        self.value_field = value_field
        self.id_field = id_field

    def _process(self, panes: PaneGroup, now: float) -> List[Tuple]:
        # Keep the best value seen per identifier within the window, then rank.
        best = _collect_best(panes, self.id_field, self.value_field)
        if not best:
            return []
        ranked = sorted(best.items(), key=lambda kv: (-kv[1], str(kv[0])))[: self.k]
        timestamp = self._pane_timestamp(panes, now)
        outputs = []
        for rank, (ident, value) in enumerate(ranked, start=1):
            outputs.append(
                Tuple(
                    timestamp=timestamp,
                    sic=0.0,
                    values={
                        self.id_field: ident,
                        self.value_field: value,
                        "rank": rank,
                    },
                )
            )
        return outputs


class TopKMerge(Operator):
    """Merge partial top-k candidate lists from several inputs.

    Used by the chained deployment of the TOP-5 query: each fragment sends its
    local candidates downstream, and the next fragment merges them with its own
    candidates before re-ranking.
    """

    def __init__(
        self,
        k: int,
        value_field: str,
        id_field: str,
        num_ports: int = 2,
        window_seconds: float = 1.0,
        slide_seconds: Optional[float] = None,
        cost_per_tuple: float = 0.4,
    ) -> None:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        super().__init__(
            name=f"top{k}-merge",
            cost_per_tuple=cost_per_tuple,
            num_ports=num_ports,
            window_factory=lambda: TimeWindow(window_seconds, slide_seconds),
        )
        self.k = int(k)
        self.value_field = value_field
        self.id_field = id_field

    def _process(self, panes: PaneGroup, now: float) -> List[Tuple]:
        best = _collect_best(panes, self.id_field, self.value_field)
        if not best:
            return []
        ranked = sorted(best.items(), key=lambda kv: (-kv[1], str(kv[0])))[: self.k]
        timestamp = self._pane_timestamp(panes, now)
        return [
            Tuple(
                timestamp=timestamp,
                sic=0.0,
                values={self.id_field: ident, self.value_field: value, "rank": rank},
            )
            for rank, (ident, value) in enumerate(ranked, start=1)
        ]
