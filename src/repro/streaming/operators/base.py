"""Operator base class with built-in SIC propagation.

THEMIS treats operators as black boxes: the system never inspects operator
semantics, it only observes the sets of tuples an operator consumes and emits
atomically and applies Equation (3) — the summed SIC of the consumed set is
divided equally over the emitted tuples.  This base class implements that
bookkeeping once so every concrete operator only has to provide its
``_process`` transformation.

Operators may have several input ports (joins, covariance, merges).  Each port
owns a window buffer; when the operator is advanced to the current time, the
closed panes of all ports are aligned by their end time and each aligned group
is processed atomically.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional, Sequence, Union

from ...core.columns import ColumnBlock
from ...core.sic import propagate_sic
from ...core.tuples import Tuple
from ...state.checkpoint import CheckpointError
from ..windows import ImmediateWindow, WindowBuffer, WindowPane

__all__ = ["Operator", "PaneGroup", "Emitted"]

# What an operator emits per processing round: materialized tuples and/or
# column groups, in emission order.
Emitted = Union[Tuple, ColumnBlock]

_operator_ids = itertools.count()

# A pane group maps port number -> the pane closed on that port for one
# processing round.  Ports with no data for the round are simply absent.
PaneGroup = Dict[int, WindowPane]


class Operator:
    """Base class of all streaming operators.

    Args:
        name: human-readable operator name (used in query-graph dumps).
        cost_per_tuple: simulated processing cost of one input tuple, in the
            node budget units used by the cost model.
        num_ports: number of input ports.
        window_factory: zero-argument callable building the window buffer for
            each port; defaults to :class:`ImmediateWindow` (stateless
            operators).
    """

    def __init__(
        self,
        name: str,
        cost_per_tuple: float = 1.0,
        num_ports: int = 1,
        window_factory: Optional[Callable[[], WindowBuffer]] = None,
    ) -> None:
        if num_ports < 1:
            raise ValueError(f"num_ports must be >= 1, got {num_ports}")
        if cost_per_tuple < 0:
            raise ValueError(f"cost_per_tuple must be >= 0, got {cost_per_tuple}")
        self.operator_id = f"op-{next(_operator_ids)}"
        self.name = name
        self.cost_per_tuple = float(cost_per_tuple)
        self.num_ports = int(num_ports)
        factory = window_factory or ImmediateWindow
        self._windows: List[WindowBuffer] = [factory() for _ in range(self.num_ports)]
        self.ingested_tuples = 0
        self.emitted_tuples = 0
        self.lost_sic = 0.0

    # ------------------------------------------------------------------ wiring
    def ingest(self, tuples: Sequence[Tuple], port: int = 0) -> None:
        """Buffer ``tuples`` on ``port``."""
        if not tuples:
            return
        if port < 0 or port >= self.num_ports:
            raise ValueError(
                f"operator {self.name!r} has {self.num_ports} ports, got port {port}"
            )
        self._windows[port].insert(tuples)
        self.ingested_tuples += len(tuples)

    def ingest_block(
        self,
        block: ColumnBlock,
        port: int = 0,
        lo: int = 0,
        hi: Optional[int] = None,
    ) -> None:
        """Buffer rows ``lo:hi`` of a column group on ``port``.

        No tuples are materialized and no columns are copied — the range is
        handed to the window buffer as-is.
        """
        if hi is None:
            hi = len(block)
        if hi <= lo:
            return
        if port < 0 or port >= self.num_ports:
            raise ValueError(
                f"operator {self.name!r} has {self.num_ports} ports, got port {port}"
            )
        self._windows[port].insert_block(block, lo, hi)
        self.ingested_tuples += hi - lo

    def advance(self, now: float) -> List[Tuple]:
        """Process every window pane closed by ``now`` and return the outputs.

        Compatibility surface: any column groups produced by the fast path
        are materialized in place.  Hot callers use :meth:`advance_items`.
        """
        outputs: List[Tuple] = []
        for item in self.advance_items(now):
            if isinstance(item, ColumnBlock):
                outputs.extend(item.to_tuples())
            else:
                outputs.append(item)
        return outputs

    def advance_items(self, now: float) -> List[Emitted]:
        """Process closed panes, emitting tuples and/or column groups.

        SIC propagation (Equation 3) is identical on both representations:
        the consumed SIC of a round is the sum of its panes' incrementally
        maintained SIC values, divided equally over the emitted tuples —
        written per tuple on the tuple path, as a constant SIC column on the
        columnar path.
        """
        groups = self._collect_pane_groups(now)
        outputs: List[Emitted] = []
        for group in groups:
            input_sic = 0.0
            for pane in group.values():
                input_sic += pane.sic
            block = self._process_columnar(group, now)
            if block is not None:
                size = len(block)
                if size:
                    shares = propagate_sic([input_sic], size)
                    block.sics = block.constant_sics(shares[0])
                    outputs.append(block)
                    self.emitted_tuples += size
                else:
                    self.lost_sic += input_sic
                continue
            produced = self._process(group, now)
            if produced:
                shares = propagate_sic([input_sic], len(produced))
                for t, share in zip(produced, shares):
                    t.sic = share
                outputs.extend(produced)
                self.emitted_tuples += len(produced)
            else:
                self.lost_sic += input_sic
        return outputs

    def pending_tuples(self) -> int:
        """Tuples buffered in the operator's windows (all ports)."""
        return sum(w.pending_count() for w in self._windows)

    def pending_sic(self) -> float:
        """Summed SIC buffered in the operator's windows (all ports)."""
        return sum(w.pending_sic() for w in self._windows)

    # ------------------------------------------------------ checkpoint/restore
    def snapshot(self) -> dict:
        """Serialise the operator's state: per-port windows plus counters.

        Every built-in operator keeps all cross-round state in its window
        buffers (the join builds its hash table per round from the aligned
        panes), so the base-class snapshot is complete for the whole operator
        library; subclasses with extra durable state must extend it.
        """
        return {
            "type": type(self).__name__,
            "name": self.name,
            "ports": [w.snapshot() for w in self._windows],
            "ingested_tuples": self.ingested_tuples,
            "emitted_tuples": self.emitted_tuples,
            "lost_sic": self.lost_sic,
        }

    def restore(self, state: dict) -> None:
        """Rebuild the operator's state from :meth:`snapshot` output."""
        if state.get("type") != type(self).__name__ or state.get("name") != self.name:
            raise CheckpointError(
                f"operator checkpoint for {state.get('type')}/{state.get('name')!r} "
                f"does not match {type(self).__name__}/{self.name!r}"
            )
        ports = state["ports"]
        if len(ports) != self.num_ports:
            raise CheckpointError(
                f"operator {self.name!r} has {self.num_ports} ports, "
                f"checkpoint has {len(ports)}"
            )
        for window, port_state in zip(self._windows, ports):
            window.restore(port_state)
        self.ingested_tuples = state["ingested_tuples"]
        self.emitted_tuples = state["emitted_tuples"]
        self.lost_sic = state["lost_sic"]

    def reset_state(self) -> None:
        """Discard buffered window state (crash loss, no checkpoint)."""
        for window in self._windows:
            window.clear()

    # ----------------------------------------------------------- customisation
    def _process(self, panes: PaneGroup, now: float) -> List[Tuple]:
        """Transform one atomically-processed pane group into output tuples.

        Implementations build output tuples with ``sic=0.0``; the base class
        overwrites the SIC according to Equation (3).
        """
        raise NotImplementedError

    def _process_columnar(
        self, panes: PaneGroup, now: float
    ) -> Optional[ColumnBlock]:
        """Columnar counterpart of :meth:`_process` (optional fast path).

        Return the output as one ``ColumnBlock`` (its SIC column is
        overwritten by the base class) to fully handle the round, or ``None``
        to fall back to :meth:`_process`.  Implementations must return
        ``None`` unless every pane of the group is columnar, and must emit
        exactly the rows, values and ordering their tuple path would.
        """
        return None

    # ----------------------------------------------------------------- helpers
    def _collect_pane_groups(self, now: float) -> List[PaneGroup]:
        if self.num_ports == 1:
            return [{0: pane} for pane in self._windows[0].advance(now)]
        grouped: Dict[float, PaneGroup] = {}
        for port, window in enumerate(self._windows):
            for pane in window.advance(now):
                grouped.setdefault(round(pane.end, 9), {})[port] = pane
        return [grouped[key] for key in sorted(grouped)]

    @staticmethod
    def _pane_timestamp(panes: PaneGroup, now: float) -> float:
        """Output timestamp for a processing round: pane end, or ``now``."""
        ends = [pane.end for pane in panes.values() if pane.end != float("inf")]
        finite = [e for e in ends if e != float("-inf")]
        if not finite:
            return now
        end = max(finite)
        return now if end == float("inf") else min(end, now)

    @staticmethod
    def _all_tuples(panes: PaneGroup) -> List[Tuple]:
        tuples: List[Tuple] = []
        for port in sorted(panes):
            tuples.extend(panes[port].tuples)
        return tuples

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(id={self.operator_id}, name={self.name!r})"
