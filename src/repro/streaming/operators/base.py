"""Operator base class with built-in SIC propagation.

THEMIS treats operators as black boxes: the system never inspects operator
semantics, it only observes the sets of tuples an operator consumes and emits
atomically and applies Equation (3) — the summed SIC of the consumed set is
divided equally over the emitted tuples.  This base class implements that
bookkeeping once so every concrete operator only has to provide its
``_process`` transformation.

Operators may have several input ports (joins, covariance, merges).  Each port
owns a window buffer; when the operator is advanced to the current time, the
closed panes of all ports are aligned by their end time and each aligned group
is processed atomically.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional, Sequence

from ...core.sic import propagate_sic
from ...core.tuples import Tuple
from ..windows import ImmediateWindow, WindowBuffer, WindowPane

__all__ = ["Operator", "PaneGroup"]

_operator_ids = itertools.count()

# A pane group maps port number -> the pane closed on that port for one
# processing round.  Ports with no data for the round are simply absent.
PaneGroup = Dict[int, WindowPane]


class Operator:
    """Base class of all streaming operators.

    Args:
        name: human-readable operator name (used in query-graph dumps).
        cost_per_tuple: simulated processing cost of one input tuple, in the
            node budget units used by the cost model.
        num_ports: number of input ports.
        window_factory: zero-argument callable building the window buffer for
            each port; defaults to :class:`ImmediateWindow` (stateless
            operators).
    """

    def __init__(
        self,
        name: str,
        cost_per_tuple: float = 1.0,
        num_ports: int = 1,
        window_factory: Optional[Callable[[], WindowBuffer]] = None,
    ) -> None:
        if num_ports < 1:
            raise ValueError(f"num_ports must be >= 1, got {num_ports}")
        if cost_per_tuple < 0:
            raise ValueError(f"cost_per_tuple must be >= 0, got {cost_per_tuple}")
        self.operator_id = f"op-{next(_operator_ids)}"
        self.name = name
        self.cost_per_tuple = float(cost_per_tuple)
        self.num_ports = int(num_ports)
        factory = window_factory or ImmediateWindow
        self._windows: List[WindowBuffer] = [factory() for _ in range(self.num_ports)]
        self.ingested_tuples = 0
        self.emitted_tuples = 0
        self.lost_sic = 0.0

    # ------------------------------------------------------------------ wiring
    def ingest(self, tuples: Sequence[Tuple], port: int = 0) -> None:
        """Buffer ``tuples`` on ``port``."""
        if not tuples:
            return
        if port < 0 or port >= self.num_ports:
            raise ValueError(
                f"operator {self.name!r} has {self.num_ports} ports, got port {port}"
            )
        self._windows[port].insert(tuples)
        self.ingested_tuples += len(tuples)

    def advance(self, now: float) -> List[Tuple]:
        """Process every window pane closed by ``now`` and return the outputs."""
        groups = self._collect_pane_groups(now)
        outputs: List[Tuple] = []
        for group in groups:
            input_sic = sum(pane.total_sic for pane in group.values())
            produced = self._process(group, now)
            if produced:
                shares = propagate_sic([input_sic], len(produced))
                for t, share in zip(produced, shares):
                    t.sic = share
                outputs.extend(produced)
                self.emitted_tuples += len(produced)
            else:
                self.lost_sic += input_sic
        return outputs

    def pending_tuples(self) -> int:
        """Tuples buffered in the operator's windows (all ports)."""
        return sum(w.pending_count() for w in self._windows)

    # ----------------------------------------------------------- customisation
    def _process(self, panes: PaneGroup, now: float) -> List[Tuple]:
        """Transform one atomically-processed pane group into output tuples.

        Implementations build output tuples with ``sic=0.0``; the base class
        overwrites the SIC according to Equation (3).
        """
        raise NotImplementedError

    # ----------------------------------------------------------------- helpers
    def _collect_pane_groups(self, now: float) -> List[PaneGroup]:
        if self.num_ports == 1:
            return [{0: pane} for pane in self._windows[0].advance(now)]
        grouped: Dict[float, PaneGroup] = {}
        for port, window in enumerate(self._windows):
            for pane in window.advance(now):
                grouped.setdefault(round(pane.end, 9), {})[port] = pane
        return [grouped[key] for key in sorted(grouped)]

    @staticmethod
    def _pane_timestamp(panes: PaneGroup, now: float) -> float:
        """Output timestamp for a processing round: pane end, or ``now``."""
        ends = [pane.end for pane in panes.values() if pane.end != float("inf")]
        finite = [e for e in ends if e != float("-inf")]
        if not finite:
            return now
        end = max(finite)
        return now if end == float("inf") else min(end, now)

    @staticmethod
    def _all_tuples(panes: PaneGroup) -> List[Tuple]:
        tuples: List[Tuple] = []
        for port in sorted(panes):
            tuples.extend(panes[port].tuples)
        return tuples

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(id={self.operator_id}, name={self.name!r})"
