"""Streaming operators with black-box SIC propagation."""

from .aggregate import (
    Average,
    Count,
    GroupByAggregate,
    Max,
    Min,
    Sum,
    WindowedAggregate,
)
from .base import Operator, PaneGroup
from .join import WindowEquiJoin
from .statistics import (
    AverageMerge,
    Covariance,
    CovarianceMerge,
    CovarianceStats,
    PartialAverage,
)
from .stateless import Filter, MapValues, OutputOperator, Project, SourceReceiver, Union
from .topk import TopK, TopKMerge

__all__ = [
    "Operator",
    "PaneGroup",
    "Average",
    "Count",
    "GroupByAggregate",
    "Max",
    "Min",
    "Sum",
    "WindowedAggregate",
    "WindowEquiJoin",
    "AverageMerge",
    "Covariance",
    "CovarianceMerge",
    "CovarianceStats",
    "PartialAverage",
    "Filter",
    "MapValues",
    "OutputOperator",
    "Project",
    "SourceReceiver",
    "Union",
    "TopK",
    "TopKMerge",
]
