"""Relational stream schemas.

THEMIS follows a relational streaming model [8]: every tuple has fields of a
given schema.  The schema objects here are deliberately lightweight — they
carry field names and optional types, validate payloads, and are mainly used
by the CQL planner and by tests to document what each stream carries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

__all__ = ["Field", "Schema"]


@dataclass(frozen=True)
class Field:
    """A single schema field.

    Attributes:
        name: field name as used in tuple payloads and CQL expressions.
        dtype: expected Python type; ``None`` means "any".
    """

    name: str
    dtype: Optional[type] = None

    def validate(self, value: Any) -> bool:
        """Return ``True`` when ``value`` conforms to the field type."""
        if self.dtype is None or value is None:
            return True
        if self.dtype is float:
            return isinstance(value, (int, float)) and not isinstance(value, bool)
        return isinstance(value, self.dtype)


class Schema:
    """An ordered collection of named fields."""

    def __init__(self, fields: Sequence[Field], name: str = "stream") -> None:
        names = [f.name for f in fields]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate field names in schema: {names}")
        self.name = name
        self.fields: List[Field] = list(fields)
        self._by_name: Dict[str, Field] = {f.name: f for f in fields}

    @classmethod
    def of(cls, *names: str, name: str = "stream") -> "Schema":
        """Build an untyped schema from field names."""
        return cls([Field(n) for n in names], name=name)

    def field_names(self) -> List[str]:
        return [f.name for f in self.fields]

    def has_field(self, name: str) -> bool:
        return name in self._by_name

    def field(self, name: str) -> Field:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(
                f"schema {self.name!r} has no field {name!r}; "
                f"known fields: {self.field_names()}"
            ) from None

    def validate(self, values: Mapping[str, Any]) -> bool:
        """Return ``True`` when ``values`` contains valid entries for all fields."""
        for f in self.fields:
            if f.name not in values:
                return False
            if not f.validate(values[f.name]):
                return False
        return True

    def project(self, names: Iterable[str]) -> "Schema":
        """Return a schema restricted to ``names`` (order preserved)."""
        return Schema([self.field(n) for n in names], name=f"{self.name}.projected")

    def extend(self, *fields: Field) -> "Schema":
        """Return a schema with additional fields appended."""
        return Schema(self.fields + list(fields), name=self.name)

    def __contains__(self, name: str) -> bool:
        return self.has_field(name)

    def __len__(self) -> int:
        return len(self.fields)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Schema({self.name!r}, fields={self.field_names()})"


# Schemas used by the paper's workloads (Table 1).
VALUE_SCHEMA = Schema([Field("v", float)], name="Src")
CPU_SCHEMA = Schema([Field("id", str), Field("value", float)], name="SrcCPU")
MEMORY_SCHEMA = Schema([Field("id", str), Field("free", float)], name="SrcMem")
