"""Single-node execution engine.

A thin convenience wrapper used by the SIC-correlation experiments, the
quickstart example and many tests: it deploys a set of queries on a *single*
THEMIS node (all fragments co-located), sizes the node's budget from a target
overload factor and runs the time-stepped simulation.

The engine accepts any objects that follow the workload-query protocol
(``query_id``, ``fragments`` mapping, ``sources`` list) — in practice the
:class:`~repro.workloads.spec.WorkloadQuery` objects produced by the workload
builders.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from ..core.shedding import Shedder, make_shedder
from ..federation.fsps import FederatedSystem
from ..federation.network import Network, UniformLatency
from ..federation.node import FspsNode
from ..simulation.config import SimulationConfig
from ..simulation.results import RunResult
from ..simulation.simulator import Simulator

__all__ = ["LocalEngine"]


class LocalEngine:
    """Runs queries on a single node under a configurable overload factor."""

    def __init__(
        self,
        config: Optional[SimulationConfig] = None,
        shedder: Optional[Shedder] = None,
        node_id: str = "node-0",
    ) -> None:
        self.config = config or SimulationConfig()
        self.shedder = shedder or make_shedder(self.config.shedder, seed=self.config.seed)
        self.node_id = node_id
        self._queries: List[object] = []

    def add_query(self, query: object) -> None:
        """Register a query (workload-query protocol) for execution."""
        if not getattr(query, "fragments", None):
            raise ValueError("query object must expose a non-empty 'fragments' mapping")
        if not getattr(query, "sources", None):
            raise ValueError("query object must expose a non-empty 'sources' list")
        self._queries.append(query)

    def add_queries(self, queries: Iterable[object]) -> None:
        for query in queries:
            self.add_query(query)

    def run(self, measure_shedder_time: bool = False) -> RunResult:
        """Build the single-node federation, run it and return the results."""
        if not self._queries:
            raise ValueError("no queries registered; call add_query() first")
        # Imported lazily to keep the streaming package importable on its own.
        from ..federation.deployment import Placement
        from ..workloads.generators import compute_node_budgets

        placement = Placement(
            assignments={
                fragment_id: self.node_id
                for query in self._queries
                for fragment_id in query.fragments
            }
        )
        budgets = compute_node_budgets(
            self._queries,
            placement,
            shedding_interval=self.config.shedding_interval,
            capacity_fraction=self.config.capacity_fraction,
            node_ids=[self.node_id],
        )

        system = FederatedSystem(
            stw_config=self.config.stw_config(),
            shedding_interval=self.config.shedding_interval,
            network=Network(
                UniformLatency(self.config.network_latency_seconds),
                reliability=self.config.reliability_config(),
            ),
            coordinator_update_interval=self.config.coordinator_update_interval,
            enable_sic_updates=self.config.enable_sic_updates,
            columnar=self.config.columnar,
            retain_results=self.config.retain_result_values,
            max_retained_results=self.config.max_result_values,
            result_accounting=self.config.result_accounting,
        )
        node = FspsNode(
            node_id=self.node_id,
            shedder=self.shedder,
            budget_per_interval=budgets[self.node_id],
            stw_config=self.config.stw_config(),
            max_ingress_tuples=self.config.max_ingress_tuples,
            ingress_high_fraction=self.config.ingress_high_fraction,
            ingress_low_fraction=self.config.ingress_low_fraction,
        )
        system.add_node(node)
        for query in self._queries:
            system.deploy_query(
                query_id=query.query_id,
                fragments=query.fragments,
                sources=query.sources,
                placement={fid: self.node_id for fid in query.fragments},
            )
        simulator = Simulator(
            system, self.config, measure_shedder_time=measure_shedder_time
        )
        return simulator.run()
