"""A small CQL-like query language (Table 1 of the paper).

The paper expresses its workloads in CQL-like syntax [8]::

    Select Avg(t.v) From Src[Range 1 sec]
    Select Count(t.v) From Src[Range 1 sec] Having t.v >= 50
    Select Top5(AllSrcCPU.id)
      From AllSrcCPU[Range 1 sec], AllSrcMem[Range 1 sec]
      Where AllSrcMem.free >= 100000 and AllSrcCPU.id = AllSrcMem.id
    Select Cov(SrcCPU1.value, SrcCPU2.value)
      From SrcCPU1[Range 1 sec], SrcCPU2[Range 1 sec]

This module provides a tokenizer, a recursive-descent parser producing a small
AST (:class:`QuerySpec`) and a planner that turns the AST into an executable
:class:`~repro.streaming.query.QueryGraph` built from the operator library.
It intentionally covers the query shapes used in the paper (single aggregates,
top-k with a join, covariance over two streams) rather than full CQL.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple as PyTuple

from .operators import (
    Average,
    Count,
    Covariance,
    Filter,
    Max,
    Min,
    OutputOperator,
    SourceReceiver,
    Sum,
    TopK,
    Union,
    WindowEquiJoin,
)
from .query import QueryGraph

__all__ = [
    "CqlError",
    "FieldRef",
    "Comparison",
    "StreamRef",
    "SelectFunction",
    "QuerySpec",
    "tokenize",
    "parse",
    "plan",
    "compile_query",
]


class CqlError(ValueError):
    """Raised when a CQL statement cannot be parsed or planned."""


# --------------------------------------------------------------------------- AST
@dataclass(frozen=True)
class FieldRef:
    """A qualified field reference such as ``AllSrcCPU.id`` or ``t.v``."""

    stream: str
    field: str

    def __str__(self) -> str:
        return f"{self.stream}.{self.field}"


@dataclass(frozen=True)
class Comparison:
    """A binary comparison in a ``Where`` or ``Having`` clause."""

    left: FieldRef
    op: str
    right: object  # either a FieldRef (join predicate) or a constant

    @property
    def is_join(self) -> bool:
        return isinstance(self.right, FieldRef)


@dataclass(frozen=True)
class StreamRef:
    """A stream in the ``From`` clause with its window specification."""

    name: str
    range_seconds: float
    slide_seconds: Optional[float] = None


@dataclass(frozen=True)
class SelectFunction:
    """The aggregate in the ``Select`` clause (Avg, Max, Count, TopN, Cov...)."""

    name: str
    args: PyTuple[FieldRef, ...]
    top_k: Optional[int] = None


@dataclass
class QuerySpec:
    """Parsed representation of one CQL statement."""

    select: SelectFunction
    streams: List[StreamRef]
    where: List[Comparison] = field(default_factory=list)
    having: List[Comparison] = field(default_factory=list)

    def stream(self, name: str) -> StreamRef:
        for ref in self.streams:
            if ref.name.lower() == name.lower():
                return ref
        raise CqlError(f"unknown stream {name!r} in From clause")


# ---------------------------------------------------------------------- lexer
_TOKEN_RE = re.compile(
    r"""
    (?P<number>\d+(?:\.\d+)?|\.\d+)
  | (?P<comma>,)
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<lbracket>\[)
  | (?P<rbracket>\])
  | (?P<op>>=|<=|!=|=|>|<)
  | (?P<name>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<dot>\.)
  | (?P<ws>\s+)
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str


def tokenize(statement: str) -> List[_Token]:
    """Tokenize a CQL statement; raises :class:`CqlError` on bad characters."""
    tokens: List[_Token] = []
    position = 0
    while position < len(statement):
        match = _TOKEN_RE.match(statement, position)
        if match is None:
            raise CqlError(
                f"unexpected character {statement[position]!r} at offset {position}"
            )
        position = match.end()
        kind = match.lastgroup or ""
        if kind == "ws":
            continue
        tokens.append(_Token(kind, match.group()))
    return tokens


# --------------------------------------------------------------------- parser
_KEYWORDS = {"select", "from", "where", "having", "and", "range", "slide", "sec",
             "secs", "second", "seconds"}


class _Parser:
    def __init__(self, tokens: Sequence[_Token]) -> None:
        self.tokens = list(tokens)
        self.index = 0

    # primitive helpers -------------------------------------------------------
    def peek(self) -> Optional[_Token]:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def next(self) -> _Token:
        token = self.peek()
        if token is None:
            raise CqlError("unexpected end of statement")
        self.index += 1
        return token

    def expect_name(self, *expected: str) -> _Token:
        token = self.next()
        if token.kind != "name" or (
            expected and token.text.lower() not in {e.lower() for e in expected}
        ):
            raise CqlError(
                f"expected {' or '.join(expected) if expected else 'identifier'}, "
                f"got {token.text!r}"
            )
        return token

    def expect(self, kind: str) -> _Token:
        token = self.next()
        if token.kind != kind:
            raise CqlError(f"expected {kind}, got {token.text!r}")
        return token

    def at_keyword(self, keyword: str) -> bool:
        token = self.peek()
        return (
            token is not None
            and token.kind == "name"
            and token.text.lower() == keyword.lower()
        )

    # grammar -----------------------------------------------------------------
    def parse_statement(self) -> QuerySpec:
        self.expect_name("Select")
        select = self.parse_select_function()
        self.expect_name("From")
        streams = [self.parse_stream_ref()]
        while self.peek() is not None and self.peek().kind == "comma":
            self.next()
            streams.append(self.parse_stream_ref())
        where: List[Comparison] = []
        having: List[Comparison] = []
        while self.peek() is not None:
            if self.at_keyword("Where"):
                self.next()
                where.extend(self.parse_predicates())
            elif self.at_keyword("Having"):
                self.next()
                having.extend(self.parse_predicates())
            else:
                raise CqlError(f"unexpected token {self.peek().text!r}")
        return QuerySpec(select=select, streams=streams, where=where, having=having)

    def parse_select_function(self) -> SelectFunction:
        name_token = self.expect_name()
        name = name_token.text
        top_match = re.fullmatch(r"[Tt]op(\d+)", name)
        self.expect("lparen")
        args: List[FieldRef] = [self.parse_field_ref()]
        while self.peek() is not None and self.peek().kind == "comma":
            self.next()
            args.append(self.parse_field_ref())
        self.expect("rparen")
        if top_match:
            return SelectFunction(name="top", args=tuple(args), top_k=int(top_match.group(1)))
        return SelectFunction(name=name.lower(), args=tuple(args))

    def parse_field_ref(self) -> FieldRef:
        stream = self.expect_name().text
        self.expect("dot")
        field_name = self.expect_name().text
        return FieldRef(stream=stream, field=field_name)

    def parse_stream_ref(self) -> StreamRef:
        name = self.expect_name().text
        self.expect("lbracket")
        self.expect_name("Range")
        range_seconds = float(self.expect("number").text)
        self.expect_name("sec", "secs", "second", "seconds")
        slide_seconds: Optional[float] = None
        if self.at_keyword("Slide"):
            self.next()
            slide_seconds = float(self.expect("number").text)
            self.expect_name("sec", "secs", "second", "seconds")
        self.expect("rbracket")
        return StreamRef(name=name, range_seconds=range_seconds, slide_seconds=slide_seconds)

    def parse_predicates(self) -> List[Comparison]:
        predicates = [self.parse_comparison()]
        while self.at_keyword("and"):
            self.next()
            predicates.append(self.parse_comparison())
        return predicates

    def parse_comparison(self) -> Comparison:
        left = self.parse_field_ref()
        op = self.expect("op").text
        token = self.peek()
        if token is None:
            raise CqlError("unexpected end of predicate")
        if token.kind == "number":
            self.next()
            return Comparison(left=left, op=op, right=float(token.text))
        right = self.parse_field_ref()
        return Comparison(left=left, op=op, right=right)


def parse(statement: str) -> QuerySpec:
    """Parse a CQL statement into a :class:`QuerySpec`."""
    # Allow thousands separators such as 100,000 by removing commas that sit
    # between digits before tokenizing.
    cleaned = re.sub(r"(?<=\d),(?=\d)", "", statement)
    parser = _Parser(tokenize(cleaned))
    return parser.parse_statement()


# -------------------------------------------------------------------- planner
def _normalize_sources(
    spec: QuerySpec, sources: Optional[Mapping[str, Sequence[str]]]
) -> Dict[str, List[str]]:
    """Resolve the source ids feeding each stream of the From clause."""
    resolved: Dict[str, List[str]] = {}
    for stream in spec.streams:
        if sources and stream.name in sources:
            ids = list(sources[stream.name])
            if not ids:
                raise CqlError(f"stream {stream.name!r} has an empty source list")
        else:
            ids = [stream.name]
        resolved[stream.name] = ids
    return resolved


def _build_stream_input(
    graph: QueryGraph, stream: StreamRef, source_ids: Sequence[str]
):
    """Create receivers (and a union if needed) for one From-clause stream."""
    receivers = []
    for source_id in source_ids:
        receiver = graph.add_operator(SourceReceiver(source_id))
        graph.bind_source(source_id, receiver)
        receivers.append(receiver)
    if len(receivers) == 1:
        return receivers[0]
    union = graph.add_operator(Union(num_ports=len(receivers)))
    for port, receiver in enumerate(receivers):
        graph.connect(receiver, union, port=port)
    return union


def _resolve_stream_name(spec: QuerySpec, stream_heads: Dict[str, object], name: str) -> str:
    """Resolve a stream or tuple-alias name to a From-clause stream.

    CQL statements may refer to tuples through an alias (``t.v``) rather than
    the stream name; with a single stream in the From clause the alias
    unambiguously denotes that stream.
    """
    if name in stream_heads:
        return name
    if len(spec.streams) == 1:
        return spec.streams[0].name
    raise CqlError(
        f"cannot resolve {name!r}: it is not a stream of the From clause and the "
        f"query reads more than one stream"
    )


def _constant_filters(
    graph: QueryGraph, spec: QuerySpec, stream_heads: Dict[str, object]
) -> None:
    """Apply constant Where-comparisons as filters on their stream."""
    for comparison in spec.where:
        if comparison.is_join:
            continue
        stream_name = _resolve_stream_name(spec, stream_heads, comparison.left.stream)
        filter_op = graph.add_operator(
            Filter.field_threshold(
                comparison.left.field, comparison.op, float(comparison.right)
            )
        )
        graph.connect(stream_heads[stream_name], filter_op)
        stream_heads[stream_name] = filter_op


_AGGREGATES = {
    "avg": Average,
    "max": Max,
    "min": Min,
    "sum": Sum,
    "count": Count,
}


def plan(
    spec: QuerySpec,
    query_id: str,
    sources: Optional[Mapping[str, Sequence[str]]] = None,
) -> QueryGraph:
    """Turn a parsed :class:`QuerySpec` into an executable query graph.

    Args:
        spec: the parsed statement.
        query_id: identifier of the resulting query graph.
        sources: optional mapping from stream name (as used in the statement)
            to the list of physical source ids feeding it; defaults to one
            source named after the stream.
    """
    graph = QueryGraph(query_id)
    resolved_sources = _normalize_sources(spec, sources)
    stream_heads: Dict[str, object] = {}
    for stream in spec.streams:
        stream_heads[stream.name] = _build_stream_input(
            graph, stream, resolved_sources[stream.name]
        )
    _constant_filters(graph, spec, stream_heads)

    select = spec.select
    primary_stream = spec.streams[0]
    window_seconds = primary_stream.range_seconds
    slide_seconds = primary_stream.slide_seconds

    if select.name in _AGGREGATES:
        head = stream_heads[
            _resolve_stream_name(spec, stream_heads, select.args[0].stream)
        ]
        predicate = None
        if spec.having:
            having = spec.having[0]
            predicate = Filter.field_threshold(
                having.left.field, having.op, float(having.right)
            ).predicate
        aggregate_cls = _AGGREGATES[select.name]
        aggregate = graph.add_operator(
            aggregate_cls(
                field=select.args[0].field,
                window_seconds=window_seconds,
                slide_seconds=slide_seconds,
                predicate=predicate,
            )
        )
        graph.connect(head, aggregate)
        tail = aggregate
    elif select.name == "top":
        tail = _plan_topk(graph, spec, stream_heads)
    elif select.name == "cov":
        tail = _plan_covariance(graph, spec, stream_heads)
    else:
        raise CqlError(f"unsupported Select function {select.name!r}")

    output = graph.add_operator(OutputOperator())
    graph.connect(tail, output)
    graph.set_root(output)
    graph.validate()
    return graph


def _plan_topk(
    graph: QueryGraph, spec: QuerySpec, stream_heads: Dict[str, object]
):
    select = spec.select
    id_ref = select.args[0]
    join_predicates = [c for c in spec.where if c.is_join]
    ranked_stream = id_ref.stream
    head = stream_heads[ranked_stream]
    value_field = "value"
    if join_predicates:
        join = join_predicates[0]
        left_stream = join.left.stream
        right_ref = join.right
        assert isinstance(right_ref, FieldRef)
        window = spec.stream(left_stream).range_seconds
        join_op = graph.add_operator(
            WindowEquiJoin(
                left_key=join.left.field,
                right_key=right_ref.field,
                window_seconds=window,
            )
        )
        graph.connect(stream_heads[left_stream], join_op, port=0)
        graph.connect(stream_heads[right_ref.stream], join_op, port=1)
        head = join_op
    topk = graph.add_operator(
        TopK(
            k=select.top_k or 1,
            value_field=value_field,
            id_field=id_ref.field,
            window_seconds=spec.stream(ranked_stream).range_seconds,
        )
    )
    graph.connect(head, topk)
    return topk


def _plan_covariance(
    graph: QueryGraph, spec: QuerySpec, stream_heads: Dict[str, object]
):
    select = spec.select
    if len(select.args) != 2:
        raise CqlError("Cov() requires exactly two field arguments")
    x_ref, y_ref = select.args
    window = spec.stream(x_ref.stream).range_seconds
    cov = graph.add_operator(
        Covariance(field_x=x_ref.field, field_y=y_ref.field, window_seconds=window)
    )
    graph.connect(stream_heads[x_ref.stream], cov, port=0)
    graph.connect(stream_heads[y_ref.stream], cov, port=1)
    return cov


def compile_query(
    statement: str,
    query_id: str,
    sources: Optional[Mapping[str, Sequence[str]]] = None,
) -> QueryGraph:
    """Parse and plan a CQL statement in one call."""
    return plan(parse(statement), query_id=query_id, sources=sources)
