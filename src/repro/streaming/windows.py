"""Time- and count-based windows.

Every operator in the THEMIS model consumes its input through a window that
emits tuples *atomically* (§3): the SIC propagation rule (Equation 3) is
defined over the set of tuples a window hands to the operator in one go.

Two window families are provided:

* :class:`TimeWindow` — tumbling or sliding windows over tuple timestamps
  (``[Range n sec]`` / ``[Range n sec Slide m sec]`` in CQL terms).
* :class:`CountWindow` — tumbling windows over tuple counts.

A window buffer collects tuples and, when asked to ``advance`` to the current
time, returns the closed panes in order.  For sliding time windows a tuple can
belong to several panes; following §6 ("we also provide a practical way to
divide the SIC value of an input tuple across all its derived tuples per
slide"), the tuple's SIC is divided equally across the panes it participates
in, so no information content is double-counted.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core.tuples import Tuple

__all__ = ["WindowPane", "WindowBuffer", "TimeWindow", "CountWindow", "ImmediateWindow"]


@dataclass
class WindowPane:
    """A closed window pane handed atomically to an operator.

    Attributes:
        start: pane start time (inclusive) — or first tuple index for count
            windows.
        end: pane end time (exclusive).
        tuples: the tuples assigned to the pane, in arrival order.
    """

    start: float
    end: float
    tuples: List[Tuple]

    @property
    def total_sic(self) -> float:
        return sum(t.sic for t in self.tuples)

    def __len__(self) -> int:
        return len(self.tuples)


class WindowBuffer:
    """Interface of all window buffers."""

    def insert(self, tuples: Sequence[Tuple]) -> None:
        raise NotImplementedError

    def advance(self, now: float) -> List[WindowPane]:
        """Close and return all panes whose end time is ``<= now``."""
        raise NotImplementedError

    def pending_count(self) -> int:
        """Number of buffered tuples not yet emitted in a pane."""
        raise NotImplementedError


class ImmediateWindow(WindowBuffer):
    """Degenerate window that releases tuples as soon as they arrive.

    Used by stateless operators (filters, projections, receivers, unions)
    whose semantics do not require buffering.  Each ``advance`` call emits a
    single pane with everything inserted since the previous call.
    """

    def __init__(self) -> None:
        self._buffer: List[Tuple] = []

    def insert(self, tuples: Sequence[Tuple]) -> None:
        self._buffer.extend(tuples)

    def advance(self, now: float) -> List[WindowPane]:
        if not self._buffer:
            return []
        pane = WindowPane(start=float("-inf"), end=now, tuples=self._buffer)
        self._buffer = []
        return [pane]

    def pending_count(self) -> int:
        return len(self._buffer)


class TimeWindow(WindowBuffer):
    """Tumbling or sliding time window over tuple timestamps.

    Args:
        size_seconds: window range.
        slide_seconds: slide; defaults to ``size_seconds`` (tumbling).
        allowed_lateness: how long after a pane's end time the pane stays open.
            Tuples routinely arrive slightly after their pane's logical end
            (network latency plus one shedding interval of batching), so panes
            are closed once ``now >= end + allowed_lateness``; tuples that
            arrive after their pane has closed are dropped and their SIC is
            lost, like any late tuple in a real system.
    """

    DEFAULT_ALLOWED_LATENESS = 0.5

    def __init__(
        self,
        size_seconds: float,
        slide_seconds: Optional[float] = None,
        allowed_lateness: Optional[float] = None,
    ) -> None:
        if size_seconds <= 0:
            raise ValueError(f"size_seconds must be positive, got {size_seconds}")
        slide = slide_seconds if slide_seconds is not None else size_seconds
        if slide <= 0:
            raise ValueError(f"slide_seconds must be positive, got {slide}")
        if slide > size_seconds:
            raise ValueError("slide_seconds cannot exceed size_seconds")
        self.size = float(size_seconds)
        self.slide = float(slide)
        if allowed_lateness is None:
            allowed_lateness = self.DEFAULT_ALLOWED_LATENESS
        if allowed_lateness < 0:
            raise ValueError(
                f"allowed_lateness must be non-negative, got {allowed_lateness}"
            )
        self.allowed_lateness = float(allowed_lateness)
        self._panes: Dict[int, List[Tuple]] = {}
        self._last_closed_end: float = float("-inf")

    @property
    def is_sliding(self) -> bool:
        return self.slide < self.size

    def _pane_indices(self, timestamp: float) -> List[int]:
        """Indices of all panes a tuple with ``timestamp`` belongs to.

        Pane ``i`` covers ``[i * slide, i * slide + size)``; a tuple belongs to
        every pane whose interval contains its timestamp, i.e.
        ``floor((t - size) / slide) + 1 <= i <= floor(t / slide)``.
        """
        last = int(math.floor(timestamp / self.slide))
        first = int(math.floor((timestamp - self.size) / self.slide)) + 1
        return list(range(first, last + 1))

    def insert(self, tuples: Sequence[Tuple]) -> None:
        for t in tuples:
            indices = self._pane_indices(t.timestamp)
            # Panes whose end time has already been closed cannot accept the
            # tuple any more; its share of SIC for those panes is lost.
            indices = [
                i for i in indices if i * self.slide + self.size > self._last_closed_end
            ]
            if not indices:
                continue
            if len(indices) == 1:
                self._panes.setdefault(indices[0], []).append(t)
                continue
            # Sliding window: split the tuple's SIC across its panes so that
            # the total information content is conserved.
            share = t.sic / len(indices)
            for idx in indices:
                self._panes.setdefault(idx, []).append(t.with_sic(share))

    def advance(self, now: float) -> List[WindowPane]:
        closed: List[WindowPane] = []
        for idx in sorted(self._panes):
            start = idx * self.slide
            end = start + self.size
            if end + self.allowed_lateness <= now:
                tuples = self._panes.pop(idx)
                tuples.sort(key=lambda t: t.timestamp)
                closed.append(WindowPane(start=start, end=end, tuples=tuples))
                self._last_closed_end = max(self._last_closed_end, end)
        return closed

    def pending_count(self) -> int:
        return sum(len(ts) for ts in self._panes.values())


class CountWindow(WindowBuffer):
    """Tumbling count-based window: emits a pane every ``count`` tuples."""

    def __init__(self, count: int) -> None:
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        self.count = int(count)
        self._buffer: List[Tuple] = []

    def insert(self, tuples: Sequence[Tuple]) -> None:
        self._buffer.extend(tuples)

    def advance(self, now: float) -> List[WindowPane]:
        panes: List[WindowPane] = []
        while len(self._buffer) >= self.count:
            chunk = self._buffer[: self.count]
            self._buffer = self._buffer[self.count:]
            start = chunk[0].timestamp
            end = chunk[-1].timestamp
            panes.append(WindowPane(start=start, end=end, tuples=chunk))
        return panes

    def pending_count(self) -> int:
        return len(self._buffer)
