"""Time- and count-based windows.

Every operator in the THEMIS model consumes its input through a window that
emits tuples *atomically* (§3): the SIC propagation rule (Equation 3) is
defined over the set of tuples a window hands to the operator in one go.

Two window families are provided:

* :class:`TimeWindow` — tumbling or sliding windows over tuple timestamps
  (``[Range n sec]`` / ``[Range n sec Slide m sec]`` in CQL terms).
* :class:`CountWindow` — tumbling windows over tuple counts.

A window buffer collects tuples and, when asked to ``advance`` to the current
time, returns the closed panes in order.  For sliding time windows a tuple can
belong to several panes; following §6 ("we also provide a practical way to
divide the SIC value of an input tuple across all its derived tuples per
slide"), the tuple's SIC is divided equally across the panes it participates
in, so no information content is double-counted.

Columnar fast path
------------------

Windows accept input either tuple-at-a-time (:meth:`WindowBuffer.insert`) or
as :class:`~repro.core.columns.ColumnBlock` column groups
(:meth:`WindowBuffer.insert_block`).  Tumbling time windows bucket-assign a
block by *runs*: the pane index is monotonic in the timestamp, so run
boundaries are found by binary search over the timestamp column and each run
is stored as a column slice — no ``Tuple`` objects, no per-tuple routing.
Every pane's SIC is maintained incrementally at insert time (element-wise, in
insertion order — the exact additions the per-tuple path performs), so
closing a pane never re-sums its tuples.

The seed (pre-optimisation) implementations are preserved in
:mod:`repro.streaming._reference` as the equivalence oracle and the
perf-regression baseline.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Sequence

from ..core.columns import SMALL_COLUMN, ColumnAppender, ColumnBlock, seq_sum
from ..core.tuples import Tuple

try:  # Guarded: the list columnar backend works without NumPy.
    import numpy as np
except ImportError:  # pragma: no cover - exercised only on stripped installs
    np = None
from ..state.checkpoint import (
    CheckpointError,
    block_from_state,
    block_to_state,
    tuple_from_state,
    tuple_to_state,
)

__all__ = ["WindowPane", "WindowBuffer", "TimeWindow", "CountWindow", "ImmediateWindow"]


class WindowPane:
    """A closed window pane handed atomically to an operator.

    Attributes:
        start: pane start time (inclusive) — or first tuple index for count
            windows.
        end: pane end time (exclusive).
        sic: summed SIC of the pane, maintained incrementally by the window
            buffer as tuples are inserted (never re-summed on access).

    A pane is backed either by a list of tuples (per-tuple path) or by the
    column slices routed into it (columnar path).  ``tuples`` materializes
    lazily on the columnar path; vectorized operators read the columns
    directly through :meth:`values_column` / :meth:`timestamps_column`.
    """

    __slots__ = (
        "start",
        "end",
        "sic",
        "_tuples",
        "_ranges",
        "_count",
        "_sort_tuples",
        "_merged",
        "_order",
    )

    def __init__(
        self,
        start: float,
        end: float,
        tuples: Optional[List[Tuple]] = None,
        sic: Optional[float] = None,
        ranges: Optional[List["tuple[ColumnBlock, int, int]"]] = None,
        count: Optional[int] = None,
        sort_tuples: bool = False,
    ) -> None:
        self.start = start
        self.end = end
        self._tuples = tuples
        self._ranges = ranges
        self._sort_tuples = sort_tuples
        self._merged: Optional[ColumnBlock] = None
        self._order: Optional[List[int]] = None
        if tuples is not None:
            self._count = len(tuples)
            self.sic = sum(t.sic for t in tuples) if sic is None else sic
        elif ranges is not None:
            self._count = (
                count
                if count is not None
                else sum(hi - lo for _, lo, hi in ranges)
            )
            if sic is None:
                sic = 0.0
                for block, lo, hi in ranges:
                    sic += seq_sum(block.sics[lo:hi])
            self.sic = sic
        else:
            self._count = 0
            self.sic = 0.0 if sic is None else sic

    # ------------------------------------------------------------- inspection
    @property
    def total_sic(self) -> float:
        """Seed-compatible alias of :attr:`sic`."""
        return self.sic

    def __len__(self) -> int:
        return self._count

    @property
    def is_columnar(self) -> bool:
        """True while the pane is column-backed and unmaterialized."""
        return self._tuples is None and self._ranges is not None

    # ----------------------------------------------------------- tuple access
    @property
    def tuples(self) -> List[Tuple]:
        """Per-tuple view; materialized (and cached) for columnar panes.

        Materialization reproduces the per-tuple path exactly: column ranges
        expand in insertion order and, for time panes, the result is stably
        sorted by timestamp — the same ordering the seed applied at pane
        close.
        """
        if self._tuples is None:
            tuples: List[Tuple] = []
            for block, lo, hi in self._ranges or ():
                tuples.extend(block.to_tuples(lo, hi))
            if self._sort_tuples:
                tuples.sort(key=lambda t: t.timestamp)
            self._tuples = tuples
            # The tuple list is now the source of truth; drop the column
            # ranges (and any merged copy) so the pane does not retain every
            # source block for the rest of its lifetime.
            self._ranges = None
            self._merged = None
            self._order = None
        return self._tuples

    # ---------------------------------------------------------- column access
    def _ensure_merged(self) -> Optional[ColumnBlock]:
        """Concatenate the pane's ranges and compute the timestamp ordering."""
        if not self.is_columnar:
            return None
        if self._merged is None:
            ranges = self._ranges
            appender = ColumnAppender()
            if all(appender.append_range(b, lo, hi) for b, lo, hi in ranges):
                # Uniform array-backed ranges (the ubiquitous case): one
                # in-order pass into preallocated grow-by-doubling buffers,
                # trimmed to views — element-identical to the concat_ranges
                # merge, without the per-column slice lists it builds.
                merged = appender.build()
            else:
                first_fields = list(ranges[0][0].values)
                if any(
                    list(block.values) != first_fields
                    for block, _, _ in ranges[1:]
                ):
                    # Heterogeneous payload schemas in one pane (several
                    # sources with different fields bound to the same port):
                    # there is no meaningful merged column view, so
                    # materialize the tuples — every caller then takes the
                    # per-tuple path, which tolerates mixed payload dicts
                    # exactly like the seed did.
                    self.tuples
                    return None
                # List-backed blocks (or a dtype change mid-pane): the
                # legacy merge handles what the appender refused.
                merged = ColumnBlock.concat_ranges(ranges)
            self._merged = merged
            if self._sort_tuples:
                timestamps = merged.timestamps
                if np is not None and isinstance(timestamps, np.ndarray):
                    ordered = bool(np.all(timestamps[1:] >= timestamps[:-1]))
                    if not ordered:
                        # Stable permutation — argsort(kind="stable") applies
                        # the same reordering a stable sort of the
                        # materialized tuples by timestamp would.
                        self._order = np.argsort(timestamps, kind="stable")
                else:
                    ordered = all(
                        timestamps[i] <= timestamps[i + 1]
                        for i in range(len(timestamps) - 1)
                    )
                    if not ordered:
                        # Stable permutation — same reordering a stable sort
                        # of the materialized tuples by timestamp would apply.
                        self._order = sorted(
                            range(len(timestamps)), key=timestamps.__getitem__
                        )
        return self._merged

    def timestamps_column(self) -> Optional[List[float]]:
        """Timestamp column in pane order, or ``None`` when not columnar."""
        merged = self._ensure_merged()
        if merged is None:
            return None
        if self._order is None:
            return merged.timestamps
        timestamps = merged.timestamps
        if np is not None and isinstance(timestamps, np.ndarray):
            return timestamps[self._order]
        return [timestamps[i] for i in self._order]

    def as_block(self) -> Optional[ColumnBlock]:
        """The whole pane as one column group in pane order, or ``None``.

        Returns ``None`` when the pane is not columnar.  The result shares
        the underlying column lists when no reordering is needed; callers
        must treat them as read-only.
        """
        merged = self._ensure_merged()
        if merged is None:
            return None
        if self._order is None:
            return merged
        order = self._order
        timestamps = merged.timestamps
        sics = merged.sics
        if np is not None and isinstance(timestamps, np.ndarray):
            # Fancy indexing applies the stable permutation per column.
            return ColumnBlock._unchecked(
                timestamps[order],
                sics[order],
                {f: col[order] for f, col in merged.values.items()},
                merged.source_id,
            )
        return ColumnBlock(
            timestamps=[timestamps[i] for i in order],
            sics=[sics[i] for i in order],
            values={
                f: [col[i] for i in order] for f, col in merged.values.items()
            },
            source_id=merged.source_id,
        )

    def columns(self, *fields: str) -> Optional[List[Optional[List[Any]]]]:
        """Payload columns for ``fields`` in pane order, or ``None``.

        This is the one place encoding the columnar-or-tuples contract for
        operators: a ``None`` return means "this pane has no column view —
        iterate ``pane.tuples``" (either the pane was built per-tuple, or
        its blocks had heterogeneous schemas, in which case the tuples were
        just materialized and are ready to use).  A non-``None`` return is a
        per-field list of columns, where an individual entry is ``None``
        when that field is absent from the pane's uniform schema (i.e. *no*
        row carries it — there is nothing to fall back to).
        """
        merged = self._ensure_merged()
        if merged is None:
            return None
        return [self.values_column(field) for field in fields]

    def values_column(self, field: str) -> Optional[List[Any]]:
        """Payload column for ``field`` in pane order.

        Returns ``None`` when the pane is not columnar *or* the field is not
        part of the block schema — callers fall back to the per-tuple path in
        both cases (absent fields behave like per-tuple ``values.get``
        returning ``None`` for every row, which vectorized consumers handle
        by skipping the column entirely).
        """
        merged = self._ensure_merged()
        if merged is None:
            return None
        column = merged.values.get(field)
        if column is None:
            return None
        if self._order is None:
            return column
        if np is not None and isinstance(column, np.ndarray):
            return column[self._order]
        return [column[i] for i in self._order]


class _PaneAcc:
    """Per-pane accumulator: pending items plus incrementally-maintained SIC.

    ``items`` holds, in insertion order, either :class:`Tuple` objects
    (per-tuple path) or ``(block, lo, hi)`` column ranges (columnar path) —
    plain 3-tuples, so the type test against the ``Tuple`` dataclass is
    unambiguous.  Ranges defer all column copying to the pane's *merge*
    (``WindowPane.column()`` / the fused drain): most panes only ever have
    their incrementally-maintained SIC read, so copying rows at insert time
    would be pure waste on the hot bucketing path.
    """

    __slots__ = ("items", "sic", "count")

    def __init__(self) -> None:
        self.items: List[Any] = []
        self.sic = 0.0
        self.count = 0

    def add_tuple(self, t: Tuple) -> None:
        self.items.append(t)
        self.sic += t.sic
        self.count += 1

    def add_tuples(self, tuples: Sequence[Tuple]) -> None:
        sic = self.sic
        for t in tuples:
            sic += t.sic
        self.sic = sic
        self.count += len(tuples)
        self.items.extend(tuples)

    def add_range(self, block: ColumnBlock, lo: int, hi: int) -> None:
        """Add rows ``lo:hi`` of a block, accumulating SIC element-wise (the
        identical additions the per-tuple path performs, for bit equality —
        array columns fold through ``seq_sum``'s sequential cumsum)."""
        self.items.append((block, lo, hi))
        sics = block.sics
        if np is not None and isinstance(sics, np.ndarray):
            if hi - lo > SMALL_COLUMN:
                self.sic = seq_sum(sics[lo:hi], initial=self.sic)
                self.count += hi - lo
                return
            sics = sics[lo:hi].tolist()
            lo, hi = 0, len(sics)
        sic = self.sic
        for s in sics[lo:hi]:
            sic += s
        self.sic = sic
        self.count += hi - lo

    def to_state(self) -> Dict[str, Any]:
        """Serialise the accumulator: items in insertion order, recorded SIC.

        Column ranges are copied out as standalone blocks; the running SIC
        and count are recorded verbatim (never re-summed on restore) so the
        incrementally-maintained pane SIC survives the round-trip bit for
        bit.
        """
        items: List[Dict[str, Any]] = []
        for item in self.items:
            if type(item) is tuple:
                block, lo, hi = item
                items.append({"block": block_to_state(block, lo, hi)})
            else:
                items.append({"tuple": tuple_to_state(item)})
        return {"sic": self.sic, "count": self.count, "items": items}

    @classmethod
    def from_state(cls, state: Dict[str, Any]) -> "_PaneAcc":
        acc = cls()
        for item in state["items"]:
            if "block" in item:
                block = block_from_state(item["block"])
                acc.items.append((block, 0, len(block)))
            else:
                acc.items.append(tuple_from_state(item["tuple"]))
        acc.sic = state["sic"]
        acc.count = state["count"]
        return acc

    def close(self, start: float, end: float, sort_tuples: bool) -> WindowPane:
        items = self.items
        if items and all(type(item) is tuple for item in items):
            return WindowPane(
                start=start,
                end=end,
                ranges=items,
                sic=self.sic,
                count=self.count,
                sort_tuples=sort_tuples,
            )
        tuples: List[Tuple] = []
        for item in items:
            if type(item) is tuple:
                block, lo, hi = item
                tuples.extend(block.to_tuples(lo, hi))
            else:
                tuples.append(item)
        if sort_tuples:
            tuples.sort(key=lambda t: t.timestamp)
        return WindowPane(start=start, end=end, tuples=tuples, sic=self.sic)


class WindowBuffer:
    """Interface of all window buffers."""

    def insert(self, tuples: Sequence[Tuple]) -> None:
        raise NotImplementedError

    def insert_block(
        self, block: ColumnBlock, lo: int = 0, hi: Optional[int] = None
    ) -> None:
        """Insert rows ``lo:hi`` of a column group; default materializes."""
        self.insert(block.to_tuples(lo, hi))

    def advance(self, now: float) -> List[WindowPane]:
        """Close and return all panes whose end time is ``<= now``."""
        raise NotImplementedError

    def pending_count(self) -> int:
        """Number of buffered tuples not yet emitted in a pane."""
        raise NotImplementedError

    def pending_sic(self) -> float:
        """Summed SIC of the buffered (not yet emitted) tuples."""
        raise NotImplementedError

    def snapshot(self) -> Dict[str, Any]:
        """Serialise the buffered state into plain data (see repro.state)."""
        raise NotImplementedError

    def restore(self, state: Dict[str, Any]) -> None:
        """Replace the buffered state with ``state``; schema-checked."""
        raise NotImplementedError

    def clear(self) -> None:
        """Discard all buffered state (crash recovery without a checkpoint)."""
        raise NotImplementedError

    def _check_kind(self, state: Dict[str, Any], kind: str) -> None:
        got = state.get("kind")
        if got != kind:
            raise CheckpointError(
                f"window checkpoint kind {got!r} does not match {kind!r}"
            )


class ImmediateWindow(WindowBuffer):
    """Degenerate window that releases tuples as soon as they arrive.

    Used by stateless operators (filters, projections, receivers, unions)
    whose semantics do not require buffering.  Each ``advance`` call emits a
    single pane with everything inserted since the previous call, in
    insertion order (no sorting — matching the seed behaviour).
    """

    def __init__(self) -> None:
        self._acc = _PaneAcc()

    def insert(self, tuples: Sequence[Tuple]) -> None:
        self._acc.add_tuples(tuples)

    def insert_block(
        self, block: ColumnBlock, lo: int = 0, hi: Optional[int] = None
    ) -> None:
        if hi is None:
            hi = len(block)
        if hi <= lo:
            return
        self._acc.add_range(block, lo, hi)

    def advance(self, now: float) -> List[WindowPane]:
        acc = self._acc
        if not acc.items:
            return []
        self._acc = _PaneAcc()
        return [acc.close(start=float("-inf"), end=now, sort_tuples=False)]

    def pending_count(self) -> int:
        return self._acc.count

    def pending_sic(self) -> float:
        return self._acc.sic

    def snapshot(self) -> Dict[str, Any]:
        return {"kind": "immediate", "acc": self._acc.to_state()}

    def restore(self, state: Dict[str, Any]) -> None:
        self._check_kind(state, "immediate")
        self._acc = _PaneAcc.from_state(state["acc"])

    def clear(self) -> None:
        self._acc = _PaneAcc()


class TimeWindow(WindowBuffer):
    """Tumbling or sliding time window over tuple timestamps.

    Args:
        size_seconds: window range.
        slide_seconds: slide; defaults to ``size_seconds`` (tumbling).
        allowed_lateness: how long after a pane's end time the pane stays open.
            Tuples routinely arrive slightly after their pane's logical end
            (network latency plus one shedding interval of batching), so panes
            are closed once ``now >= end + allowed_lateness``; tuples that
            arrive after their pane has closed are dropped and their SIC is
            lost, like any late tuple in a real system.
    """

    DEFAULT_ALLOWED_LATENESS = 0.5

    def __init__(
        self,
        size_seconds: float,
        slide_seconds: Optional[float] = None,
        allowed_lateness: Optional[float] = None,
    ) -> None:
        if size_seconds <= 0:
            raise ValueError(f"size_seconds must be positive, got {size_seconds}")
        slide = slide_seconds if slide_seconds is not None else size_seconds
        if slide <= 0:
            raise ValueError(f"slide_seconds must be positive, got {slide}")
        if slide > size_seconds:
            raise ValueError("slide_seconds cannot exceed size_seconds")
        self.size = float(size_seconds)
        self.slide = float(slide)
        if allowed_lateness is None:
            allowed_lateness = self.DEFAULT_ALLOWED_LATENESS
        if allowed_lateness < 0:
            raise ValueError(
                f"allowed_lateness must be non-negative, got {allowed_lateness}"
            )
        self.allowed_lateness = float(allowed_lateness)
        self._panes: Dict[int, _PaneAcc] = {}
        self._last_closed_end: float = float("-inf")

    @property
    def is_sliding(self) -> bool:
        return self.slide < self.size

    def _pane_indices(self, timestamp: float) -> List[int]:
        """Indices of all panes a tuple with ``timestamp`` belongs to.

        Pane ``i`` covers ``[i * slide, i * slide + size)``; a tuple belongs to
        every pane whose interval contains its timestamp, i.e.
        ``floor((t - size) / slide) + 1 <= i <= floor(t / slide)``.
        """
        last = int(math.floor(timestamp / self.slide))
        first = int(math.floor((timestamp - self.size) / self.slide)) + 1
        return list(range(first, last + 1))

    def _index_pair(self, timestamp: float) -> "tuple[int, int]":
        """(first, last) pane index of ``timestamp`` — both nondecreasing in
        the timestamp, which is what makes the run search in
        :meth:`insert_block` a valid binary search."""
        last = int(math.floor(timestamp / self.slide))
        first = int(math.floor((timestamp - self.size) / self.slide)) + 1
        return first, last

    def _acc(self, index: int) -> _PaneAcc:
        acc = self._panes.get(index)
        if acc is None:
            acc = _PaneAcc()
            self._panes[index] = acc
        return acc

    def insert(self, tuples: Sequence[Tuple]) -> None:
        size = self.size
        slide = self.slide
        last_closed = self._last_closed_end
        for t in tuples:
            indices = self._pane_indices(t.timestamp)
            # Panes whose end time has already been closed cannot accept the
            # tuple any more; its share of SIC for those panes is lost.
            indices = [i for i in indices if i * slide + size > last_closed]
            if not indices:
                continue
            if len(indices) == 1:
                self._acc(indices[0]).add_tuple(t)
                continue
            # Sliding window: split the tuple's SIC across its panes so that
            # the total information content is conserved.
            share = t.sic / len(indices)
            for idx in indices:
                self._acc(idx).add_tuple(t.with_sic(share))

    def insert_block(
        self, block: ColumnBlock, lo: int = 0, hi: Optional[int] = None
    ) -> None:
        """Bucket-assign rows ``lo:hi`` of a column group by timestamp
        arithmetic.

        Tumbling windows with a nondecreasing timestamp column take the fast
        path: the pane index pair is monotonic in the timestamp, so maximal
        same-pane runs are found by binary search and stored as ``(block,
        i, j)`` ranges — columns are not copied until the pane closes.  Each
        run's SIC joins the pane total element-wise in insertion order — the
        identical additions :meth:`insert` performs — so both paths stay
        bit-for-bit equivalent.  Sliding windows (per-pane SIC shares) and
        unsorted inputs fall back to the exact per-tuple path.
        """
        if hi is None:
            hi = len(block)
        if hi <= lo:
            return
        timestamps = block.timestamps
        if np is not None and isinstance(timestamps, np.ndarray):
            if hi - lo > 32:
                self._insert_block_array(block, timestamps, lo, hi)
                return
            # Short ranges (split-fragmented batches): the scalar run loop
            # below beats the ufunc dispatch; np.float64 scalars go through
            # the identical index arithmetic.
            timestamps = timestamps[lo:hi].tolist()
            offset = lo
            lo, hi = 0, len(timestamps)
        else:
            offset = 0
        if self.is_sliding or any(
            timestamps[i] > timestamps[i + 1] for i in range(lo, hi - 1)
        ):
            self.insert(block.to_tuples(lo + offset, hi + offset))
            return
        index_pair = self._index_pair
        slide = self.slide
        size = self.size
        last_closed = self._last_closed_end
        i = lo
        while i < hi:
            pair = index_pair(timestamps[i])
            run_lo, run_hi = i + 1, hi
            while run_lo < run_hi:
                mid = (run_lo + run_hi) // 2
                if index_pair(timestamps[mid]) == pair:
                    run_lo = mid + 1
                else:
                    run_hi = mid
            j = run_lo
            first, last = pair
            if first == last:
                if last * slide + size > last_closed:
                    self._acc(last).add_range(block, i + offset, j + offset)
            else:
                # A tumbling run that straddles pane intervals can only come
                # from ulp-level rounding in the index arithmetic; route it
                # through the exact per-tuple path (SIC shares included).
                self.insert(block.to_tuples(i + offset, j + offset))
            i = j

    def _insert_block_array(self, block: ColumnBlock, timestamps, lo, hi) -> None:
        """Columnar v2 bucket assignment over a ``float64`` timestamp array.

        Pane indices are computed element-wise (``np.floor`` performs the
        identical per-element divisions and floors as :meth:`_index_pair`, so
        every row lands in exactly the pane the scalar path would pick) and
        maximal same-pane runs fall out of one change-point scan instead of
        per-run binary searches.  Each run joins its pane as a zero-copy
        ``(block, i, j)`` range in row order — the same insertion order and
        the same element-wise SIC additions as the per-tuple path, whether or
        not the timestamps arrive sorted.  Runs that straddle pane intervals
        and sliding windows fall back to the exact per-tuple path, exactly
        like the list-backed implementation.
        """
        if self.is_sliding:
            self.insert(block.to_tuples(lo, hi))
            return
        segment = (
            timestamps if lo == 0 and hi == len(timestamps)
            else timestamps[lo:hi]
        )
        slide = self.slide
        size = self.size
        # Kept as float64: the floor values are exact small integers, and
        # skipping the int64 casts saves two ufunc dispatches per block.
        last_f = np.floor(segment / slide)
        first_f = np.floor((segment - size) / slide)
        last_closed = self._last_closed_end
        change = (last_f[1:] != last_f[:-1]) | (first_f[1:] != first_f[:-1])
        if not change.any():
            # Whole segment in one pane — the common case for source blocks.
            first = int(first_f[0]) + 1
            last = int(last_f[0])
            if first == last:
                if last * slide + size > last_closed:
                    self._acc(last).add_range(block, lo, hi)
            else:
                # Straddling run (ulp-level rounding): exact per-tuple path.
                self.insert(block.to_tuples(lo, hi))
            return
        bounds = (np.flatnonzero(change) + 1).tolist()
        starts = [0] + bounds
        stops = bounds + [len(segment)]
        first_list = first_f[starts].tolist()
        last_list = last_f[starts].tolist()
        for s, e, first, last in zip(starts, stops, first_list, last_list):
            first = int(first) + 1
            last = int(last)
            if first == last:
                if last * slide + size > last_closed:
                    self._acc(last).add_range(block, lo + s, lo + e)
            else:
                # Straddling run (ulp-level rounding): exact per-tuple path.
                self.insert(block.to_tuples(lo + s, lo + e))

    def advance(self, now: float) -> List[WindowPane]:
        closed: List[WindowPane] = []
        for idx in sorted(self._panes):
            start = idx * self.slide
            end = start + self.size
            if end + self.allowed_lateness <= now:
                acc = self._panes.pop(idx)
                closed.append(acc.close(start=start, end=end, sort_tuples=True))
                self._last_closed_end = max(self._last_closed_end, end)
        return closed

    def pending_count(self) -> int:
        return sum(acc.count for acc in self._panes.values())

    def pending_sic(self) -> float:
        return sum(self._panes[idx].sic for idx in sorted(self._panes))

    def snapshot(self) -> Dict[str, Any]:
        return {
            "kind": "time",
            "size": self.size,
            "slide": self.slide,
            "allowed_lateness": self.allowed_lateness,
            "last_closed_end": self._last_closed_end,
            "panes": [
                [idx, self._panes[idx].to_state()] for idx in sorted(self._panes)
            ],
        }

    def restore(self, state: Dict[str, Any]) -> None:
        self._check_kind(state, "time")
        if (
            state["size"] != self.size
            or state["slide"] != self.slide
            or state["allowed_lateness"] != self.allowed_lateness
        ):
            raise CheckpointError(
                f"time-window checkpoint (size={state['size']}, "
                f"slide={state['slide']}, lateness={state['allowed_lateness']}) "
                f"does not match window (size={self.size}, slide={self.slide}, "
                f"lateness={self.allowed_lateness})"
            )
        self._panes = {
            int(idx): _PaneAcc.from_state(acc) for idx, acc in state["panes"]
        }
        self._last_closed_end = state["last_closed_end"]

    def clear(self) -> None:
        # _last_closed_end survives a clear: panes that already closed must
        # not reopen for late tuples after a crash-restart.
        self._panes = {}


class CountWindow(WindowBuffer):
    """Tumbling count-based window: emits a pane every ``count`` tuples."""

    def __init__(self, count: int) -> None:
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        self.count = int(count)
        self._buffer: List[Tuple] = []

    def insert(self, tuples: Sequence[Tuple]) -> None:
        self._buffer.extend(tuples)

    def advance(self, now: float) -> List[WindowPane]:
        panes: List[WindowPane] = []
        while len(self._buffer) >= self.count:
            chunk = self._buffer[: self.count]
            self._buffer = self._buffer[self.count:]
            start = chunk[0].timestamp
            end = chunk[-1].timestamp
            panes.append(WindowPane(start=start, end=end, tuples=chunk))
        return panes

    def pending_count(self) -> int:
        return len(self._buffer)

    def pending_sic(self) -> float:
        return sum(t.sic for t in self._buffer)

    def snapshot(self) -> Dict[str, Any]:
        return {
            "kind": "count",
            "count": self.count,
            "tuples": [tuple_to_state(t) for t in self._buffer],
        }

    def restore(self, state: Dict[str, Any]) -> None:
        self._check_kind(state, "count")
        if state["count"] != self.count:
            raise CheckpointError(
                f"count-window checkpoint (count={state['count']}) does not "
                f"match window (count={self.count})"
            )
        self._buffer = [tuple_from_state(s) for s in state["tuples"]]

    def clear(self) -> None:
        self._buffer = []
