"""Query graphs and query fragments (§3, "Query graph" / "Query deployment").

A query is a directed acyclic graph of operators.  Certain operators are bound
to data sources; a single root operator emits the result stream.  For
deployment in the federated system the graph is partitioned into *fragments* —
disjoint sets of operators — and every fragment is placed on a different FSPS
node.  Fragments of the same query are connected: the exit operator of an
upstream fragment streams its derived tuples to an entry operator of the
downstream fragment.

:class:`QueryGraph` models the logical query; :class:`QueryFragment` is the
executable unit hosted by a node.  Fragments are self-contained: they route
delivered batches to the right entry operators, advance their operators in
topological order, account for the simulated processing cost, and hand back
batches destined either to a downstream fragment or to the query user.
"""

from __future__ import annotations

import itertools
from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple as PyTuple

from ..core.columns import ColumnBlock
from ..core.tuples import Batch, Tuple
from ..state.checkpoint import CheckpointError
from .fused import compile_fused_plan, fused_execution_active
from .operators.base import Emitted, Operator

__all__ = ["Edge", "QueryGraph", "QueryFragment", "FragmentOutput"]

_fragment_ids = itertools.count()


@dataclass(frozen=True)
class Edge:
    """A directed stream between two operators.

    Attributes:
        source: operator id producing the tuples.
        target: operator id consuming them.
        port: input port of the target operator.
    """

    source: str
    target: str
    port: int = 0


class QueryGraph:
    """The logical DAG of operators of one query."""

    def __init__(self, query_id: str) -> None:
        self.query_id = query_id
        self.operators: Dict[str, Operator] = {}
        self.edges: List[Edge] = []
        self.source_bindings: Dict[str, PyTuple[str, int]] = {}
        self.root_operator_id: Optional[str] = None

    # ---------------------------------------------------------------- building
    def add_operator(self, operator: Operator) -> Operator:
        if operator.operator_id in self.operators:
            raise ValueError(f"operator {operator.operator_id} already in query")
        self.operators[operator.operator_id] = operator
        return operator

    def connect(self, source: Operator, target: Operator, port: int = 0) -> None:
        """Add a stream from ``source`` to ``target`` (input ``port``)."""
        for op in (source, target):
            if op.operator_id not in self.operators:
                raise ValueError(f"operator {op.name!r} is not part of this query")
        self.edges.append(Edge(source.operator_id, target.operator_id, port))

    def bind_source(self, source_id: str, operator: Operator, port: int = 0) -> None:
        """Declare that ``source_id`` feeds ``operator`` directly."""
        if operator.operator_id not in self.operators:
            raise ValueError(f"operator {operator.name!r} is not part of this query")
        if source_id in self.source_bindings:
            raise ValueError(f"source {source_id!r} is already bound")
        self.source_bindings[source_id] = (operator.operator_id, port)

    def set_root(self, operator: Operator) -> None:
        if operator.operator_id not in self.operators:
            raise ValueError(f"operator {operator.name!r} is not part of this query")
        self.root_operator_id = operator.operator_id

    # -------------------------------------------------------------- inspection
    @property
    def num_sources(self) -> int:
        return len(self.source_bindings)

    @property
    def num_operators(self) -> int:
        return len(self.operators)

    def source_ids(self) -> List[str]:
        return list(self.source_bindings)

    def downstream_of(self, operator_id: str) -> List[Edge]:
        return [e for e in self.edges if e.source == operator_id]

    def upstream_of(self, operator_id: str) -> List[Edge]:
        return [e for e in self.edges if e.target == operator_id]

    def topological_order(self) -> List[str]:
        """Kahn topological sort of the operator ids; raises on cycles."""
        indegree: Dict[str, int] = {op_id: 0 for op_id in self.operators}
        adjacency: Dict[str, List[str]] = defaultdict(list)
        for edge in self.edges:
            adjacency[edge.source].append(edge.target)
            indegree[edge.target] += 1
        queue = deque(sorted(op_id for op_id, deg in indegree.items() if deg == 0))
        order: List[str] = []
        while queue:
            op_id = queue.popleft()
            order.append(op_id)
            for succ in adjacency[op_id]:
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    queue.append(succ)
        if len(order) != len(self.operators):
            raise ValueError(f"query {self.query_id!r} contains a cycle")
        return order

    def validate(self) -> None:
        """Check structural well-formedness; raises ``ValueError`` if broken."""
        if not self.operators:
            raise ValueError(f"query {self.query_id!r} has no operators")
        if self.root_operator_id is None:
            raise ValueError(f"query {self.query_id!r} has no root operator")
        if not self.source_bindings:
            raise ValueError(f"query {self.query_id!r} has no sources")
        self.topological_order()
        if self.downstream_of(self.root_operator_id):
            raise ValueError("the root operator must not have downstream operators")

    # ------------------------------------------------------------ partitioning
    def partition(
        self, assignment: Mapping[str, str]
    ) -> Dict[str, "QueryFragment"]:
        """Split the graph into fragments according to ``assignment``.

        Args:
            assignment: maps operator id → fragment name.  All operators must
                be assigned.  Edges between operators in different fragments
                become fragment-to-fragment links.

        Returns:
            Mapping from fragment name to the built :class:`QueryFragment`,
            fully wired (source bindings, upstream bindings, downstream link).
        """
        missing = set(self.operators) - set(assignment)
        if missing:
            raise ValueError(f"operators without fragment assignment: {sorted(missing)}")
        self.validate()

        fragments: Dict[str, QueryFragment] = {}
        for name in dict.fromkeys(assignment.values()):
            fragments[name] = QueryFragment(query_id=self.query_id, name=name)
        for op_id, name in assignment.items():
            fragments[name].add_operator(self.operators[op_id])

        cross_edges: List[Edge] = []
        for edge in self.edges:
            src_frag = assignment[edge.source]
            dst_frag = assignment[edge.target]
            if src_frag == dst_frag:
                fragments[src_frag].add_edge(edge)
            else:
                cross_edges.append(edge)

        for source_id, (op_id, port) in self.source_bindings.items():
            fragments[assignment[op_id]].bind_source(source_id, op_id, port)

        for edge in cross_edges:
            upstream = fragments[assignment[edge.source]]
            downstream = fragments[assignment[edge.target]]
            upstream.set_exit(edge.source)
            upstream.set_downstream(downstream.fragment_id)
            downstream.bind_upstream(upstream.fragment_id, edge.target, edge.port)

        root_fragment = fragments[assignment[self.root_operator_id]]
        root_fragment.set_exit(self.root_operator_id)
        for fragment in fragments.values():
            fragment.finalize()
        return fragments


@dataclass
class FragmentOutput:
    """Result of one fragment processing round.

    Attributes:
        downstream: batches destined to the downstream fragment.
        results: result batches (only produced by the query's root fragment).
        processing_cost: simulated cost incurred by this round.
        processed_tuples: number of tuples ingested by operators this round.
    """

    downstream: List[Batch] = field(default_factory=list)
    results: List[Batch] = field(default_factory=list)
    processing_cost: float = 0.0
    processed_tuples: int = 0


class QueryFragment:
    """An executable partition of a query graph hosted by one FSPS node."""

    def __init__(self, query_id: str, name: Optional[str] = None) -> None:
        self.query_id = query_id
        self.name = name or f"fragment-{next(_fragment_ids)}"
        self.fragment_id = f"{query_id}/{self.name}"
        self.operators: Dict[str, Operator] = {}
        self.internal_edges: List[Edge] = []
        self.source_bindings: Dict[str, PyTuple[str, int]] = {}
        self.upstream_bindings: Dict[str, PyTuple[str, int]] = {}
        self.exit_operator_id: Optional[str] = None
        self.downstream_fragment_id: Optional[str] = None
        self._order: List[str] = []
        self._adjacency: Dict[str, List[PyTuple[str, int]]] = defaultdict(list)
        self._pending_cost = 0.0
        self._pending_tuples = 0
        # Exactly-once output watermark (root fragments only).  ``seq``
        # counts emitted result batches within the current epoch and rolls
        # back with the rest of the state on checkpoint restore, so crash
        # replay re-stamps the original sequence numbers; ``epoch`` bumps
        # only on a *blank* restart (``reset_state``), opening a fresh
        # dedup lane at the coordinator.
        self._output_epoch = 0
        self._output_seq = 0
        # Fused execution plan (compiled lazily on first process() while the
        # numpy backend is active; structural, so compiled once per wiring).
        self._fused_plan_cache: Optional[object] = None
        self._fused_checked = False

    # ---------------------------------------------------------------- building
    def add_operator(self, operator: Operator) -> Operator:
        self.operators[operator.operator_id] = operator
        return operator

    def add_edge(self, edge: Edge) -> None:
        if edge.source not in self.operators or edge.target not in self.operators:
            raise ValueError("both endpoints of an internal edge must be in the fragment")
        self.internal_edges.append(edge)

    def connect(self, source: Operator, target: Operator, port: int = 0) -> None:
        self.add_edge(Edge(source.operator_id, target.operator_id, port))

    def bind_source(self, source_id: str, operator_id: str, port: int = 0) -> None:
        if operator_id not in self.operators:
            raise ValueError(f"operator {operator_id} is not part of fragment {self.name}")
        self.source_bindings[source_id] = (operator_id, port)

    def bind_upstream(
        self, upstream_fragment_id: str, operator_id: str, port: int = 0
    ) -> None:
        if operator_id not in self.operators:
            raise ValueError(f"operator {operator_id} is not part of fragment {self.name}")
        self.upstream_bindings[upstream_fragment_id] = (operator_id, port)

    def set_exit(self, operator_id: str) -> None:
        if operator_id not in self.operators:
            raise ValueError(f"operator {operator_id} is not part of fragment {self.name}")
        self.exit_operator_id = operator_id

    def set_downstream(self, fragment_id: Optional[str]) -> None:
        self.downstream_fragment_id = fragment_id

    def finalize(self) -> None:
        """Precompute the topological order and adjacency; call after wiring."""
        if self.exit_operator_id is None:
            raise ValueError(f"fragment {self.name} has no exit operator")
        indegree = {op_id: 0 for op_id in self.operators}
        adjacency: Dict[str, List[PyTuple[str, int]]] = defaultdict(list)
        for edge in self.internal_edges:
            adjacency[edge.source].append((edge.target, edge.port))
            indegree[edge.target] += 1
        queue = deque(sorted(op_id for op_id, deg in indegree.items() if deg == 0))
        order: List[str] = []
        while queue:
            op_id = queue.popleft()
            order.append(op_id)
            for succ, _ in adjacency[op_id]:
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    queue.append(succ)
        if len(order) != len(self.operators):
            raise ValueError(f"fragment {self.name} contains a cycle")
        self._order = order
        self._adjacency = adjacency
        # Rewiring invalidates any compiled fused plan.
        self._fused_plan_cache = None
        self._fused_checked = False

    # --------------------------------------------------------------- execution
    @property
    def is_root(self) -> bool:
        """True when this fragment emits result tuples to the query user."""
        return self.downstream_fragment_id is None

    @property
    def num_operators(self) -> int:
        return len(self.operators)

    def deliver(self, batch: Batch, origin_fragment_id: Optional[str] = None) -> None:
        """Route an arriving batch's tuples to the right entry operator.

        Source batches (``origin_fragment_id is None``) are routed per source
        binding; inter-fragment batches per upstream binding.  Columnar
        batches route their column block as one unit (source blocks are
        single-source by construction) without materializing tuples.
        """
        view = batch.block_view()
        if origin_fragment_id is not None:
            binding = self.upstream_bindings.get(origin_fragment_id)
            if binding is None:
                raise ValueError(
                    f"fragment {self.fragment_id} has no upstream binding for "
                    f"{origin_fragment_id}"
                )
            op_id, port = binding
            if view is not None:
                self._ingest_view(op_id, view, port)
            else:
                self._ingest(op_id, list(batch.tuples), port)
            return
        if view is not None and view[0].source_id is not None:
            binding = self.source_bindings.get(view[0].source_id)
            if binding is None:
                # Unknown source: ignore (defensive, mirrors the tuple path).
                return
            op_id, port = binding
            self._ingest_view(op_id, view, port)
            return
        # Source batch: group tuples per originating source.
        per_source: Dict[Optional[str], List[Tuple]] = defaultdict(list)
        for t in batch.tuples:
            per_source[t.source_id].append(t)
        for source_id, tuples in per_source.items():
            binding = self.source_bindings.get(source_id or "")
            if binding is None:
                # Unknown source: ignore (defensive; should not happen when the
                # workload wiring is correct).
                continue
            op_id, port = binding
            self._ingest(op_id, tuples, port)

    def process(self, now: float) -> FragmentOutput:
        """Advance all operators to ``now`` and collect outputs.

        When fused execution is active and this fragment compiles to a
        :class:`~repro.streaming.fused.FusedPlan`, the receiver→filters→
        aggregate-ingest prefix runs as one columnar pass and only the
        windowed suffix advances through the staged loop; otherwise (or when
        the plan declines a non-fusible tick) the full staged loop runs.
        """
        if not self._order:
            self.finalize()
        plan = self._fused_plan()
        if plan is not None and plan.run_prefix(self, now):
            return self._advance(plan.suffix_ids, now)
        return self._advance(self._order, now)

    def _fused_plan(self):
        """The fragment's compiled fused plan, or ``None`` (staged only)."""
        if not fused_execution_active():
            return None
        if not self._fused_checked:
            self._fused_plan_cache = compile_fused_plan(self)
            self._fused_checked = True
        return self._fused_plan_cache

    def _advance(self, order: Sequence[str], now: float) -> FragmentOutput:
        """Advance ``order``'s operators in sequence and collect outputs."""
        output = FragmentOutput()
        exit_items: List[Emitted] = []
        for op_id in order:
            operator = self.operators[op_id]
            produced = operator.advance_items(now)
            if not produced:
                continue
            count = 0
            for item in produced:
                count += len(item) if isinstance(item, ColumnBlock) else 1
            if op_id == self.exit_operator_id:
                exit_items.extend(produced)
            for target_id, port in self._adjacency.get(op_id, ()):  # internal routing
                self._route_items(target_id, produced, port, count)
        output.processing_cost = self._pending_cost
        output.processed_tuples = self._pending_tuples
        self._pending_cost = 0.0
        self._pending_tuples = 0
        if exit_items:
            batch = self._exit_batch(exit_items, now)
            if self.is_root:
                output.results.append(batch)
            else:
                output.downstream.append(batch)
        return output

    @property
    def output_watermark(self) -> PyTuple[int, int]:
        """The ``(epoch, seq)`` stamp of the most recently emitted result."""
        return self._output_epoch, self._output_seq

    def pending_tuples(self) -> int:
        """Tuples buffered inside the fragment's operator windows."""
        return sum(op.pending_tuples() for op in self.operators.values())

    def pending_sic(self) -> float:
        """Summed SIC buffered inside the fragment's operator windows."""
        return sum(op.pending_sic() for op in self.operators.values())

    # ---------------------------------------------------- checkpoint/restore
    def snapshot(self) -> Dict[str, object]:
        """Serialise the fragment's executable state (operator windows)."""
        return {
            "fragment_id": self.fragment_id,
            "query_id": self.query_id,
            "operators": {
                op_id: op.snapshot() for op_id, op in self.operators.items()
            },
            "pending_cost": self._pending_cost,
            "pending_tuples": self._pending_tuples,
            "output_watermark": {
                "epoch": self._output_epoch,
                "seq": self._output_seq,
            },
        }

    def restore(self, state: Dict[str, object]) -> None:
        """Rebuild the fragment's state from :meth:`snapshot` output.

        The fragment *structure* (operators, wiring) is the deployment
        plan's responsibility; only state is restored, and the checkpoint
        must name exactly this fragment's operators.
        """
        if (
            state.get("fragment_id") != self.fragment_id
            or state.get("query_id") != self.query_id
        ):
            raise CheckpointError(
                f"fragment checkpoint for {state.get('query_id')}/"
                f"{state.get('fragment_id')} does not match {self.fragment_id}"
            )
        operator_states = state["operators"]
        if set(operator_states) != set(self.operators):
            raise CheckpointError(
                f"fragment {self.fragment_id} checkpoint operators "
                f"{sorted(operator_states)} do not match "
                f"{sorted(self.operators)}"
            )
        for op_id, op_state in operator_states.items():
            self.operators[op_id].restore(op_state)
        self._pending_cost = state["pending_cost"]
        self._pending_tuples = state["pending_tuples"]
        watermark = state.get("output_watermark")
        if watermark is not None:  # pre-watermark checkpoints leave it as-is
            self._output_epoch = int(watermark["epoch"])
            self._output_seq = int(watermark["seq"])

    def reset_state(self) -> None:
        """Discard all buffered operator state (crash loss, no checkpoint)."""
        for operator in self.operators.values():
            operator.reset_state()
        self._pending_cost = 0.0
        self._pending_tuples = 0
        # Blank restart: previously emitted output can never be re-emitted,
        # so open a fresh watermark epoch instead of colliding with the
        # sequence numbers the lost incarnation already used.
        self._output_epoch += 1
        self._output_seq = 0

    # ----------------------------------------------------------------- helpers
    def _ingest(self, operator_id: str, tuples: Sequence[Tuple], port: int) -> None:
        operator = self.operators[operator_id]
        operator.ingest(tuples, port=port)
        self._pending_cost += operator.cost_per_tuple * len(tuples)
        self._pending_tuples += len(tuples)

    def _ingest_block(self, operator_id: str, block: ColumnBlock, port: int) -> None:
        operator = self.operators[operator_id]
        operator.ingest_block(block, port=port)
        self._pending_cost += operator.cost_per_tuple * len(block)
        self._pending_tuples += len(block)

    def _ingest_view(self, operator_id: str, view, port: int) -> None:
        """Ingest a ``(block, lo, hi)`` range without copying columns."""
        block, lo, hi = view
        operator = self.operators[operator_id]
        operator.ingest_block(block, port=port, lo=lo, hi=hi)
        count = hi - lo
        self._pending_cost += operator.cost_per_tuple * count
        self._pending_tuples += count

    def _route_items(
        self, operator_id: str, items: Sequence[Emitted], port: int, count: int
    ) -> None:
        """Feed one producer's outputs to one target operator.

        Consecutive tuples are delivered in single ``ingest`` calls and
        blocks via ``ingest_block``, preserving the producer's emission
        order; the cost-model accounting is updated once with the total tuple
        count — the same granularity (one update per producer→target link)
        as the per-tuple path.
        """
        operator = self.operators[operator_id]
        run: List[Tuple] = []
        for item in items:
            if isinstance(item, ColumnBlock):
                if run:
                    operator.ingest(run, port=port)
                    run = []
                operator.ingest_block(item, port=port)
            else:
                run.append(item)
        if run:
            operator.ingest(run, port=port)
        self._pending_cost += operator.cost_per_tuple * count
        self._pending_tuples += count

    def _exit_batch(self, items: List[Emitted], now: float) -> Batch:
        """Build the exit batch, staying columnar when every item is a block."""
        fragment_id = self.downstream_fragment_id or self.fragment_id
        if all(isinstance(item, ColumnBlock) for item in items):
            block = (
                items[0]
                if len(items) == 1
                else ColumnBlock.concat(items)  # type: ignore[arg-type]
            )
            batch = Batch.from_block(
                self.query_id,
                block,
                created_at=now,
                fragment_id=fragment_id,
                origin_fragment_id=self.fragment_id,
            )
        else:
            tuples: List[Tuple] = []
            for item in items:
                if isinstance(item, ColumnBlock):
                    tuples.extend(item.to_tuples())
                else:
                    tuples.append(item)
            batch = Batch(
                self.query_id,
                tuples,
                created_at=now,
                fragment_id=fragment_id,
                origin_fragment_id=self.fragment_id,
            )
        if self.is_root:
            self._output_seq += 1
            batch.origin_epoch = self._output_epoch
            batch.origin_seq = self._output_seq
        return batch

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QueryFragment(id={self.fragment_id!r}, operators={len(self.operators)}, "
            f"sources={len(self.source_bindings)}, root={self.is_root})"
        )
