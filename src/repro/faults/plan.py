"""Deterministic fault plans.

A :class:`FaultPlan` is a declarative, seeded schedule of adverse conditions
for one simulated run: lossy/jittery/duplicating episodes, network
partitions, slow endpoints, silent node crashes and coordinator crashes, all
anchored at planned *simulated* times.  Plans are plain frozen dataclasses so
they can be embedded in experiment code, compared and reproduced exactly —
the same plan, seed and workload always yields the same run
(:class:`~repro.faults.injector.FaultInjector` owns the only RNG and draws
from it in send order).

Episode semantics:

* :class:`LossEpisode` — every physical transmission inside ``[start, end)``
  whose kind/endpoints match is independently dropped with
  ``drop_probability``, duplicated with ``duplicate_probability`` and
  delayed by up to ``jitter_seconds`` of uniformly-drawn extra latency.
* :class:`PartitionEpisode` — transmissions crossing between ``group_a``
  and ``group_b`` are dropped; an empty ``group_b`` means "the rest of the
  world", i.e. ``group_a`` is fully isolated.
* :class:`SlowEpisode` — transmissions touching ``endpoint`` gain a fixed
  ``extra_latency_seconds`` (an overloaded or far-away site; also the
  recipe for heartbeat false positives when it exceeds the detector
  timeout).
* :class:`NodeCrash` — the node's process dies silently at ``at``
  (:meth:`EventRuntime.crash_node_silently`); with ``repair_after`` set the
  machine reboots that many seconds later and the failure detector rejoins
  it from checkpoints.
* :class:`CoordinatorCrash` — the query's coordinator fails at ``at`` and a
  standby is promoted (:meth:`EventRuntime.fail_coordinator`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = [
    "LossEpisode",
    "PartitionEpisode",
    "SlowEpisode",
    "NodeCrash",
    "CoordinatorCrash",
    "FaultPlan",
]


def _check_window(name: str, start: float, end: float) -> None:
    if start < 0:
        raise ValueError(f"{name}.start must be non-negative, got {start}")
    if end <= start:
        raise ValueError(f"{name} must end after it starts, got [{start}, {end})")


def _check_probability(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")


@dataclass(frozen=True)
class LossEpisode:
    """A window of probabilistic loss, duplication and delay jitter."""

    start: float
    end: float
    drop_probability: float = 0.0
    duplicate_probability: float = 0.0
    jitter_seconds: float = 0.0
    #: restrict to these message kinds (e.g. ``("data", "result")``);
    #: ``None`` affects every kind, heartbeats and acks included.
    message_types: Optional[Tuple[str, ...]] = None
    #: restrict to transmissions touching one of these endpoints; ``None``
    #: affects every link.
    endpoints: Optional[Tuple[str, ...]] = None

    def validate(self) -> None:
        _check_window("LossEpisode", self.start, self.end)
        _check_probability("drop_probability", self.drop_probability)
        _check_probability("duplicate_probability", self.duplicate_probability)
        if self.jitter_seconds < 0:
            raise ValueError(
                f"jitter_seconds must be non-negative, got {self.jitter_seconds}"
            )

    def active(self, now: float) -> bool:
        return self.start <= now < self.end

    def matches(self, kind: str, source: str, destination: str) -> bool:
        if self.message_types is not None and kind not in self.message_types:
            return False
        if self.endpoints is not None:
            if source not in self.endpoints and destination not in self.endpoints:
                return False
        return True


@dataclass(frozen=True)
class PartitionEpisode:
    """A window during which two endpoint groups cannot reach each other."""

    start: float
    end: float
    group_a: Tuple[str, ...]
    #: empty tuple = everything not in ``group_a`` (full site isolation).
    group_b: Tuple[str, ...] = ()

    def validate(self) -> None:
        _check_window("PartitionEpisode", self.start, self.end)
        if not self.group_a:
            raise ValueError("PartitionEpisode.group_a must not be empty")
        overlap = set(self.group_a) & set(self.group_b)
        if overlap:
            raise ValueError(
                f"PartitionEpisode groups overlap on {sorted(overlap)}"
            )

    def active(self, now: float) -> bool:
        return self.start <= now < self.end

    def severs(self, source: str, destination: str) -> bool:
        in_a = source in self.group_a
        out_a = destination in self.group_a
        if not self.group_b:
            return in_a != out_a
        in_b = source in self.group_b
        out_b = destination in self.group_b
        return (in_a and out_b) or (in_b and out_a)


@dataclass(frozen=True)
class SlowEpisode:
    """A window during which one endpoint's links gain fixed extra latency."""

    start: float
    end: float
    endpoint: str
    extra_latency_seconds: float

    def validate(self) -> None:
        _check_window("SlowEpisode", self.start, self.end)
        if not self.endpoint:
            raise ValueError("SlowEpisode.endpoint must not be empty")
        if self.extra_latency_seconds <= 0:
            raise ValueError(
                "SlowEpisode.extra_latency_seconds must be positive, got "
                f"{self.extra_latency_seconds}"
            )

    def active(self, now: float) -> bool:
        return self.start <= now < self.end

    def touches(self, source: str, destination: str) -> bool:
        return self.endpoint in (source, destination)


@dataclass(frozen=True)
class NodeCrash:
    """A silent node crash at ``at``; optionally repaired later."""

    at: float
    node_id: str
    #: seconds after the crash at which the machine reboots; ``None`` keeps
    #: it down for the rest of the run.
    repair_after: Optional[float] = None

    def validate(self) -> None:
        if self.at < 0:
            raise ValueError(f"NodeCrash.at must be non-negative, got {self.at}")
        if not self.node_id:
            raise ValueError("NodeCrash.node_id must not be empty")
        if self.repair_after is not None and self.repair_after <= 0:
            raise ValueError(
                f"NodeCrash.repair_after must be positive, got {self.repair_after}"
            )


@dataclass(frozen=True)
class CoordinatorCrash:
    """A coordinator crash at ``at``; a standby is promoted immediately."""

    at: float
    query_id: str

    def validate(self) -> None:
        if self.at < 0:
            raise ValueError(
                f"CoordinatorCrash.at must be non-negative, got {self.at}"
            )
        if not self.query_id:
            raise ValueError("CoordinatorCrash.query_id must not be empty")


#: episode types a plan may contain
_EPISODE_TYPES = (
    LossEpisode,
    PartitionEpisode,
    SlowEpisode,
    NodeCrash,
    CoordinatorCrash,
)


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, validated schedule of fault episodes.

    An empty plan is valid and injects nothing — the differential tests rely
    on an installed-but-empty plan leaving seeded runs bit-exact.
    """

    seed: int = 0
    episodes: Tuple[object, ...] = ()

    def __post_init__(self) -> None:
        # Accept any sequence for convenience; store a tuple (frozen).
        object.__setattr__(self, "episodes", tuple(self.episodes))
        self.validate()

    def validate(self) -> None:
        for episode in self.episodes:
            if not isinstance(episode, _EPISODE_TYPES):
                raise TypeError(
                    f"unsupported episode type {type(episode).__name__!r}"
                )
            episode.validate()

    # Typed views, in plan order.
    @property
    def loss_episodes(self) -> Tuple[LossEpisode, ...]:
        return tuple(e for e in self.episodes if isinstance(e, LossEpisode))

    @property
    def partitions(self) -> Tuple[PartitionEpisode, ...]:
        return tuple(e for e in self.episodes if isinstance(e, PartitionEpisode))

    @property
    def slow_episodes(self) -> Tuple[SlowEpisode, ...]:
        return tuple(e for e in self.episodes if isinstance(e, SlowEpisode))

    @property
    def node_crashes(self) -> Tuple[NodeCrash, ...]:
        return tuple(e for e in self.episodes if isinstance(e, NodeCrash))

    @property
    def coordinator_crashes(self) -> Tuple[CoordinatorCrash, ...]:
        return tuple(e for e in self.episodes if isinstance(e, CoordinatorCrash))
