"""Seeded fault injection scheduled through the event runtime.

The :class:`FaultInjector` installs a :class:`~repro.faults.plan.FaultPlan`
onto a federation driven by an :class:`~repro.runtime.EventRuntime`:

* message-level episodes (loss, duplication, jitter, partitions, slow
  endpoints) become the network's ``fault_policy`` — evaluated per physical
  transmission at send time, with every probabilistic decision drawn from a
  **per-link** child RNG seeded by a stable hash of
  ``(plan.seed, source, destination)``, so a given plan + workload + seed
  reproduces the exact same faults *per link*.  Per-link streams (rather
  than one global RNG consumed in send order) make the fault schedule
  depend only on each link's own transmission sequence — which every
  runtime preserves (per-link FIFO is the sharded runtime's merge
  invariant) — not on how sends across different links happen to
  interleave, so the same seed injects the same faults under the event
  and sharded drivers alike.  The child seed comes from SHA-256, not the
  builtin ``hash()``: the builtin is salted per process
  (``PYTHONHASHSEED``), which would break cross-process reproducibility;
* crash episodes become :data:`~repro.runtime.scheduler.PRIORITY_FAULT`
  events on the runtime's scheduler — node crashes go through
  :meth:`EventRuntime.crash_node_silently` (detection and recovery are the
  failure detector's job), coordinator crashes through
  :meth:`EventRuntime.fail_coordinator` (standby promotion is immediate).

The injector keeps cause-level accounting (`drops_by_cause`, duplicate and
jitter counts, a timeline of crash/repair events) that the chaos experiment
folds into its report; the network's own :class:`NetworkStats` only knows
*that* a transmission was dropped, not why.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, Tuple

from ..core.bounded import BoundedLog
from ..federation.network import Message
from ..runtime.runtime import EventRuntime
from ..runtime.scheduler import PRIORITY_FAULT
from .plan import FaultPlan, NodeCrash

__all__ = ["FaultInjector", "link_seed"]


def link_seed(seed: int, source: str, destination: str) -> int:
    """Stable 64-bit child seed for one directed link's fault RNG.

    Derived via SHA-256 over a ``seed:source:destination`` encoding —
    deterministic across processes and Python versions, unlike the builtin
    ``hash()`` (salted by ``PYTHONHASHSEED``) which must never be used for
    reproducible seeding.
    """
    digest = hashlib.sha256(
        f"{seed}:{source}:{destination}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big")


class FaultInjector:
    """Installs a fault plan onto an event-runtime-driven federation."""

    def __init__(
        self,
        runtime: EventRuntime,
        plan: FaultPlan,
        max_timeline_events: int = 256,
    ) -> None:
        plan.validate()
        self.runtime = runtime
        self.system = runtime.system
        self.plan = plan
        # One child RNG per directed link, created on first use; see the
        # module docstring for the reproducibility contract.
        self._link_rngs: Dict[Tuple[str, str], random.Random] = {}
        # Cause-level accounting; the network's stats stay cause-agnostic.
        self.drops_by_cause: Dict[str, int] = {"loss": 0, "partition": 0}
        self.duplicated = 0
        self.jittered = 0
        #: (simulated time, human-readable event) timeline of crash/repair.
        #: Bounded so soak runs with thousands of cycles keep flat memory;
        #: ``timeline.dropped`` counts evicted entries.
        self.timeline: BoundedLog = BoundedLog(maxlen=max_timeline_events)
        network = self.system.network
        if network.fault_policy is not None:
            raise ValueError("the network already has a fault policy installed")
        network.fault_policy = self._policy
        self._events = []
        for crash in plan.node_crashes:
            self._events.append(
                runtime.scheduler.schedule(
                    crash.at, PRIORITY_FAULT, self._make_node_crash(crash)
                )
            )
        for crash in plan.coordinator_crashes:
            self._events.append(
                runtime.scheduler.schedule(
                    crash.at, PRIORITY_FAULT, self._make_coordinator_crash(crash)
                )
            )

    # ----------------------------------------------------------- message faults
    def _policy(
        self,
        message: Message,
        source: str,
        destination: str,
        sent_at: float,
        latency: float,
    ) -> Tuple[float, ...]:
        """Decide the delivery times of one physical transmission.

        Returns an empty tuple to drop it, several entries to duplicate it.
        Partitions are checked first (a severed link loses everything,
        deterministically, without consuming randomness); probabilistic
        episodes then draw from the link's child RNG in a fixed order per
        episode — the draw sequence depends only on this link's own
        transmission order.
        """
        for episode in self.plan.partitions:
            if episode.active(sent_at) and episode.severs(source, destination):
                self.drops_by_cause["partition"] += 1
                return ()
        extra = 0.0
        for episode in self.plan.slow_episodes:
            if episode.active(sent_at) and episode.touches(source, destination):
                extra += episode.extra_latency_seconds
        times = [sent_at + latency + extra]
        rng = None
        for episode in self.plan.loss_episodes:
            if not episode.active(sent_at):
                continue
            if not episode.matches(message.kind, source, destination):
                continue
            if rng is None:
                link = (source, destination)
                rng = self._link_rngs.get(link)
                if rng is None:
                    rng = self._link_rngs[link] = random.Random(
                        link_seed(self.plan.seed, source, destination)
                    )
            if episode.drop_probability and rng.random() < episode.drop_probability:
                self.drops_by_cause["loss"] += 1
                return ()
            if (
                episode.duplicate_probability
                and rng.random() < episode.duplicate_probability
            ):
                times.append(times[0])
                self.duplicated += 1
            if episode.jitter_seconds:
                times = [t + rng.random() * episode.jitter_seconds for t in times]
                self.jittered += len(times)
        return tuple(times)

    # ------------------------------------------------------------ crash episodes
    def _make_node_crash(self, crash: NodeCrash):
        def fire(now: float) -> None:
            if crash.node_id not in self.system.nodes:
                self.timeline.append(
                    (now, f"crash {crash.node_id}: node absent, skipped")
                )
                return
            self.runtime.crash_node_silently(crash.node_id)
            self.timeline.append((now, f"crash {crash.node_id}"))
            if crash.repair_after is not None:
                self._events.append(
                    self.runtime.scheduler.schedule(
                        now + crash.repair_after,
                        PRIORITY_FAULT,
                        lambda at: self._repair(crash.node_id, at),
                    )
                )

        return fire

    def _repair(self, node_id: str, now: float) -> None:
        self.runtime.repair_node(node_id)
        self.timeline.append((now, f"repair {node_id}"))

    def _make_coordinator_crash(self, crash):
        def fire(now: float) -> None:
            if crash.query_id not in self.system.queries:
                self.timeline.append(
                    (now, f"fail coordinator {crash.query_id}: query absent, skipped")
                )
                return
            self.runtime.fail_coordinator(crash.query_id)
            self.timeline.append((now, f"fail coordinator {crash.query_id}"))

        return fire

    # ------------------------------------------------------------------ summary
    def summary(self) -> Dict[str, object]:
        return {
            "drops_by_cause": dict(self.drops_by_cause),
            "duplicated": self.duplicated,
            "jittered": self.jittered,
            "timeline": list(self.timeline),
            "timeline_dropped": self.timeline.dropped,
        }

    def close(self) -> None:
        """Uninstall the policy and cancel not-yet-fired crash events."""
        if self.system.network.fault_policy is self._policy:
            self.system.network.fault_policy = None
        for event in self._events:
            event.cancel()
