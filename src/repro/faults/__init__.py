"""Deterministic fault injection for the federated simulation.

Declarative, seeded :class:`FaultPlan` schedules (message loss, duplication,
delay jitter, partitions, slow endpoints, node and coordinator crashes)
installed onto an event-runtime-driven federation by a
:class:`FaultInjector`.  Same plan + seed + workload ⇒ same faults, so every
chaos scenario is replayable; an empty plan injects nothing and leaves
seeded runs bit-exact.
"""

from .injector import FaultInjector, link_seed
from .plan import (
    CoordinatorCrash,
    FaultPlan,
    LossEpisode,
    NodeCrash,
    PartitionEpisode,
    SlowEpisode,
)

__all__ = [
    "FaultPlan",
    "FaultInjector",
    "LossEpisode",
    "PartitionEpisode",
    "SlowEpisode",
    "NodeCrash",
    "CoordinatorCrash",
    "link_seed",
]
