"""Workloads: datasets, sources, Table-1 queries and population generators."""

from .aggregate import (
    AGGREGATE_KINDS,
    AVG_STATEMENT,
    COUNT_STATEMENT,
    MAX_STATEMENT,
    make_aggregate_query,
    make_avg_query,
    make_count_query,
    make_max_query,
)
from .complex import (
    COMPLEX_KINDS,
    make_avg_all_query,
    make_complex_query,
    make_cov_query,
    make_top5_query,
)
from .datasets import (
    DATASET_NAMES,
    ExponentialValues,
    GaussianValues,
    MixedValues,
    PlanetLabLikeValues,
    UniformValues,
    ValueDistribution,
    make_dataset,
)
from .generators import (
    WorkloadSpec,
    compute_node_budgets,
    estimate_source_path_cost,
    generate_complex_workload,
    offered_cost_per_node,
)
from .sources import BurstySource, CpuSource, MemorySource, StreamSource, ValueSource
from .spec import WorkloadQuery

__all__ = [
    "AGGREGATE_KINDS",
    "AVG_STATEMENT",
    "COUNT_STATEMENT",
    "MAX_STATEMENT",
    "make_aggregate_query",
    "make_avg_query",
    "make_count_query",
    "make_max_query",
    "COMPLEX_KINDS",
    "make_avg_all_query",
    "make_complex_query",
    "make_cov_query",
    "make_top5_query",
    "DATASET_NAMES",
    "ExponentialValues",
    "GaussianValues",
    "MixedValues",
    "PlanetLabLikeValues",
    "UniformValues",
    "ValueDistribution",
    "make_dataset",
    "WorkloadSpec",
    "compute_node_budgets",
    "estimate_source_path_cost",
    "generate_complex_workload",
    "offered_cost_per_node",
    "BurstySource",
    "CpuSource",
    "MemorySource",
    "StreamSource",
    "ValueSource",
    "WorkloadQuery",
]
