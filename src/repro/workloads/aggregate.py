"""The aggregate workload (Table 1, top half).

Three single-source, single-fragment queries expressed in the CQL-like syntax
of the paper and compiled through :mod:`repro.streaming.cql`:

* ``AVG``   — average value of tuples every second.
* ``MAX``   — maximum value of tuples every second.
* ``COUNT`` — number of tuples with values ≥ 50 every second.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional

from ..streaming.cql import compile_query
from ..streaming.query import QueryFragment, QueryGraph
from .sources import ValueSource
from .spec import WorkloadQuery

__all__ = [
    "AVG_STATEMENT",
    "MAX_STATEMENT",
    "COUNT_STATEMENT",
    "make_aggregate_query",
    "make_avg_query",
    "make_max_query",
    "make_count_query",
    "AGGREGATE_KINDS",
]

AVG_STATEMENT = "Select Avg(t.v) From Src[Range 1 sec]"
MAX_STATEMENT = "Select Max(t.v) From Src[Range 1 sec]"
COUNT_STATEMENT = "Select Count(t.v) From Src[Range 1 sec] Having t.v >= 50"

AGGREGATE_KINDS = ("avg", "max", "count")

_STATEMENTS = {
    "avg": AVG_STATEMENT,
    "max": MAX_STATEMENT,
    "count": COUNT_STATEMENT,
}

_query_counter = itertools.count()


def _single_fragment(graph: QueryGraph, name: str = "f0") -> Dict[str, QueryFragment]:
    """Wrap a whole query graph into one fragment."""
    assignment = {op_id: name for op_id in graph.operators}
    fragments = graph.partition(assignment)
    return {fragment.fragment_id: fragment for fragment in fragments.values()}


def make_aggregate_query(
    kind: str,
    query_id: Optional[str] = None,
    rate: float = 400.0,
    dataset: str = "gaussian",
    seed: Optional[int] = 0,
) -> WorkloadQuery:
    """Build one aggregate-workload query.

    Args:
        kind: ``"avg"``, ``"max"`` or ``"count"``.
        query_id: optional identifier; generated when omitted.
        rate: source rate in tuples/second (400 t/s in the local test-bed).
        dataset: value distribution name (gaussian, uniform, exponential,
            mixed, planetlab).
        seed: RNG seed for the data source.
    """
    normalized = kind.strip().lower()
    if normalized not in _STATEMENTS:
        raise ValueError(
            f"unknown aggregate query kind {kind!r}; expected one of {AGGREGATE_KINDS}"
        )
    if query_id is None:
        query_id = f"{normalized}-{next(_query_counter)}"
    source_id = f"{query_id}/src"
    graph = compile_query(
        _STATEMENTS[normalized], query_id=query_id, sources={"Src": [source_id]}
    )
    fragments = _single_fragment(graph)
    source = ValueSource(source_id, rate=rate, dataset=dataset, seed=seed)
    return WorkloadQuery(
        query_id=query_id,
        kind=normalized,
        fragments=fragments,
        sources=[source],
    )


def make_avg_query(**kwargs) -> WorkloadQuery:
    """``Select Avg(t.v) From Src[Range 1 sec]``."""
    return make_aggregate_query("avg", **kwargs)


def make_max_query(**kwargs) -> WorkloadQuery:
    """``Select Max(t.v) From Src[Range 1 sec]``."""
    return make_aggregate_query("max", **kwargs)


def make_count_query(**kwargs) -> WorkloadQuery:
    """``Select Count(t.v) From Src[Range 1 sec] Having t.v >= 50``."""
    return make_aggregate_query("count", **kwargs)
