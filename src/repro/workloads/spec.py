"""Workload query specification.

A :class:`WorkloadQuery` bundles everything needed to deploy one query on the
federated system: its fragments, its sources and the nominal rates used to
seed the SIC assigner.  Workload builders (:mod:`repro.workloads.aggregate`,
:mod:`repro.workloads.complex`) return these objects and the experiment
harness hands them to :meth:`repro.federation.FederatedSystem.deploy_query`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..streaming.query import QueryFragment

__all__ = ["WorkloadQuery"]


@dataclass
class WorkloadQuery:
    """A query ready for deployment.

    Attributes:
        query_id: unique query identifier.
        kind: workload family (``"avg"``, ``"max"``, ``"count"``,
            ``"avg-all"``, ``"top5"``, ``"cov"``).
        fragments: fragment id → fragment, in upstream-to-downstream order.
        sources: source objects feeding the query.
        fragment_order: fragment ids ordered from the leaves towards the root;
            used by placements that want to co-locate or spread chains.
    """

    query_id: str
    kind: str
    fragments: Dict[str, QueryFragment]
    sources: List[object]
    fragment_order: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.fragments:
            raise ValueError(f"query {self.query_id!r} has no fragments")
        if not self.sources:
            raise ValueError(f"query {self.query_id!r} has no sources")
        if not self.fragment_order:
            self.fragment_order = list(self.fragments)

    @property
    def num_fragments(self) -> int:
        return len(self.fragments)

    @property
    def num_sources(self) -> int:
        return len(self.sources)

    @property
    def root_fragment(self) -> QueryFragment:
        roots = [f for f in self.fragments.values() if f.is_root]
        if len(roots) != 1:
            raise ValueError(
                f"query {self.query_id!r} must have exactly one root fragment, "
                f"found {len(roots)}"
            )
        return roots[0]

    def nominal_rates(self) -> Dict[str, float]:
        """Source id → nominal tuples/second, for SIC-assigner seeding."""
        rates: Dict[str, float] = {}
        for source in self.sources:
            rate = getattr(source, "rate", None)
            if rate:
                rates[getattr(source, "source_id")] = float(rate)
        return rates

    def fragment_list(self) -> List[QueryFragment]:
        return [self.fragments[name] for name in self.fragment_order]
