"""Value distributions for the evaluation datasets (§7, "Experimental set-up").

The paper's queries process either synthetic data — gaussian, uniform or
exponential with a mean of 50, plus a *mixed* dataset that randomly draws from
any of the three — or a real-world dataset of CPU and memory utilisation
measurements from PlanetLab nodes (the CoTop traces).

The PlanetLab traces are not redistributable, so this module provides a
*PlanetLab-like* synthetic generator with the properties that matter for the
SIC-correlation experiment: non-stationary, heavy-tailed CPU utilisation in
``[0, 100]`` with temporal correlation and occasional load-level shifts, and a
correlated free-memory series.  See DESIGN.md ("Substitutions").
"""

from __future__ import annotations

import random
from typing import List, Optional

try:  # Guarded: the list columnar backend works without NumPy.
    import numpy as np
except ImportError:  # pragma: no cover - exercised only on stripped installs
    np = None

__all__ = [
    "ValueDistribution",
    "GaussianValues",
    "UniformValues",
    "ExponentialValues",
    "MixedValues",
    "PlanetLabLikeValues",
    "make_dataset",
    "DATASET_NAMES",
]

DATASET_NAMES = ("gaussian", "uniform", "exponential", "mixed", "planetlab")


class ValueDistribution:
    """Interface of scalar value generators."""

    name = "abstract"

    def __init__(self, seed: Optional[int] = 0) -> None:
        self.rng = random.Random(seed)

    def sample(self) -> float:
        raise NotImplementedError

    def sample_many(self, count: int) -> List[float]:
        """Draw ``count`` samples in one call.

        Always draws the exact same RNG stream as ``count`` successive
        :meth:`sample` calls — subclasses may only override this with
        implementations that keep that equivalence (the columnar generation
        fast path relies on it being byte-for-byte reproducible against the
        per-tuple path).  The default binds the method once and loops.
        """
        sample = self.sample
        return [sample() for _ in range(count)]


class GaussianValues(ValueDistribution):
    """Gaussian values with mean 50 (clipped at zero)."""

    name = "gaussian"

    def __init__(self, mean: float = 50.0, std: float = 10.0, seed: Optional[int] = 0):
        super().__init__(seed)
        self.mean = float(mean)
        self.std = float(std)

    def sample(self) -> float:
        return max(0.0, self.rng.gauss(self.mean, self.std))

    def sample_many(self, count: int) -> List[float]:
        # Same draws as `count` sample() calls with the per-call dispatch
        # hoisted out of the loop.
        gauss = self.rng.gauss
        mean = self.mean
        std = self.std
        return [max(0.0, gauss(mean, std)) for _ in range(count)]


class UniformValues(ValueDistribution):
    """Uniform values with mean 50 (range [0, 100] by default)."""

    name = "uniform"

    def __init__(self, low: float = 0.0, high: float = 100.0, seed: Optional[int] = 0):
        super().__init__(seed)
        if high <= low:
            raise ValueError(f"high must exceed low, got [{low}, {high}]")
        self.low = float(low)
        self.high = float(high)
        # Vectorized draw state (sample_array): a persistent NumPy
        # RandomState seeded by transplanting self.rng's Mersenne-Twister
        # state.  While `_rs_live` the RandomState *is* the stream; any
        # scalar draw syncs the state back into self.rng first, so mixing
        # sample()/sample_many()/sample_array() keeps one exact stream.
        self._rs = None
        self._rs_live = False

    def _sync_scalar(self) -> None:
        """Fold the vectorized generator's state back into ``self.rng``."""
        state = self._rs.get_state()
        # RandomState and random.Random share the MT19937 core: 624 uint32
        # key words plus a position index round-trip losslessly.
        self.rng.setstate((3, tuple(state[1].tolist()) + (int(state[2]),), None))
        self._rs_live = False

    def sample(self) -> float:
        if self._rs_live:
            self._sync_scalar()
        return self.rng.uniform(self.low, self.high)

    def sample_many(self, count: int) -> List[float]:
        # random.uniform(a, b) is exactly `a + (b - a) * random()`; inlining
        # it with the width hoisted draws the identical stream ~2x faster.
        if self._rs_live:
            self._sync_scalar()
        random = self.rng.random
        low = self.low
        width = self.high - self.low
        return [low + width * random() for _ in range(count)]

    def sample_array(self, count: int):
        """``count`` draws as a float64 array, continuing the same stream.

        Bit-exact against :meth:`sample_many`: ``random_sample`` produces
        the identical 53-bit doubles the Mersenne Twister gives
        ``random.random()``, and the affine transform matches the inlined
        ``low + width * random()`` arithmetic.  Returns ``None`` without
        consuming any draws when NumPy is unavailable.
        """
        if np is None:
            return None
        rs = self._rs
        if not self._rs_live:
            state = self.rng.getstate()
            if rs is None:
                rs = self._rs = np.random.RandomState()
            rs.set_state(
                ("MT19937", np.asarray(state[1][:624], dtype=np.uint32), state[1][624])
            )
            self._rs_live = True
        column = (self.high - self.low) * rs.random_sample(count)
        if self.low == 0.0:
            # `0.0 + x` is bit-identical to `x` for every non-negative x the
            # scaled draw can produce; skip the add (and its temp array).
            return column
        return self.low + column


class ExponentialValues(ValueDistribution):
    """Exponential values with mean 50."""

    name = "exponential"

    def __init__(self, mean: float = 50.0, seed: Optional[int] = 0):
        super().__init__(seed)
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean}")
        self.mean = float(mean)

    def sample(self) -> float:
        return self.rng.expovariate(1.0 / self.mean)

    def sample_many(self, count: int) -> List[float]:
        expovariate = self.rng.expovariate
        lambd = 1.0 / self.mean
        return [expovariate(lambd) for _ in range(count)]


class MixedValues(ValueDistribution):
    """Each sample is drawn from a randomly chosen synthetic distribution."""

    name = "mixed"

    def __init__(self, seed: Optional[int] = 0):
        super().__init__(seed)
        self._components: List[ValueDistribution] = [
            GaussianValues(seed=self.rng.randrange(1 << 30)),
            UniformValues(seed=self.rng.randrange(1 << 30)),
            ExponentialValues(seed=self.rng.randrange(1 << 30)),
        ]

    def sample(self) -> float:
        return self.rng.choice(self._components).sample()

    def sample_many(self, count: int) -> List[float]:
        choice = self.rng.choice
        components = self._components
        return [choice(components).sample() for _ in range(count)]


class PlanetLabLikeValues(ValueDistribution):
    """Synthetic stand-in for the PlanetLab CoTop utilisation traces.

    CPU utilisation follows an AR(1) process around a load level that jumps
    occasionally (machines switching between idle and busy regimes), clipped
    to ``[0, 100]``; bursts push the value towards saturation.  The generator
    is deliberately non-stationary and skewed so that dropping samples changes
    aggregates noticeably — the property that distinguishes the real-world
    dataset from the stationary synthetic ones in Figures 6 and 7.
    """

    name = "planetlab"

    def __init__(
        self,
        seed: Optional[int] = 0,
        level_shift_probability: float = 0.02,
        burst_probability: float = 0.05,
        correlation: float = 0.9,
    ):
        super().__init__(seed)
        self.level_shift_probability = float(level_shift_probability)
        self.burst_probability = float(burst_probability)
        self.correlation = float(correlation)
        self._level = self.rng.uniform(5.0, 60.0)
        self._value = self._level

    def sample(self) -> float:
        if self.rng.random() < self.level_shift_probability:
            # Regime change: jump to a new utilisation level, biased low
            # (most PlanetLab nodes idle most of the time).
            self._level = min(100.0, self.rng.expovariate(1.0 / 25.0))
        noise = self.rng.gauss(0.0, 5.0)
        self._value = (
            self.correlation * self._value
            + (1.0 - self.correlation) * self._level
            + noise
        )
        if self.rng.random() < self.burst_probability:
            self._value = self.rng.uniform(80.0, 100.0)
        self._value = min(100.0, max(0.0, self._value))
        return self._value

    def memory_free_kb(self, cpu_value: float) -> float:
        """A correlated free-memory figure (KB): busier nodes have less free memory."""
        base = 2_000_000.0 * (1.0 - 0.6 * cpu_value / 100.0)
        return max(10_000.0, base + self.rng.gauss(0.0, 100_000.0))


def make_dataset(name: str, seed: Optional[int] = 0) -> ValueDistribution:
    """Factory for the datasets used throughout the evaluation."""
    normalized = name.strip().lower()
    if normalized == "gaussian":
        return GaussianValues(seed=seed)
    if normalized == "uniform":
        return UniformValues(seed=seed)
    if normalized == "exponential":
        return ExponentialValues(seed=seed)
    if normalized == "mixed":
        return MixedValues(seed=seed)
    if normalized in ("planetlab", "planetlab-like", "cotop"):
        return PlanetLabLikeValues(seed=seed)
    raise ValueError(f"unknown dataset {name!r}; expected one of {DATASET_NAMES}")
