"""The complex workload (Table 1, bottom half).

Three data-centre monitoring queries deployed as multi-fragment queries:

* ``AVG-all`` — average CPU usage over all monitored machines, deployed as a
  *tree*: every fragment aggregates its own sources into partial averages and
  the root fragment merges the partials into the final average.
* ``TOP-5`` — the five machines with the largest CPU value among machines with
  enough free memory, deployed as a *chain*: every fragment joins its local
  CPU/memory sources, ranks its local candidates and merges them with the
  candidates arriving from the upstream fragment.
* ``COV`` — covariance of the CPU usage of two machines, deployed as a chain
  of fragments exchanging mergeable partial covariance statistics.

The number of fragments, sources per fragment and source rates are
parameters; the paper's values (10 sources per AVG-all fragment, 20 per TOP-5
fragment, 2 per COV fragment) are the defaults, but the simulation-scale
experiments typically use smaller numbers to keep runs laptop-sized (see
EXPERIMENTS.md).
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple as PyTuple

from ..streaming.operators import (
    AverageMerge,
    Covariance,
    CovarianceMerge,
    Filter,
    OutputOperator,
    PartialAverage,
    SourceReceiver,
    TopK,
    TopKMerge,
    Union,
)
from ..streaming.query import QueryFragment
from .sources import BurstySource, CpuSource, MemorySource, StreamSource, ValueSource
from .spec import WorkloadQuery

__all__ = [
    "make_avg_all_query",
    "make_top5_query",
    "make_cov_query",
    "make_complex_query",
    "COMPLEX_KINDS",
]

COMPLEX_KINDS = ("avg-all", "top5", "cov")

_query_counter = itertools.count()


def _next_query_id(prefix: str) -> str:
    return f"{prefix}-{next(_query_counter)}"


def _maybe_bursty(
    source: StreamSource, bursty: bool, seed: int
) -> object:
    if not bursty:
        return source
    return BurstySource(source, seed=seed)


# --------------------------------------------------------------------- AVG-all
def make_avg_all_query(
    query_id: Optional[str] = None,
    num_fragments: int = 3,
    sources_per_fragment: int = 10,
    rate: float = 150.0,
    dataset: str = "gaussian",
    window_seconds: float = 1.0,
    seed: int = 0,
    bursty: bool = False,
) -> WorkloadQuery:
    """Build an ``AVG-all`` query deployed as a tree of fragments."""
    if num_fragments < 1:
        raise ValueError(f"num_fragments must be >= 1, got {num_fragments}")
    if sources_per_fragment < 1:
        raise ValueError(
            f"sources_per_fragment must be >= 1, got {sources_per_fragment}"
        )
    query_id = query_id or _next_query_id("avg-all")
    sources: List[object] = []
    fragments: Dict[str, QueryFragment] = {}
    order: List[str] = []

    leaf_names = [f"leaf{i}" for i in range(num_fragments - 1)]
    root_name = "root"

    def build_local_chain(
        fragment: QueryFragment, fragment_index: int
    ) -> PyTuple[List[SourceReceiver], PartialAverage]:
        """Receivers → union → partial average, shared by leaves and root."""
        receivers = []
        for s in range(sources_per_fragment):
            source_id = f"{query_id}/{fragment.name}/src{s}"
            source = ValueSource(
                source_id,
                rate=rate,
                dataset=dataset,
                seed=seed * 100_003 + fragment_index * 1_009 + s,
            )
            sources.append(_maybe_bursty(source, bursty, seed + s))
            receiver = fragment.add_operator(SourceReceiver(source_id))
            fragment.bind_source(source_id, receiver.operator_id)
            receivers.append(receiver)
        union = fragment.add_operator(Union(num_ports=len(receivers)))
        for port, receiver in enumerate(receivers):
            fragment.connect(receiver, union, port=port)
        partial = fragment.add_operator(
            PartialAverage(field="v", window_seconds=window_seconds)
        )
        fragment.connect(union, partial)
        return receivers, partial

    # Root fragment: local partial + merge of every leaf's partial + output.
    root = QueryFragment(query_id, name=root_name)
    _, root_partial = build_local_chain(root, num_fragments - 1)
    merge_ports = max(1, num_fragments)
    merge = root.add_operator(
        AverageMerge(num_ports=merge_ports, window_seconds=window_seconds)
    )
    root.connect(root_partial, merge, port=0)
    output = root.add_operator(OutputOperator())
    root.connect(merge, output)
    root.set_exit(output.operator_id)
    root.set_downstream(None)

    # Leaf fragments stream their partials to the root.
    for index, leaf_name in enumerate(leaf_names):
        leaf = QueryFragment(query_id, name=leaf_name)
        _, leaf_partial = build_local_chain(leaf, index)
        leaf.set_exit(leaf_partial.operator_id)
        leaf.set_downstream(root.fragment_id)
        root.bind_upstream(leaf.fragment_id, merge.operator_id, port=index + 1)
        leaf.finalize()
        fragments[leaf.fragment_id] = leaf
        order.append(leaf.fragment_id)

    root.finalize()
    fragments[root.fragment_id] = root
    order.append(root.fragment_id)

    return WorkloadQuery(
        query_id=query_id,
        kind="avg-all",
        fragments=fragments,
        sources=sources,
        fragment_order=order,
    )


# ----------------------------------------------------------------------- TOP-5
def make_top5_query(
    query_id: Optional[str] = None,
    num_fragments: int = 2,
    machines_per_fragment: int = 10,
    k: int = 5,
    rate: float = 20.0,
    dataset: str = "planetlab",
    memory_threshold_kb: float = 100_000.0,
    window_seconds: float = 1.0,
    seed: int = 0,
    bursty: bool = False,
) -> WorkloadQuery:
    """Build a ``TOP-5`` query deployed as a chain of fragments.

    Every fragment monitors ``machines_per_fragment`` machines via one CPU and
    one memory source per machine (20 sources per fragment with the paper's
    default of 10 machines), filters machines by free memory, joins CPU and
    memory streams on the machine id, ranks the local top-``k`` and merges it
    with the candidates received from the upstream fragment.
    """
    if num_fragments < 1:
        raise ValueError(f"num_fragments must be >= 1, got {num_fragments}")
    if machines_per_fragment < 1:
        raise ValueError(
            f"machines_per_fragment must be >= 1, got {machines_per_fragment}"
        )
    query_id = query_id or _next_query_id("top5")
    sources: List[object] = []
    fragments: Dict[str, QueryFragment] = {}
    order: List[str] = []
    previous: Optional[QueryFragment] = None

    for index in range(num_fragments):
        is_last = index == num_fragments - 1
        fragment = QueryFragment(query_id, name=f"f{index}")

        cpu_receivers = []
        mem_receivers = []
        for m in range(machines_per_fragment):
            machine_id = f"machine-{index}-{m}"
            cpu_id = f"{query_id}/f{index}/cpu{m}"
            mem_id = f"{query_id}/f{index}/mem{m}"
            base_seed = seed * 100_003 + index * 1_009 + m
            cpu_source = CpuSource(
                cpu_id, monitored_id=machine_id, rate=rate, dataset=dataset,
                seed=base_seed,
            )
            mem_source = MemorySource(
                mem_id, monitored_id=machine_id, rate=rate, dataset=dataset,
                seed=base_seed + 7,
            )
            sources.append(_maybe_bursty(cpu_source, bursty, base_seed + 11))
            sources.append(_maybe_bursty(mem_source, bursty, base_seed + 13))
            cpu_recv = fragment.add_operator(SourceReceiver(cpu_id))
            mem_recv = fragment.add_operator(SourceReceiver(mem_id))
            fragment.bind_source(cpu_id, cpu_recv.operator_id)
            fragment.bind_source(mem_id, mem_recv.operator_id)
            cpu_receivers.append(cpu_recv)
            mem_receivers.append(mem_recv)

        cpu_union = fragment.add_operator(Union(num_ports=len(cpu_receivers)))
        mem_union = fragment.add_operator(Union(num_ports=len(mem_receivers)))
        for port, receiver in enumerate(cpu_receivers):
            fragment.connect(receiver, cpu_union, port=port)
        for port, receiver in enumerate(mem_receivers):
            fragment.connect(receiver, mem_union, port=port)

        mem_filter = fragment.add_operator(
            Filter.field_threshold("free", ">=", memory_threshold_kb)
        )
        fragment.connect(mem_union, mem_filter)

        join = fragment.add_operator(
            WindowEquiJoin_factory(window_seconds)
        )
        fragment.connect(cpu_union, join, port=0)
        fragment.connect(mem_filter, join, port=1)

        local_topk = fragment.add_operator(
            TopK(k=k, value_field="value", id_field="id", window_seconds=window_seconds)
        )
        fragment.connect(join, local_topk)

        tail = local_topk
        if previous is not None:
            merge = fragment.add_operator(
                TopKMerge(
                    k=k,
                    value_field="value",
                    id_field="id",
                    num_ports=2,
                    window_seconds=window_seconds,
                )
            )
            fragment.connect(local_topk, merge, port=0)
            fragment.bind_upstream(previous.fragment_id, merge.operator_id, port=1)
            tail = merge

        if is_last:
            output = fragment.add_operator(OutputOperator())
            fragment.connect(tail, output)
            fragment.set_exit(output.operator_id)
            fragment.set_downstream(None)
        else:
            fragment.set_exit(tail.operator_id)

        if previous is not None:
            previous.set_downstream(fragment.fragment_id)
            previous.finalize()
        fragments[fragment.fragment_id] = fragment
        order.append(fragment.fragment_id)
        previous = fragment

    previous.finalize()
    return WorkloadQuery(
        query_id=query_id,
        kind="top5",
        fragments=fragments,
        sources=sources,
        fragment_order=order,
    )


def WindowEquiJoin_factory(window_seconds: float):
    """Build the CPU/memory equi-join used by the TOP-5 fragments."""
    from ..streaming.operators import WindowEquiJoin

    return WindowEquiJoin(
        left_key="id", right_key="id", window_seconds=window_seconds
    )


# ------------------------------------------------------------------------- COV
def make_cov_query(
    query_id: Optional[str] = None,
    num_fragments: int = 2,
    rate: float = 400.0,
    dataset: str = "planetlab",
    window_seconds: float = 1.0,
    seed: int = 0,
    bursty: bool = False,
) -> WorkloadQuery:
    """Build a ``COV`` query deployed as a chain of fragments.

    Every fragment computes the covariance of the CPU usage of its own pair of
    machines (two sources) and forwards mergeable partial statistics; the last
    fragment in the chain merges everything and reports the covariance.
    """
    if num_fragments < 1:
        raise ValueError(f"num_fragments must be >= 1, got {num_fragments}")
    query_id = query_id or _next_query_id("cov")
    sources: List[object] = []
    fragments: Dict[str, QueryFragment] = {}
    order: List[str] = []
    previous: Optional[QueryFragment] = None

    for index in range(num_fragments):
        is_last = index == num_fragments - 1
        fragment = QueryFragment(query_id, name=f"f{index}")

        receivers = []
        for s in range(2):
            source_id = f"{query_id}/f{index}/cpu{s}"
            source = CpuSource(
                source_id,
                monitored_id=f"machine-{index}-{s}",
                rate=rate,
                dataset=dataset,
                seed=seed * 100_003 + index * 1_009 + s,
            )
            sources.append(_maybe_bursty(source, bursty, seed + index * 10 + s))
            receiver = fragment.add_operator(SourceReceiver(source_id))
            fragment.bind_source(source_id, receiver.operator_id)
            receivers.append(receiver)

        local_cov = fragment.add_operator(
            Covariance(
                field_x="value",
                field_y="value",
                window_seconds=window_seconds,
                emit_partials=True,
            )
        )
        fragment.connect(receivers[0], local_cov, port=0)
        fragment.connect(receivers[1], local_cov, port=1)

        tail = local_cov
        if previous is not None:
            merge = fragment.add_operator(
                CovarianceMerge(
                    num_ports=2,
                    window_seconds=window_seconds,
                    emit_partials=not is_last,
                )
            )
            fragment.connect(local_cov, merge, port=0)
            fragment.bind_upstream(previous.fragment_id, merge.operator_id, port=1)
            tail = merge

        if is_last:
            output = fragment.add_operator(OutputOperator())
            fragment.connect(tail, output)
            fragment.set_exit(output.operator_id)
            fragment.set_downstream(None)
        else:
            fragment.set_exit(tail.operator_id)

        if previous is not None:
            previous.set_downstream(fragment.fragment_id)
            previous.finalize()
        fragments[fragment.fragment_id] = fragment
        order.append(fragment.fragment_id)
        previous = fragment

    previous.finalize()
    return WorkloadQuery(
        query_id=query_id,
        kind="cov",
        fragments=fragments,
        sources=sources,
        fragment_order=order,
    )


# ------------------------------------------------------------------- dispatcher
def make_complex_query(kind: str, **kwargs) -> WorkloadQuery:
    """Build a complex-workload query by kind (``avg-all``, ``top5``, ``cov``)."""
    normalized = kind.strip().lower().replace("_", "-")
    if normalized in ("avg-all", "avgall", "avg_all"):
        return make_avg_all_query(**kwargs)
    if normalized in ("top5", "top-5", "topk", "top-k"):
        return make_top5_query(**kwargs)
    if normalized == "cov":
        return make_cov_query(**kwargs)
    raise ValueError(f"unknown complex query kind {kind!r}; expected {COMPLEX_KINDS}")
