"""Workload population generation and deployment sizing.

The evaluation deploys populations of hundreds of complex queries whose
fragment counts follow controlled mixes (all 3-fragment, mixed 1–6 fragments,
a given ratio of multi-fragment queries, ...).  This module generates those
populations, estimates the load each fragment offers and derives per-node
processing budgets from a target overload factor, so experiments can say
"build me N mixed queries on M nodes at 50 % capacity" in one call.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..federation.deployment import Placement
from ..streaming.query import QueryFragment
from .complex import make_avg_all_query, make_cov_query, make_top5_query
from .spec import WorkloadQuery

__all__ = [
    "WorkloadSpec",
    "generate_complex_workload",
    "estimate_source_path_cost",
    "offered_cost_per_node",
    "compute_node_budgets",
]


@dataclass
class WorkloadSpec:
    """Parameters of a generated complex-workload population.

    Attributes:
        num_queries: number of queries to generate.
        fragments_per_query: either a single int (every query has that many
            fragments) or a sequence to draw from uniformly ("mixed").
        kinds: complex-query kinds to cycle through.
        source_rate: per-source rate in tuples/second.
        sources_per_avg_all_fragment: sources for each AVG-all fragment.
        machines_per_top5_fragment: machines (2 sources each) per TOP-5
            fragment.
        dataset: value distribution.
        bursty: whether sources are bursty (§7.4).
        seed: base RNG seed.
    """

    num_queries: int = 60
    fragments_per_query: object = 2
    kinds: Sequence[str] = ("avg-all", "top5", "cov")
    source_rate: float = 20.0
    sources_per_avg_all_fragment: int = 4
    machines_per_top5_fragment: int = 2
    dataset: str = "gaussian"
    bursty: bool = False
    seed: int = 0

    def fragment_count_for(self, rng: random.Random) -> int:
        if isinstance(self.fragments_per_query, int):
            return self.fragments_per_query
        choices = list(self.fragments_per_query)
        if not choices:
            raise ValueError("fragments_per_query sequence is empty")
        return int(rng.choice(choices))


def generate_complex_workload(spec: WorkloadSpec) -> List[WorkloadQuery]:
    """Generate a population of complex-workload queries from ``spec``."""
    if spec.num_queries <= 0:
        raise ValueError(f"num_queries must be positive, got {spec.num_queries}")
    rng = random.Random(spec.seed)
    queries: List[WorkloadQuery] = []
    for index in range(spec.num_queries):
        kind = spec.kinds[index % len(spec.kinds)]
        fragments = spec.fragment_count_for(rng)
        seed = spec.seed * 7919 + index
        if kind in ("avg-all", "avgall", "avg_all"):
            query = make_avg_all_query(
                query_id=f"q{index}-avgall",
                num_fragments=fragments,
                sources_per_fragment=spec.sources_per_avg_all_fragment,
                rate=spec.source_rate,
                dataset=spec.dataset,
                seed=seed,
                bursty=spec.bursty,
            )
        elif kind in ("top5", "top-5"):
            query = make_top5_query(
                query_id=f"q{index}-top5",
                num_fragments=fragments,
                machines_per_fragment=spec.machines_per_top5_fragment,
                rate=spec.source_rate,
                dataset=spec.dataset,
                seed=seed,
                bursty=spec.bursty,
            )
        elif kind == "cov":
            query = make_cov_query(
                query_id=f"q{index}-cov",
                num_fragments=fragments,
                rate=spec.source_rate,
                dataset=spec.dataset,
                seed=seed,
                bursty=spec.bursty,
            )
        else:
            raise ValueError(f"unknown complex query kind {kind!r}")
        queries.append(query)
    return queries


def estimate_source_path_cost(fragment: QueryFragment) -> float:
    """Estimate the processing cost of one source tuple entering ``fragment``.

    The estimate walks the fragment's internal edges from each source-bound
    operator towards the exit, summing the per-tuple cost of every operator on
    the path, and averages over the fragment's sources.  It is only used to
    size node budgets before a run; the online cost model measures the real
    cost during the run.
    """
    if not fragment.source_bindings:
        # Fragment fed purely by upstream fragments: charge its operators once.
        return sum(op.cost_per_tuple for op in fragment.operators.values())
    adjacency: Dict[str, List[str]] = {}
    for edge in fragment.internal_edges:
        adjacency.setdefault(edge.source, []).append(edge.target)

    total = 0.0
    for op_id, _port in fragment.source_bindings.values():
        visited = set()
        frontier = [op_id]
        path_cost = 0.0
        while frontier:
            current = frontier.pop()
            if current in visited:
                continue
            visited.add(current)
            path_cost += fragment.operators[current].cost_per_tuple
            frontier.extend(adjacency.get(current, ()))
        total += path_cost
    return total / len(fragment.source_bindings)


def offered_cost_per_node(
    queries: Sequence[WorkloadQuery],
    placement: Placement,
    shedding_interval: float,
) -> Dict[str, float]:
    """Processing cost offered to each node per shedding interval.

    For every fragment, the cost of the source tuples it receives per interval
    is ``rate × interval × path-cost``; the per-node offered cost is the sum
    over the fragments placed on it.  Inter-fragment traffic is small compared
    to source traffic (one batch per window) and is ignored by this estimate.
    """
    offered: Dict[str, float] = {}
    for query in queries:
        source_rates = {
            getattr(s, "source_id"): float(getattr(s, "rate", 0.0))
            for s in query.sources
        }
        for fragment in query.fragments.values():
            node_id = placement.node_for(fragment.fragment_id)
            path_cost = estimate_source_path_cost(fragment)
            fragment_rate = sum(
                source_rates.get(source_id, 0.0)
                for source_id in fragment.source_bindings
            )
            offered[node_id] = offered.get(node_id, 0.0) + (
                fragment_rate * shedding_interval * path_cost
            )
    return offered


def compute_node_budgets(
    queries: Sequence[WorkloadQuery],
    placement: Placement,
    shedding_interval: float,
    capacity_fraction: float,
    node_ids: Sequence[str],
    minimum_budget: float = 1.0,
    mode: str = "proportional",
) -> Dict[str, float]:
    """Per-node processing budgets creating a target overload factor.

    ``capacity_fraction`` below 1.0 yields permanent overload (C2).  Two
    sizing modes are supported:

    * ``"proportional"`` — every node's budget is a fraction of the load
      offered *to that node*, so all nodes experience the same relative
      overload (useful for controlled single-parameter sweeps);
    * ``"uniform"`` — all nodes get the same budget (a fraction of the mean
      offered load), modelling the paper's homogeneous test-bed hardware:
      nodes hosting more fragments are more overloaded, which is exactly the
      skew (C1) that makes random shedding unfair.
    """
    if capacity_fraction <= 0:
        raise ValueError(
            f"capacity_fraction must be positive, got {capacity_fraction}"
        )
    if mode not in ("proportional", "uniform"):
        raise ValueError(f"unknown budget mode {mode!r}")
    offered = offered_cost_per_node(queries, placement, shedding_interval)
    budgets: Dict[str, float] = {}
    if mode == "uniform":
        total_offered = sum(offered.get(node_id, 0.0) for node_id in node_ids)
        per_node = total_offered * capacity_fraction / max(1, len(node_ids))
        for node_id in node_ids:
            budgets[node_id] = max(minimum_budget, per_node)
        return budgets
    for node_id in node_ids:
        budgets[node_id] = max(
            minimum_budget, offered.get(node_id, 0.0) * capacity_fraction
        )
    return budgets
