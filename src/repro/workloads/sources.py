"""Data sources.

A source produces payload tuples at a configurable rate.  The federation layer
only relies on a small protocol: ``source_id``, ``rate`` (tuples/second,
nominal) and ``generate(start, end)`` returning :class:`~repro.core.tuples.Tuple`
objects with payload values and the originating ``source_id`` (SIC values are
assigned later by the query's :class:`~repro.core.sic.SicAssigner`).

Three concrete sources cover the paper's workloads:

* :class:`ValueSource` — emits ``{"v": value}`` tuples (aggregate workload).
* :class:`CpuSource` / :class:`MemorySource` — emit node-monitoring tuples for
  the complex workload (``{"id", "value"}`` and ``{"id", "free"}``).
* :class:`BurstySource` — wraps any source and makes it emit at 10× its normal
  rate 10 % of the time (§7.4).
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional

from ..core.columns import ColumnBlock, get_default_backend
from ..core.tuples import Tuple

try:  # Guarded: the list columnar backend works without NumPy.
    import numpy as np
except ImportError:  # pragma: no cover - exercised only on stripped installs
    np = None
if np is not None:
    from ..core.kernels import build_source_block
from .datasets import PlanetLabLikeValues, ValueDistribution, make_dataset

__all__ = [
    "StreamSource",
    "ValueSource",
    "CpuSource",
    "MemorySource",
    "BurstySource",
]


class StreamSource:
    """Base class: constant-rate source emitting payloads from a builder."""

    def __init__(
        self,
        source_id: str,
        rate: float,
        payload_builder: Callable[[], Dict[str, object]],
        seed: Optional[int] = 0,
    ) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self.source_id = source_id
        self.rate = float(rate)
        self.payload_builder = payload_builder
        self.rng = random.Random(seed)
        self.emitted_tuples = 0
        self._carry = 0.0

    def tuples_for_interval(self, start: float, end: float) -> int:
        """Number of tuples to emit for ``[start, end)`` (carrying fractions)."""
        if end <= start:
            return 0
        exact = self.rate * (end - start) + self._carry
        count = int(exact)
        self._carry = exact - count
        return count

    def generate(self, start: float, end: float) -> List[Tuple]:
        """Emit the tuples for the interval ``[start, end)``.

        This is the seed per-tuple path, kept as the compatibility surface
        and as the correctness/perf reference for :meth:`generate_block`:
        for equal seeds both paths must emit byte-identical timestamps,
        payload values and counts (the differential tests enforce it).
        """
        count = self.tuples_for_interval(start, end)
        if count <= 0:
            return []
        step = (end - start) / count
        tuples = []
        for index in range(count):
            timestamp = start + (index + 0.5) * step
            tuples.append(
                Tuple(
                    timestamp=timestamp,
                    sic=0.0,
                    values=self.payload_builder(),
                    source_id=self.source_id,
                )
            )
        self.emitted_tuples += count
        return tuples

    def generate_block(self, start: float, end: float) -> Optional[ColumnBlock]:
        """Columnar :meth:`generate`: emit the interval as parallel arrays.

        Returns ``None`` when no tuples are due.  Timestamps use the exact
        per-tuple expression and payload columns come from
        :meth:`payload_columns`, which draws the same RNG stream as ``count``
        ``payload_builder()`` calls, so a seeded columnar run is
        tuple-for-tuple identical to the per-tuple path.
        """
        count = self.tuples_for_interval(start, end)
        if count <= 0:
            return None
        step = (end - start) / count
        if np is not None and get_default_backend() == "numpy":
            # Element-wise: (index + 0.5) * step + start performs the exact
            # per-element operations of the list comprehension below, so the
            # timestamp column is bit-identical across backends.
            timestamps = start + (np.arange(count) + 0.5) * step
            sics = np.zeros(count)
        else:
            timestamps = [start + (index + 0.5) * step for index in range(count)]
            sics = [0.0] * count
        values = self.payload_columns(count)
        self.emitted_tuples += count
        return ColumnBlock(
            timestamps=timestamps,
            sics=sics,
            values=values,
            source_id=self.source_id,
        )

    def generate_block_fused(self, start: float, end: float) -> Optional[ColumnBlock]:
        """Fused :meth:`generate_block`: same output, assembled in one pass.

        When the numpy backend is active and :meth:`payload_columns_fused`
        hands back ready-made float64 arrays, the block is built through the
        unchecked constructor — skipping the per-value float scan that
        payload normalization otherwise performs on every generated column.
        Falls back to :meth:`generate_block` (without consuming any RNG
        draws or rate carry) in every other case, so the emitted stream is
        bit-identical either way.
        """
        if np is None or get_default_backend() != "numpy":
            return self.generate_block(start, end)
        count = self.tuples_for_interval(start, end)
        if count <= 0:
            return None
        step = (end - start) / count
        columns = self.payload_columns_fused(count)
        fast = columns is not None and all(
            isinstance(column, np.ndarray) and column.dtype == np.float64
            for column in columns.values()
        )
        if columns is None:
            columns = self.payload_columns(count)
        self.emitted_tuples += count
        if fast:
            return build_source_block(self.source_id, start, step, count, columns)
        timestamps = start + (np.arange(count) + 0.5) * step
        return ColumnBlock(
            timestamps=timestamps,
            sics=np.zeros(count),
            values=columns,
            source_id=self.source_id,
        )

    def payload_columns_fused(self, count: int) -> Optional[Dict[str, object]]:
        """Payload columns as ready-made float64 arrays, or ``None``.

        Sources whose distributions can draw vectorized (same RNG stream,
        bit-exact values — e.g. :meth:`UniformValues.sample_array`) override
        this; the default opts out and :meth:`generate_block_fused` falls
        back to the scalar :meth:`payload_columns` draw.
        """
        return None

    def payload_columns(self, count: int) -> Dict[str, List[object]]:
        """Payload values for ``count`` tuples, one column per field.

        The default transposes ``count`` ``payload_builder()`` calls, so any
        custom source with a *uniform* payload schema is columnar-correct
        out of the box; the concrete sources below override it with
        loop-free / hoisted versions that draw the identical RNG stream.

        Raises:
            ValueError: when the builder emits differing field sets across
                tuples — parallel columns cannot represent that.  Run with
                ``SimulationConfig(columnar=False)`` (per-tuple pipeline) or
                override this method for such sources.
        """
        builder = self.payload_builder
        payloads = [builder() for _ in range(count)]
        if not payloads:
            return {}
        fields = list(payloads[0])
        for payload in payloads:
            if list(payload) != fields:
                raise ValueError(
                    f"source {self.source_id!r}: payload_builder emits a "
                    f"non-uniform field set ({list(payload)!r} vs {fields!r}),"
                    " which the columnar fast path cannot represent; disable"
                    " it with SimulationConfig(columnar=False) or override"
                    " payload_columns()"
                )
        return {f: [p[f] for p in payloads] for f in fields}


class ValueSource(StreamSource):
    """Source for the aggregate workload: single ``v`` field."""

    def __init__(
        self,
        source_id: str,
        rate: float = 400.0,
        dataset: str = "gaussian",
        seed: Optional[int] = 0,
        distribution: Optional[ValueDistribution] = None,
    ) -> None:
        self.distribution = distribution or make_dataset(dataset, seed=seed)
        super().__init__(
            source_id=source_id,
            rate=rate,
            payload_builder=lambda: {"v": self.distribution.sample()},
            seed=seed,
        )

    def payload_columns(self, count: int) -> Dict[str, List[object]]:
        return {"v": self.distribution.sample_many(count)}

    def payload_columns_fused(self, count: int) -> Optional[Dict[str, object]]:
        sample_array = getattr(self.distribution, "sample_array", None)
        if sample_array is None:
            return None
        column = sample_array(count)
        if column is None:  # distribution cannot vectorize (e.g. no NumPy)
            return None
        return {"v": column}


class CpuSource(StreamSource):
    """CPU utilisation source for the complex workload (``id``, ``value``)."""

    def __init__(
        self,
        source_id: str,
        monitored_id: str,
        rate: float = 150.0,
        dataset: str = "planetlab",
        seed: Optional[int] = 0,
        distribution: Optional[ValueDistribution] = None,
    ) -> None:
        self.monitored_id = monitored_id
        self.distribution = distribution or make_dataset(dataset, seed=seed)
        super().__init__(
            source_id=source_id,
            rate=rate,
            payload_builder=lambda: {
                "id": self.monitored_id,
                "value": self.distribution.sample(),
            },
            seed=seed,
        )

    def payload_columns(self, count: int) -> Dict[str, List[object]]:
        return {
            "id": [self.monitored_id] * count,
            "value": self.distribution.sample_many(count),
        }


class MemorySource(StreamSource):
    """Free-memory source for the complex workload (``id``, ``free`` in KB)."""

    def __init__(
        self,
        source_id: str,
        monitored_id: str,
        rate: float = 150.0,
        dataset: str = "planetlab",
        seed: Optional[int] = 0,
        distribution: Optional[ValueDistribution] = None,
    ) -> None:
        self.monitored_id = monitored_id
        self.distribution = distribution or make_dataset(dataset, seed=seed)
        self._planetlab = (
            self.distribution
            if isinstance(self.distribution, PlanetLabLikeValues)
            else None
        )
        super().__init__(
            source_id=source_id,
            rate=rate,
            payload_builder=self._build_payload,
            seed=seed,
        )

    def _build_payload(self) -> Dict[str, object]:
        value = self.distribution.sample()
        if self._planetlab is not None:
            free = self._planetlab.memory_free_kb(value)
        else:
            # Scale a generic value into a plausible free-memory range so the
            # TOP-5 query's filter (free >= 100,000 KB) is selective.
            free = 50_000.0 + value * 20_000.0
        return {"id": self.monitored_id, "free": free}

    def payload_columns(self, count: int) -> Dict[str, List[object]]:
        # The PlanetLab path interleaves two draws per tuple (utilisation
        # sample, then the correlated memory noise), so the loop must stay
        # per-tuple to preserve the RNG stream; only the dispatch is hoisted.
        sample = self.distribution.sample
        planetlab = self._planetlab
        if planetlab is not None:
            memory_free_kb = planetlab.memory_free_kb
            free = [memory_free_kb(sample()) for _ in range(count)]
        else:
            free = [50_000.0 + sample() * 20_000.0 for _ in range(count)]
        return {"id": [self.monitored_id] * count, "free": free}


class BurstySource:
    """Wrapper making a source bursty: 10 % of the time it emits at 10× rate.

    Reproduces the burstiness model of §7.4.  The wrapper draws, per
    generation interval, whether the source is currently in a burst.
    """

    def __init__(
        self,
        base: StreamSource,
        burst_probability: float = 0.1,
        burst_multiplier: float = 10.0,
        seed: Optional[int] = 0,
    ) -> None:
        if not 0.0 <= burst_probability <= 1.0:
            raise ValueError(
                f"burst_probability must be in [0, 1], got {burst_probability}"
            )
        if burst_multiplier < 1.0:
            raise ValueError(
                f"burst_multiplier must be >= 1, got {burst_multiplier}"
            )
        self.base = base
        self.burst_probability = float(burst_probability)
        self.burst_multiplier = float(burst_multiplier)
        self.rng = random.Random(seed)
        self.bursts = 0

    @property
    def source_id(self) -> str:
        return self.base.source_id

    @property
    def rate(self) -> float:
        return self.base.rate

    @property
    def emitted_tuples(self) -> int:
        return self.base.emitted_tuples

    def generate(self, start: float, end: float) -> List[Tuple]:
        original_rate = self.base.rate
        if self.rng.random() < self.burst_probability:
            self.bursts += 1
            self.base.rate = original_rate * self.burst_multiplier
        try:
            return self.base.generate(start, end)
        finally:
            self.base.rate = original_rate

    def generate_block(self, start: float, end: float) -> Optional[ColumnBlock]:
        """Columnar :meth:`generate`: one burst draw, then the base fast path."""
        original_rate = self.base.rate
        if self.rng.random() < self.burst_probability:
            self.bursts += 1
            self.base.rate = original_rate * self.burst_multiplier
        try:
            return self.base.generate_block(start, end)
        finally:
            self.base.rate = original_rate

    def generate_block_fused(self, start: float, end: float) -> Optional[ColumnBlock]:
        """Fused :meth:`generate_block`: one burst draw, then the base fused path."""
        original_rate = self.base.rate
        if self.rng.random() < self.burst_probability:
            self.bursts += 1
            self.base.rate = original_rate * self.burst_multiplier
        try:
            return self.base.generate_block_fused(start, end)
        finally:
            self.base.rate = original_rate
