"""The checkpoint envelope and the plain-data serialisers it builds on.

Design constraints, in order:

1. **Exactness** — a snapshot→restore round-trip must be *bit-identical*:
   the restored component produces the same floating-point results, in the
   same order, as the original would have.  Incrementally-maintained sums
   (pane SIC, batch header SIC — which may be prefix-derived after a
   ``Batch.split``) are therefore recorded verbatim rather than re-summed on
   restore.
2. **Isolation** — restored state shares no mutable structure with the
   source: every list, dict and column is copied through the plain-data
   form, so a migrated fragment cannot alias its old host's buffers.
3. **Schema checking** — a checkpoint names the component shape it was taken
   from (window kind and parameters, operator type and port count, fragment
   and query identifiers) and ``restore()`` refuses mismatches with
   :class:`CheckpointError` instead of silently corrupting state.

The serialised form is plain Python data (dicts, lists, floats); payload
values are carried as-is, exactly like the live pipeline carries them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..core.columns import ColumnBlock
from ..core.tuples import Batch, Tuple

try:  # Guarded: checkpoints of list-backed blocks work without NumPy.
    import numpy as np
except ImportError:  # pragma: no cover - exercised only on stripped installs
    np = None


def _copy_column(column, lo: int = 0, hi: Optional[int] = None):
    """Copy one column slice into standalone storage (no aliasing).

    Array columns stay arrays (a ``float64`` memcpy, far cheaper than
    expanding 10⁵ rows into Python objects on the migration hot path); list
    columns stay lists.  Either way the copy shares nothing with its source,
    and :func:`block_from_state` re-normalizes to the active backend.
    """
    if np is not None and isinstance(column, np.ndarray):
        return column[lo:hi].copy() if (lo, hi) != (0, None) else column.copy()
    return column[lo:hi]

__all__ = [
    "CHECKPOINT_VERSION",
    "CheckpointError",
    "FragmentCheckpoint",
    "tuple_to_state",
    "tuple_from_state",
    "block_to_state",
    "block_from_state",
    "batch_to_state",
    "batch_from_state",
]

# Bumped whenever the serialised layout changes incompatibly; restore paths
# refuse envelopes from another version instead of guessing.
CHECKPOINT_VERSION = 1


class CheckpointError(ValueError):
    """A checkpoint failed schema validation or targets the wrong component."""


# --------------------------------------------------------------- tuple state
def tuple_to_state(t: Tuple) -> Dict[str, Any]:
    """Serialise one tuple (payload dict copied, never aliased)."""
    return {
        "timestamp": t.timestamp,
        "sic": t.sic,
        "values": dict(t.values),
        "source_id": t.source_id,
    }


def tuple_from_state(state: Dict[str, Any]) -> Tuple:
    return Tuple(
        timestamp=state["timestamp"],
        sic=state["sic"],
        values=dict(state["values"]),
        source_id=state["source_id"],
    )


# --------------------------------------------------------------- block state
def block_to_state(
    block: ColumnBlock, lo: int = 0, hi: Optional[int] = None
) -> Dict[str, Any]:
    """Serialise rows ``lo:hi`` of a column group as copied columns.

    Columns keep their container kind (ndarray or list) — the state is still
    plain data in the sense that matters (copied, self-contained, version-
    checked), and restoring under either backend re-normalizes it.
    """
    if hi is None:
        hi = len(block)
    return {
        "timestamps": _copy_column(block.timestamps, lo, hi),
        "sics": _copy_column(block.sics, lo, hi),
        "values": {f: _copy_column(col, lo, hi) for f, col in block.values.items()},
        "source_id": block.source_id,
    }


def block_from_state(state: Dict[str, Any]) -> ColumnBlock:
    return ColumnBlock(
        timestamps=_copy_column(state["timestamps"]),
        sics=_copy_column(state["sics"]),
        values={f: _copy_column(col) for f, col in state["values"].items()},
        source_id=state["source_id"],
    )


# --------------------------------------------------------------- batch state
def batch_to_state(batch: Batch) -> Dict[str, Any]:
    """Serialise a batch in its native representation (columnar or tuples).

    The header SIC is recorded verbatim: a batch produced by ``split``
    carries a prefix-derived header that a naive re-sum would not reproduce
    bit for bit.
    """
    state: Dict[str, Any] = {
        "query_id": batch.query_id,
        "sic": batch.header.sic,
        "created_at": batch.created_at,
        "fragment_id": batch.fragment_id,
        "origin_fragment_id": batch.origin_fragment_id,
    }
    if batch.origin_seq is not None:
        # Exactly-once output watermark: recorded only when present so the
        # serialised layout of ordinary (unstamped) batches is unchanged.
        state["origin_epoch"] = batch.origin_epoch
        state["origin_seq"] = batch.origin_seq
    view = batch.block_view()
    if view is not None:
        block, lo, hi = view
        state["block"] = block_to_state(block, lo, hi)
    else:
        state["tuples"] = [tuple_to_state(t) for t in batch.tuples]
    return state


def batch_from_state(state: Dict[str, Any]) -> Batch:
    if "block" in state:
        batch = Batch.from_block(
            state["query_id"],
            block_from_state(state["block"]),
            created_at=state["created_at"],
            fragment_id=state["fragment_id"],
            origin_fragment_id=state["origin_fragment_id"],
        )
    else:
        batch = Batch(
            state["query_id"],
            [tuple_from_state(s) for s in state["tuples"]],
            created_at=state["created_at"],
            fragment_id=state["fragment_id"],
            origin_fragment_id=state["origin_fragment_id"],
        )
    # Restore the recorded header SIC over the re-summed one (see docstring).
    batch.header.sic = state["sic"]
    if "origin_seq" in state:
        batch.origin_epoch = state["origin_epoch"]
        batch.origin_seq = state["origin_seq"]
    return batch


# ----------------------------------------------------------------- envelope
@dataclass
class FragmentCheckpoint:
    """Versioned envelope holding everything needed to re-host a fragment.

    Attributes:
        fragment_id / query_id: which fragment this state belongs to.
        created_at: simulation time the checkpoint was taken.
        fragment_state: :meth:`repro.streaming.query.QueryFragment.snapshot`
            output — per-operator window state and SIC-propagation counters.
        buffered_batches: serialised input-buffer batches for this fragment
            that were waiting (unprocessed) on the host node; replayed into
            the adopting node's buffer so no delivered tuple is lost.
        host_context: node-side per-query state that travels with the
            fragment — the coordinator-reported result SIC and the node's
            local result-SIC tracker for the fragment's query.
        pending_tuples / pending_sic: integrity totals (window state plus
            buffered batches) recorded at checkpoint time; rejoin uses them
            for explicit loss accounting and tests use them to assert
            pane-SIC conservation across the round-trip.
    """

    fragment_id: str
    query_id: str
    created_at: float
    fragment_state: Dict[str, Any]
    buffered_batches: List[Dict[str, Any]] = field(default_factory=list)
    host_context: Dict[str, Any] = field(default_factory=dict)
    pending_tuples: int = 0
    pending_sic: float = 0.0
    version: int = CHECKPOINT_VERSION

    def validate(self) -> "FragmentCheckpoint":
        """Schema-check the envelope; raises :class:`CheckpointError`."""
        if self.version != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"checkpoint version {self.version} != supported "
                f"{CHECKPOINT_VERSION}"
            )
        if not isinstance(self.fragment_id, str) or not self.fragment_id:
            raise CheckpointError("checkpoint has no fragment_id")
        if not isinstance(self.query_id, str) or not self.query_id:
            raise CheckpointError("checkpoint has no query_id")
        if (
            not isinstance(self.fragment_state, dict)
            or "operators" not in self.fragment_state
        ):
            raise CheckpointError(
                f"checkpoint for {self.fragment_id!r} has no operator state"
            )
        if not isinstance(self.buffered_batches, list):
            raise CheckpointError("buffered_batches must be a list")
        if self.pending_tuples < 0:
            raise CheckpointError(
                f"pending_tuples must be non-negative, got {self.pending_tuples}"
            )
        return self
