"""Cross-process wire format for in-flight network traffic.

The sharded runtime's multiprocess mode (:mod:`repro.runtime.workers`) ships
boundary messages — traffic whose destination shard lives in another worker
process — between forked replicas.  This module turns network messages and
their in-flight queue entries into plain-data dictionaries and back, reusing
the checkpoint serialisers (:mod:`repro.state.checkpoint`) for the payload
batches so the exactness guarantees carry over verbatim:

* columns are **copied**, never aliased — a wire entry shares no mutable
  structure with the sender's live state, exactly like a checkpoint;
* batch header SIC values travel verbatim (a ``Batch.split`` prefix header
  is not re-summable), so a round-trip is bit-identical;
* ``ColumnBlock`` storage keeps its container kind (ndarray or list) and is
  re-normalised to the receiving process's active backend on restore.

Wire states are plain dicts of Python scalars, tuples, lists and (for the
numpy backend) ``float64`` arrays — everything ``multiprocessing``'s pickle
transport handles natively.  Action tokens (the sharded runtime's
deterministic merge order, nested tuples of scalars) pass through untouched.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple as PyTuple

from ..federation.network import (
    AckMessage,
    DataMessage,
    HeartbeatMessage,
    Message,
    ResultMessage,
    SicUpdateMessage,
    _InFlight,
    _PendingSend,
)
from .checkpoint import batch_from_state, batch_to_state

__all__ = [
    "message_to_wire",
    "message_from_wire",
    "entry_to_wire",
    "entry_from_wire",
    "pending_send_to_wire",
    "pending_send_from_wire",
]


# ------------------------------------------------------------------ messages
def message_to_wire(message: Message) -> Dict[str, Any]:
    """Serialise one network message as a kind-tagged plain dictionary."""
    kind = message.kind
    state: Dict[str, Any] = {"kind": kind, "destination": message.destination}
    if kind == "data":
        state["batch"] = batch_to_state(message.batch)
        state["target_fragment_id"] = message.target_fragment_id
    elif kind == "result":
        state["batch"] = batch_to_state(message.batch)
    elif kind == "sic_update":
        state["query_id"] = message.query_id
        state["sic_value"] = message.sic_value
        state["sent_at"] = message.sent_at
    elif kind == "heartbeat":
        state["node_id"] = message.node_id
        state["sent_at"] = message.sent_at
    elif kind == "ack":
        state["link"] = tuple(message.link)
        state["seq"] = message.seq
    else:
        raise ValueError(f"unknown message kind {kind!r}")
    return state


def message_from_wire(state: Dict[str, Any]) -> Message:
    kind = state["kind"]
    destination = state["destination"]
    if kind == "data":
        return DataMessage(
            destination=destination,
            batch=batch_from_state(state["batch"]),
            target_fragment_id=state["target_fragment_id"],
        )
    if kind == "result":
        return ResultMessage(
            destination=destination, batch=batch_from_state(state["batch"])
        )
    if kind == "sic_update":
        return SicUpdateMessage(
            destination=destination,
            query_id=state["query_id"],
            sic_value=state["sic_value"],
            sent_at=state["sent_at"],
        )
    if kind == "heartbeat":
        return HeartbeatMessage(
            destination=destination,
            node_id=state["node_id"],
            sent_at=state["sent_at"],
        )
    if kind == "ack":
        return AckMessage(
            destination=destination,
            link=tuple(state["link"]),
            seq=state["seq"],
        )
    raise ValueError(f"unknown message kind {kind!r}")


# ----------------------------------------------------------- in-flight entry
def entry_to_wire(entry: _InFlight) -> Dict[str, Any]:
    """Serialise one in-flight queue entry (message or control timer).

    The ``sequence`` element — the sharded runtime's action token, a nested
    tuple of scalars — is carried verbatim: it *is* the deterministic merge
    order, so the receiving process's heap sorts the injected entry exactly
    where the sender's heap would have.
    """
    return {
        "deliver_at": entry.deliver_at,
        "sequence": entry.sequence,
        "message": None if entry.message is None else message_to_wire(entry.message),
        "link": None if entry.link is None else tuple(entry.link),
        "seq": entry.seq,
        "control": entry.control,
    }


def entry_from_wire(state: Dict[str, Any]) -> _InFlight:
    message = state["message"]
    link = state["link"]
    return _InFlight(
        state["deliver_at"],
        state["sequence"],
        None if message is None else message_from_wire(message),
        link=None if link is None else tuple(link),
        seq=state["seq"],
        control=state["control"],
    )


# --------------------------------------------------- reliable retransmit state
def pending_send_to_wire(
    pending: _PendingSend,
) -> Dict[str, Any]:
    """Serialise one unacknowledged reliable-channel send."""
    return {
        "message": message_to_wire(pending.message),
        "source": pending.source,
        "attempts": pending.attempts,
        "rto": pending.rto,
    }


def pending_send_from_wire(state: Dict[str, Any]) -> _PendingSend:
    pending = _PendingSend(
        message_from_wire(state["message"]), state["source"], state["rto"]
    )
    pending.attempts = state["attempts"]
    return pending
