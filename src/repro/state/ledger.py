"""Exactly-once result accounting: the coordinator-side output ledger.

PR 6 made the *transport* exactly-once per link (``sent == delivered +
expired``), but node rejoin remained at-least-once at the *state* level:
a fragment restored from a coordinator-held checkpoint replays the buffered
batches packaged in the envelope, so results it had already emitted between
the checkpoint round and the crash are emitted a second time — and results
whose inputs died in the node's buffer are never emitted at all.

This module closes that gap with an epoch-aligned output watermark:

* Every root fragment stamps the result batches it emits with a
  monotonically increasing ``(epoch, seq)`` pair.  ``seq`` counts emissions
  within an epoch; ``epoch`` bumps only when the fragment restarts *blank*
  (``reset_state`` — a rejoin without a covering checkpoint), so a restore
  from a checkpoint rolls ``seq`` back with the rest of the fragment state
  and replayed output reuses the original sequence numbers.
* The coordinator keeps one :class:`_Lane` per ``(fragment_id, epoch)``.
  Arrivals at or below the lane's acknowledged watermark are *deduplicated*
  (dropped before they reach the ``ResultSicTracker``); an arrival that
  jumps the watermark by more than one accounts the skipped sequence
  numbers as ``lost_to_crash`` — per-link FIFO release (PR 6) guarantees a
  later seq overtakes an earlier one only when the earlier emission died
  with the crash, never in transit.

The lane algebra closes at any instant: per lane,
``acked == delivered_batches + lost_batches`` and every arrival is either
delivered or deduplicated — the ``emitted == delivered + deduped +
lost_to_crash`` ledger of the tentpole, in units of stamped batches.  The
tuple-level closure (``arrived == recorded + deduped + dropped + lost``)
is kept by :class:`repro.federation.fsps.FederatedSystem`, which owns the
terms the coordinator cannot see (dispatch drops, failover losses).

The ledger itself snapshots/restores with the coordinator so failover rolls
it back in sympathy with the tracker state it guards.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = ["DEDUPLICATE", "DELIVER", "ResultLedger"]

# Verdicts returned by ResultLedger.observe().
DELIVER = "deliver"
DEDUPLICATE = "deduplicate"


@dataclass
class _Lane:
    """Per-``(fragment_id, epoch)`` watermark and counters."""

    acked_seq: int = 0
    delivered_batches: int = 0
    delivered_tuples: int = 0
    deduped_batches: int = 0
    deduped_tuples: int = 0
    lost_batches: int = 0

    def to_state(self) -> Dict[str, int]:
        return {
            "acked_seq": self.acked_seq,
            "delivered_batches": self.delivered_batches,
            "delivered_tuples": self.delivered_tuples,
            "deduped_batches": self.deduped_batches,
            "deduped_tuples": self.deduped_tuples,
            "lost_batches": self.lost_batches,
        }

    @classmethod
    def from_state(cls, state: Dict[str, int]) -> "_Lane":
        return cls(**{k: int(v) for k, v in state.items()})


class ResultLedger:
    """Deduplicating output ledger for one query's result stream."""

    def __init__(self) -> None:
        self._lanes: Dict[Tuple[str, int], _Lane] = {}

    # -- hot path --------------------------------------------------------------
    def observe(
        self, fragment_id: Optional[str], epoch: Optional[int],
        seq: Optional[int], num_tuples: int,
    ) -> str:
        """Account one arriving result batch; return ``DELIVER``/``DEDUPLICATE``.

        Unstamped batches (any coordinate ``None``) bypass the ledger and are
        always delivered — the pre-watermark compatibility path.
        """
        if fragment_id is None or epoch is None or seq is None:
            return DELIVER
        lane = self._lanes.get((fragment_id, epoch))
        if lane is None:
            lane = _Lane()
            self._lanes[(fragment_id, epoch)] = lane
        if seq <= lane.acked_seq:
            # Crash-replayed output below the acknowledged watermark: the
            # original delivery is already in the tracker.
            lane.deduped_batches += 1
            lane.deduped_tuples += num_tuples
            return DEDUPLICATE
        if seq > lane.acked_seq + 1:
            # FIFO links: the skipped emissions died with a crash.
            lane.lost_batches += seq - lane.acked_seq - 1
        lane.acked_seq = seq
        lane.delivered_batches += 1
        lane.delivered_tuples += num_tuples
        return DELIVER

    # -- watermark queries -----------------------------------------------------
    def acked(self, fragment_id: str, epoch: int) -> int:
        lane = self._lanes.get((fragment_id, epoch))
        return lane.acked_seq if lane is not None else 0

    @property
    def lane_count(self) -> int:
        return len(self._lanes)

    def watermarks(self) -> Dict[Tuple[str, int], int]:
        """Acknowledged watermark per ``(fragment_id, epoch)`` lane.

        A point-in-time view for monitoring and tests: within one
        coordinator incarnation each lane's watermark only ever advances
        (a coordinator failover restores an older ledger snapshot, rolling
        watermarks back together with the tracker state they guard).
        """
        return {key: lane.acked_seq for key, lane in self._lanes.items()}

    @property
    def deduped_tuples(self) -> int:
        return sum(l.deduped_tuples for l in self._lanes.values())

    @property
    def deduped_batches(self) -> int:
        return sum(l.deduped_batches for l in self._lanes.values())

    @property
    def delivered_tuples(self) -> int:
        return sum(l.delivered_tuples for l in self._lanes.values())

    @property
    def lost_batches(self) -> int:
        return sum(l.lost_batches for l in self._lanes.values())

    def account_tail_loss(self, fragment_id: str, epoch: int,
                          emitted_seq: int) -> int:
        """Close a lane's tail against the emitter's final counter.

        Called when a fragment restarts blank (epoch bump): emissions beyond
        the acknowledged watermark that are no longer in flight can never
        arrive, so they are folded into ``lost_batches`` now instead of being
        discovered by a later gap (there will be no later arrival in this
        epoch).  Returns the number of newly accounted batches.
        """
        lane = self._lanes.get((fragment_id, epoch))
        if lane is None:
            if emitted_seq <= 0:
                return 0
            lane = _Lane()
            self._lanes[(fragment_id, epoch)] = lane
        missing = emitted_seq - lane.acked_seq
        if missing <= 0:
            return 0
        lane.lost_batches += missing
        lane.acked_seq = emitted_seq
        return missing

    # -- invariants & reporting ------------------------------------------------
    def check_closure(self) -> List[str]:
        """Return human-readable violations of the lane algebra (empty = ok)."""
        problems = []
        for (fragment_id, epoch), lane in sorted(self._lanes.items()):
            if lane.acked_seq != lane.delivered_batches + lane.lost_batches:
                problems.append(
                    f"{fragment_id}@e{epoch}: acked {lane.acked_seq} != "
                    f"delivered {lane.delivered_batches} + lost {lane.lost_batches}"
                )
        return problems

    def summary(self) -> Dict[str, int]:
        return {
            "lanes": len(self._lanes),
            "emitted_high_watermark": sum(
                l.acked_seq for l in self._lanes.values()
            ),
            "delivered_batches": sum(
                l.delivered_batches for l in self._lanes.values()
            ),
            "delivered_tuples": self.delivered_tuples,
            "deduped_batches": self.deduped_batches,
            "deduped_tuples": self.deduped_tuples,
            "lost_to_crash_batches": self.lost_batches,
        }

    # -- checkpoint/restore ----------------------------------------------------
    def snapshot_state(self) -> Dict:
        return {
            "lanes": [
                {"fragment_id": fid, "epoch": epoch, **lane.to_state()}
                for (fid, epoch), lane in sorted(self._lanes.items())
            ]
        }

    def restore_state(self, state: Dict) -> None:
        self._lanes = {}
        for entry in state.get("lanes", []):
            entry = dict(entry)
            fid = entry.pop("fragment_id")
            epoch = int(entry.pop("epoch"))
            self._lanes[(fid, epoch)] = _Lane.from_state(entry)
