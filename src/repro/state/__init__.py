"""Operator-state checkpoint/restore.

This package is the state-management layer that turns fragment placement into
a *runtime* decision: every stateful streaming component can serialise its
state into plain-data structures (``snapshot()``) and rebuild itself from
them (``restore()``), and a whole fragment's state — operator windows plus
the node-side context that travels with a hosted fragment — is packaged into
a versioned, schema-checked :class:`FragmentCheckpoint` envelope.

The envelope is what moves: live fragment migration, node rejoin after a
crash and coordinator failover (:mod:`repro.federation.fsps`) all transfer
state exclusively through checkpoints, never through shared live objects, so
a restored component shares no mutable structures with its source.
"""

from .checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointError,
    FragmentCheckpoint,
    batch_from_state,
    batch_to_state,
    block_from_state,
    block_to_state,
    tuple_from_state,
    tuple_to_state,
)
from .ledger import DEDUPLICATE, DELIVER, ResultLedger

__all__ = [
    "CHECKPOINT_VERSION",
    "CheckpointError",
    "DEDUPLICATE",
    "DELIVER",
    "FragmentCheckpoint",
    "ResultLedger",
    "batch_from_state",
    "batch_to_state",
    "block_from_state",
    "block_to_state",
    "tuple_from_state",
    "tuple_to_state",
]
