"""Figure 6 — correlation of the SIC metric with result correctness (aggregate workload).

The paper deploys AVG, COUNT and MAX queries on a single node, emulates
increasing degrees of overload with a random shedder, and shows that higher
result SIC values correspond to lower mean absolute (relative) error against
perfect processing, across five datasets.

The reproduction sweeps the node's overload factor instead of the number of
co-located queries (both simply control the fraction of tuples the random
shedder drops), runs each configuration twice from identical seeds — once
degraded, once without shedding — and compares the per-window results.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..metrics.errors import mean_absolute_relative_error
from ..workloads.aggregate import make_aggregate_query
from .common import ExperimentResult, config_with as _with, run_workload
from .testbeds import scaled_config

__all__ = ["run", "result_series", "QUERY_KINDS", "DATASETS"]

QUERY_KINDS = ("avg", "count", "max")
DATASETS = ("gaussian", "uniform", "exponential", "mixed", "planetlab")

# Output payload field per query kind.
_RESULT_FIELD = {"avg": "avg", "count": "count", "max": "max"}


def result_series(result_values: Sequence[Dict[str, object]], field: str) -> Dict[float, float]:
    """Index a query's result values by their window timestamp."""
    series: Dict[float, float] = {}
    for values in result_values:
        ts = values.get("_ts")
        value = values.get(field)
        if ts is None or value is None:
            continue
        series[round(float(ts), 6)] = float(value)
    return series


def _error_against_perfect(
    degraded: Dict[float, float], perfect: Dict[float, float]
) -> float:
    """Mean absolute relative error over common windows (1.0 when nothing aligns)."""
    common = sorted(set(degraded) & set(perfect))
    if not common:
        return 1.0
    return mean_absolute_relative_error(
        [degraded[ts] for ts in common], [perfect[ts] for ts in common]
    )


def run(
    scale: str = "small",
    seed: int = 0,
    kinds: Sequence[str] = QUERY_KINDS,
    datasets: Sequence[str] = DATASETS,
    overload_fractions: Optional[Sequence[float]] = None,
    rate: Optional[float] = None,
) -> ExperimentResult:
    """Reproduce Figure 6: (SIC, error) points per query kind and dataset."""
    # Result payloads are retained (off by default) because the error metric
    # aligns degraded and perfect runs window by window.
    base_config = _with(scaled_config(scale, seed=seed), retain_result_values=True)
    if overload_fractions is None:
        overload_fractions = (0.2, 0.4, 0.6, 0.8)
    if rate is None:
        rate = 100.0 if scale == "small" else 400.0

    experiment = ExperimentResult(
        name="fig06",
        description="SIC vs result error for the aggregate workload (random shedding)",
    )
    experiment.add_note(
        "overload emulated by sweeping the node capacity fraction; "
        "PlanetLab traces replaced by the synthetic planetlab-like generator"
    )

    for kind in kinds:
        field = _RESULT_FIELD[kind]
        for dataset in datasets:
            def builder(kind=kind, dataset=dataset):
                return [
                    make_aggregate_query(
                        kind, query_id=f"{kind}-{dataset}", rate=rate,
                        dataset=dataset, seed=seed,
                    )
                ]

            perfect_config = _with(base_config, shedder="none", capacity_fraction=1e6)
            perfect = run_workload(builder, num_nodes=1, config=perfect_config)
            perfect_series = result_series(
                perfect.result_values[f"{kind}-{dataset}"], field
            )

            for fraction in overload_fractions:
                degraded_config = _with(
                    base_config, shedder="random", capacity_fraction=fraction
                )
                degraded = run_workload(builder, num_nodes=1, config=degraded_config)
                degraded_series = result_series(
                    degraded.result_values[f"{kind}-{dataset}"], field
                )
                error = _error_against_perfect(degraded_series, perfect_series)
                experiment.add_row(
                    query=kind,
                    dataset=dataset,
                    capacity_fraction=fraction,
                    sic=degraded.mean_sic,
                    error=error,
                )
    return experiment
