"""Ablations of THEMIS design choices (called out in DESIGN.md).

Three design decisions of the paper are exercised in isolation:

* **updateSIC dissemination** (§5.2, Figure 4): with coordinator updates
  disabled, nodes balance only their local view and multi-fragment queries end
  up over- or under-served — global fairness degrades.
* **Highest-SIC-first selection** (Algorithm 1 line 16): keeping the
  highest-SIC tuples of the selected query maximises the SIC gained per unit
  of capacity; the ablation compares against lowest-first and random order.
* **STW duration** (§6): the STW must comfortably exceed the end-to-end
  latency; very short STWs under-measure the result SIC.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core.balance_sic import BalanceSicConfig, SelectionStrategy
from ..core.shedding import BalanceSicShedder
from ..federation.deployment import RandomPlacement
from ..simulation.simulator import Simulator
from ..workloads.generators import WorkloadSpec, generate_complex_workload
from .common import ExperimentResult, build_federation, config_with, run_workload
from .testbeds import scaled_config

__all__ = ["run_update_sic_ablation", "run_selection_ablation", "run_stw_ablation"]


def _default_spec(scale: str, seed: int, fragments=(2, 3)) -> WorkloadSpec:
    return WorkloadSpec(
        num_queries={"small": 16, "medium": 60}.get(scale, 120),
        fragments_per_query=fragments,
        kinds=("avg-all", "top5", "cov"),
        source_rate=10.0 if scale == "small" else 20.0,
        sources_per_avg_all_fragment=3,
        machines_per_top5_fragment=2,
        seed=seed,
    )


def run_update_sic_ablation(
    scale: str = "small", seed: int = 0, num_nodes: int = 4
) -> ExperimentResult:
    """Fairness with and without coordinator SIC dissemination (Figure 4)."""
    base = scaled_config(scale, seed=seed, capacity_fraction=0.4)
    spec = _default_spec(scale, seed)
    experiment = ExperimentResult(
        name="ablation_updatesic",
        description="BALANCE-SIC with vs without updateSIC dissemination",
    )
    for enabled in (True, False):
        config = config_with(base, enable_sic_updates=enabled)
        result = run_workload(
            lambda: generate_complex_workload(spec),
            num_nodes=num_nodes,
            config=config,
            shedder_name="balance-sic",
            placement_strategy=RandomPlacement(seed=seed),
        )
        experiment.add_row(
            update_sic="enabled" if enabled else "disabled",
            jains_index=result.jains_index,
            std_sic=result.std_sic,
            mean_sic=result.mean_sic,
        )
    return experiment


def run_selection_ablation(
    scale: str = "small", seed: int = 0, num_nodes: int = 4
) -> ExperimentResult:
    """Within-query tuple selection order (highest SIC / lowest SIC / random)."""
    base = scaled_config(scale, seed=seed, capacity_fraction=0.4)
    spec = _default_spec(scale, seed)
    experiment = ExperimentResult(
        name="ablation_selection",
        description="tuple selection order within the minimum-SIC query",
    )
    for strategy in SelectionStrategy.ALL:
        queries = generate_complex_workload(spec)
        system = build_federation(
            queries,
            num_nodes=num_nodes,
            config=base,
            shedder_name="balance-sic",
            placement_strategy=RandomPlacement(seed=seed),
        )
        for node in system.nodes.values():
            node.shedder = BalanceSicShedder(
                config=BalanceSicConfig(selection_strategy=strategy), seed=seed
            )
        result = Simulator(system, base).run()
        experiment.add_row(
            selection=strategy,
            jains_index=result.jains_index,
            mean_sic=result.mean_sic,
            shed_fraction=result.shed_fraction,
        )
    return experiment


def run_stw_ablation(
    scale: str = "small",
    seed: int = 0,
    stw_values: Optional[Sequence[float]] = None,
) -> ExperimentResult:
    """Mean measured SIC of an underloaded deployment for several STW sizes."""
    base = scaled_config(scale, seed=seed, capacity_fraction=1e6, shedder="none")
    if stw_values is None:
        stw_values = (2.0, 4.0, 6.0, 10.0) if scale == "small" else (2.0, 5.0, 10.0, 100.0)
    spec = _default_spec(scale, seed, fragments=2)
    experiment = ExperimentResult(
        name="ablation_stw",
        description="measured SIC of an underloaded deployment vs STW duration",
    )
    experiment.add_note(
        "the paper reports 0.97-1.01 for STW of 10 and 100 s; short STWs "
        "under-measure because in-flight windows fall outside the STW"
    )
    for stw in stw_values:
        config = config_with(base, stw_seconds=float(stw))
        result = run_workload(
            lambda: generate_complex_workload(spec),
            num_nodes=2,
            config=config,
            shedder_name="none",
        )
        experiment.add_row(
            stw_seconds=stw,
            mean_sic=result.mean_sic,
            jains_index=result.jains_index,
        )
    return experiment
