"""Figure 12 — scalability with the number of nodes.

A fixed population of complex queries (500 in the paper, 1–6 fragments,
Zipf-skewed placement) is deployed on an increasing number of nodes.  Adding
nodes adds processing capacity, so the mean SIC increases, while BALANCE-SIC
keeps Jain's index close to 1 regardless of the node count.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..federation.deployment import RoundRobinPlacement, ZipfPlacement
from ..workloads.generators import (
    WorkloadSpec,
    compute_node_budgets,
    generate_complex_workload,
)
from .common import ExperimentResult, run_workload
from .testbeds import scaled_config

__all__ = ["run", "node_counts_for_scale"]


def node_counts_for_scale(scale: str) -> List[int]:
    if scale == "small":
        return [3, 4, 6, 8]
    if scale == "medium":
        return [6, 9, 12, 16]
    return [9, 12, 18, 24]


def run(
    scale: str = "small",
    seed: int = 0,
    node_counts: Optional[Sequence[int]] = None,
    num_queries: Optional[int] = None,
) -> ExperimentResult:
    """Reproduce Figure 12: fairness and mean SIC vs number of nodes."""
    config = scaled_config(scale, seed=seed)
    counts = list(node_counts) if node_counts else node_counts_for_scale(scale)
    if num_queries is None:
        num_queries = {"small": 40, "medium": 150}.get(scale, 500)

    experiment = ExperimentResult(
        name="fig12",
        description="BALANCE-SIC fairness for an increasing number of nodes",
    )
    experiment.add_note(
        f"{num_queries} complex queries (1-6 fragments) with Zipf-skewed placement; "
        "total node capacity held at the smallest node count's aggregate budget"
    )

    spec = WorkloadSpec(
        num_queries=num_queries,
        fragments_per_query=(1, 2, 3, 4, 5, 6),
        kinds=("avg-all", "top5", "cov"),
        source_rate=8.0 if scale == "small" else 20.0,
        sources_per_avg_all_fragment=3,
        machines_per_top5_fragment=2,
        seed=seed,
    )

    # Budget per node is fixed (independent of the node count), so more nodes
    # genuinely add capacity — mirroring the paper where every Emulab node has
    # the same hardware.
    reference_queries = generate_complex_workload(spec)
    reference_nodes = [f"node-{i}" for i in range(counts[0])]
    reference_fragments = [f for q in reference_queries for f in q.fragment_list()]
    reference_placement = RoundRobinPlacement().place(
        reference_fragments, reference_nodes
    )
    reference_budgets = compute_node_budgets(
        reference_queries,
        reference_placement,
        shedding_interval=config.shedding_interval,
        capacity_fraction=config.capacity_fraction,
        node_ids=reference_nodes,
    )
    per_node_budget = sum(reference_budgets.values()) / len(reference_budgets)

    for count in counts:
        node_ids = [f"node-{i}" for i in range(count)]
        result = run_workload(
            lambda: generate_complex_workload(spec),
            num_nodes=count,
            config=config,
            shedder_name="balance-sic",
            placement_strategy=ZipfPlacement(exponent=1.0, seed=seed),
            node_budgets={node_id: per_node_budget for node_id in node_ids},
        )
        experiment.add_row(
            nodes=count,
            mean_sic=result.mean_sic,
            jains_index=result.jains_index,
            shed_fraction=result.shed_fraction,
        )
    return experiment
