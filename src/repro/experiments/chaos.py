"""Chaos scenario — fairness under a sustained seeded fault schedule.

The paper argues SIC-driven shedding keeps federated stream processing fair
under adverse conditions; this experiment makes the conditions genuinely
adverse.  One federation runs the full resilience stack — reliable delivery
for data/result messages, heartbeat failure detection with automatic
checkpoint-restore recovery, periodic checkpoints — through a deterministic
:class:`~repro.faults.FaultPlan`, phase by phase:

1. **steady** — no faults; the resilience stack idles (zero retransmits).
2. **lossy** — sustained message loss, duplication and delay jitter on every
   link; one query's coordinator also crashes and fails over mid-phase.  The
   reliable channel retransmits and dedups; ``updateSIC`` stays best-effort
   and just gets lossier.
3. **partition** — one node is fully isolated (data *and* heartbeats).  The
   failure detector eventually declares it dead — the textbook false
   positive, handled like a real crash — while the reliable channel buffers
   the severed links' traffic and redelivers it when the partition heals.
4. **crash** — a node's process dies silently; heartbeats stop, the detector
   times out, crash-fails it, and — once the machine "reboots" — rejoins it
   from the last coordinator-held checkpoints, automatically.
5. **recovered** — no faults; the federation is whole again.

A fault-free control run (same stack, same seeds, empty plan) provides the
baseline columns.  The report includes per-phase fairness for both runs,
detection/recovery latencies, and the transport's exactly-once ledger: after
a final drain, every data/result message ever sent is delivered, a counted
duplicate or a counted expiry — zero duplicated and zero silently-lost
result tuples.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.shedding import make_shedder
from ..faults import (
    CoordinatorCrash,
    FaultInjector,
    FaultPlan,
    LossEpisode,
    NodeCrash,
    PartitionEpisode,
)
from ..federation.deployment import Placement
from ..federation.fsps import FederatedSystem
from ..federation.network import Network, ReliabilityConfig, UniformLatency
from ..federation.node import FspsNode
from ..runtime import EventRuntime, FailureDetector
from ..simulation.config import SimulationConfig
from ..workloads.aggregate import make_aggregate_query
from ..workloads.generators import compute_node_budgets
from ..workloads.spec import WorkloadQuery
from .churn import _PhaseTracker
from .common import ExperimentResult
from .testbeds import scaled_config

__all__ = ["run"]

NUM_NODES = 3
NUM_QUERIES = 6
KINDS = ("avg", "max", "count")
PARTITIONED_NODE = "node-1"
CRASHED_NODE = "node-2"
FAILOVER_QUERY = "chaos-q0"

PHASE_SECONDS = {"small": 5.0, "medium": 10.0, "paper": 30.0}

# Lossy-phase parameters: ≥5% drop plus duplication, as the reliability
# acceptance bar demands, and enough jitter to reorder batches in flight.
DROP_PROBABILITY = 0.08
DUPLICATE_PROBABILITY = 0.03
JITTER_SECONDS = 0.02

PHASES = ("steady", "lossy", "partition", "crash", "recovered")


def _make_query(index: int, rate: float, seed: int) -> WorkloadQuery:
    return make_aggregate_query(
        KINDS[index % len(KINDS)],
        query_id=f"chaos-q{index}",
        rate=rate,
        seed=seed + index,
    )


def _node_for(index: int) -> str:
    return f"node-{index % NUM_NODES}"


def _build(
    base: SimulationConfig, rate: float, seed: int
) -> "tuple[FederatedSystem, EventRuntime, FailureDetector, Dict[str, float]]":
    """One federation with the full resilience stack attached."""
    queries = [_make_query(i, rate, seed) for i in range(NUM_QUERIES)]
    placement = Placement(
        assignments={
            fragment_id: _node_for(i)
            for i, query in enumerate(queries)
            for fragment_id in query.fragments
        }
    )
    node_ids = [f"node-{i}" for i in range(NUM_NODES)]
    budgets = compute_node_budgets(
        queries,
        placement,
        shedding_interval=base.shedding_interval,
        capacity_fraction=base.capacity_fraction,
        node_ids=node_ids,
    )
    system = FederatedSystem(
        stw_config=base.stw_config(),
        shedding_interval=base.shedding_interval,
        network=Network(
            UniformLatency(base.network_latency_seconds),
            reliability=ReliabilityConfig(),
        ),
    )

    def node_factory(node_id: str) -> FspsNode:
        index = node_ids.index(node_id)
        return FspsNode(
            node_id=node_id,
            shedder=make_shedder(base.shedder, seed=seed + index),
            budget_per_interval=budgets[node_id],
            stw_config=base.stw_config(),
        )

    for node_id in node_ids:
        system.add_node(node_factory(node_id))
    for i, query in enumerate(queries):
        system.deploy_query(
            query.query_id,
            query.fragments,
            query.sources,
            {fragment_id: _node_for(i) for fragment_id in query.fragments},
            nominal_rates=query.nominal_rates(),
        )
    # Periodic checkpoints feed both recovery paths: fragment restore on
    # rejoin and coordinator standby promotion on failover.
    runtime = EventRuntime(
        system, checkpoint_interval=4 * base.shedding_interval
    )
    detector = FailureDetector(
        runtime,
        interval=base.shedding_interval,
        timeout_intervals=4,
        node_factory=node_factory,
    )
    return system, runtime, detector, budgets


def _plan(warmup: float, phase_seconds: float, seed: int) -> FaultPlan:
    """The fault schedule, anchored at absolute simulated times."""
    p2 = warmup + phase_seconds  # lossy
    p3 = warmup + 2 * phase_seconds  # partition
    p4 = warmup + 3 * phase_seconds  # crash
    return FaultPlan(
        seed=seed,
        episodes=(
            LossEpisode(
                start=p2,
                end=p3,
                drop_probability=DROP_PROBABILITY,
                duplicate_probability=DUPLICATE_PROBABILITY,
                jitter_seconds=JITTER_SECONDS,
            ),
            CoordinatorCrash(at=p2 + phase_seconds / 2, query_id=FAILOVER_QUERY),
            PartitionEpisode(
                start=p3 + 0.5,
                end=p4 - 1.0,
                group_a=(PARTITIONED_NODE,),
                # empty group_b: full isolation — data, results, updateSIC
                # and heartbeats all stop crossing.
                group_b=(),
            ),
            NodeCrash(
                at=p4 + 0.25,
                node_id=CRASHED_NODE,
                repair_after=phase_seconds / 2,
            ),
        ),
    )


def _ledger_notes(name: str, system: FederatedSystem) -> List[str]:
    """Close and summarise the exactly-once ledger of one run."""
    system.drain_network()
    stats = system.network.stats
    notes: List[str] = []
    for kind in ("data", "result"):
        sent = stats.sent.get(kind, 0)
        delivered = stats.delivered.get(kind, 0)
        expired = stats.expired.get(kind, 0)
        duplicates = stats.duplicates.get(kind, 0)
        retransmits = stats.retransmits.get(kind, 0)
        lost = sent - delivered - expired
        notes.append(
            f"{name} {kind}: {sent} sent = {delivered} delivered + "
            f"{expired} expired ({lost} unaccounted); {duplicates} duplicate "
            f"copies suppressed, {retransmits} retransmissions"
        )
    notes.append(
        f"{name} result tuples: {stats.tuples_sent.get('result', 0)} sent, "
        f"{stats.tuples_delivered.get('result', 0)} delivered, "
        f"{stats.tuples_expired.get('result', 0)} expired; "
        f"{system.dispatch_dropped} deliveries dropped at dispatch "
        f"(departed components)"
    )
    return notes


def run(
    scale: str = "small",
    seed: int = 0,
    phase_seconds: Optional[float] = None,
    rate: Optional[float] = None,
) -> ExperimentResult:
    """Run the chaos scenario against a fault-free control."""
    base: SimulationConfig = scaled_config(scale, seed=seed)
    if phase_seconds is None:
        phase_seconds = PHASE_SECONDS.get(scale, PHASE_SECONDS["small"])
    if rate is None:
        rate = 80.0

    experiment = ExperimentResult(
        name="chaos",
        description="fairness under seeded loss, duplication, partition and "
        "crash faults (reliable delivery + heartbeat recovery) vs a "
        "fault-free control",
    )
    experiment.add_note(
        f"{NUM_NODES} nodes, {NUM_QUERIES} queries, phases of "
        f"{phase_seconds:.0f}s; lossy phase drops {DROP_PROBABILITY:.0%} and "
        f"duplicates {DUPLICATE_PROBABILITY:.0%} of transmissions with "
        f"{JITTER_SECONDS * 1000:.0f}ms jitter; partition isolates "
        f"{PARTITIONED_NODE!r}; {CRASHED_NODE!r} crashes silently and "
        f"auto-rejoins from checkpoints"
    )

    # Fault-free control: identical stack, no injector.
    control_system, control_runtime, control_detector, _ = _build(base, rate, seed)
    control_rows: List[Dict[str, object]] = []
    control_runtime.run(base.warmup_seconds)
    control_tracker = _PhaseTracker(control_system)
    control_detector.on_node_failed = control_tracker.note_failed_node
    for phase in PHASES:
        control_tracker.mark()
        control_runtime.run(phase_seconds)
        control_rows.append(control_tracker.phase_row(phase))
    control_notes = _ledger_notes("control", control_system)
    control_runtime.close()

    # Chaos run: same federation under the fault plan.
    system, runtime, detector, _ = _build(base, rate, seed)
    injector = FaultInjector(runtime, _plan(base.warmup_seconds, phase_seconds, seed))
    runtime.run(base.warmup_seconds)
    tracker = _PhaseTracker(system)
    detector.on_node_failed = tracker.note_failed_node
    for phase, control_row in zip(PHASES, control_rows):
        tracker.mark()
        runtime.run(phase_seconds)
        row = tracker.phase_row(phase)
        row["control_mean_sic"] = control_row["mean_sic"]
        row["control_jains"] = control_row["jains_index"]
        experiment.add_row(**row)

    # Detection / recovery latencies (the partition phase typically adds
    # false-positive incidents on top of the real crash).
    for record in detector.detections:
        experiment.add_note(
            f"detected {record['node_id']!r} dead at "
            f"t={record['declared_at']:.2f}s, "
            f"{record['detection_latency']:.2f}s after its last heartbeat"
        )
    for record in detector.recoveries:
        experiment.add_note(
            f"recovered {record['node_id']!r} at t={record['recovered_at']:.2f}s, "
            f"{record['recovery_latency']:.2f}s after it was declared dead"
        )
    fault_summary = injector.summary()
    experiment.add_note(
        f"injected faults: {fault_summary['drops_by_cause']} transmissions "
        f"dropped, {fault_summary['duplicated']} duplicated; timeline "
        f"{[(round(t, 2), what) for t, what in fault_summary['timeline']]}"
    )
    for note in _ledger_notes("chaos", system) + control_notes:
        experiment.add_note(note)
    if control_detector.detections:
        experiment.add_note(
            "WARNING: the fault-free control saw failure detections — "
            "the detector is not quiescent without faults"
        )
    injector.close()
    detector.close()
    runtime.close()
    control_detector.close()
    return experiment
