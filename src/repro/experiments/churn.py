"""Churn scenario — dynamic query & cluster lifecycle under the event runtime.

The paper's evaluation deploys a fixed federation and a fixed query
population; real federations churn.  This experiment exercises the
discrete-event runtime's lifecycle API mid-run:

1. **steady** — the initial query population runs on a 3-node federation
   under permanent overload (C2);
2. **arrivals** — additional queries are deployed mid-run with no budget
   increase, deepening the overload; BALANCE-SIC must fold the newcomers into
   the fair allocation;
3. **departures** — part of the original population is undeployed
   (coordinator teardown, source-generation stop), releasing capacity to the
   remaining queries;
4. **node-failure** — one node crash-fails; the sources feeding its fragments
   are unrouted, the affected queries' result SIC collapses and the shedder
   on the surviving nodes rebalances the rest.

Each phase reports the mean result SIC over the phase, Jain's Fairness Index
across the queries *active* in that phase, and the shed fraction — so the
table shows fairness before and after every lifecycle change.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core.fairness import summarize_fairness
from ..core.shedding import make_shedder
from ..federation.deployment import Placement
from ..federation.fsps import FederatedSystem
from ..federation.network import Network, UniformLatency
from ..federation.node import FspsNode
from ..runtime import EventRuntime
from ..simulation.config import SimulationConfig
from ..workloads.aggregate import make_aggregate_query
from ..workloads.generators import compute_node_budgets
from ..workloads.spec import WorkloadQuery
from .common import ExperimentResult
from .testbeds import scaled_config

__all__ = ["run"]

NUM_NODES = 3
INITIAL_QUERIES = 6
ARRIVING_QUERIES = 3
DEPARTING_QUERIES = 2
FAILED_NODE = f"node-{NUM_NODES - 1}"
KINDS = ("avg", "max", "count")

PHASE_SECONDS = {"small": 5.0, "medium": 10.0, "paper": 30.0}


def _make_query(index: int, rate: float, seed: int) -> WorkloadQuery:
    return make_aggregate_query(
        KINDS[index % len(KINDS)],
        query_id=f"churn-q{index}",
        rate=rate,
        seed=seed + index,
    )


def _node_for(index: int) -> str:
    return f"node-{index % NUM_NODES}"


def _placement(query: WorkloadQuery, node_id: str) -> Dict[str, str]:
    return {fragment_id: node_id for fragment_id in query.fragments}


class _PhaseTracker:
    """Per-phase aggregation over the coordinators' snapshot histories."""

    def __init__(self, system: FederatedSystem) -> None:
        self.system = system
        self._marks: Dict[str, int] = {}
        # Shed/received counters of failed nodes would otherwise vanish with
        # the node object; fold them in as they leave the federation.
        self.lost_shed = 0
        self.lost_received = 0
        self._last_shed = 0
        self._last_received = 0
        self.mark()

    def note_failed_node(self, node: FspsNode) -> None:
        """Fold in the counters of a node leaving the federation (crash or
        graceful decommission) so phase deltas stay consistent."""
        self.lost_shed += node.stats.shed_tuples
        self.lost_received += node.stats.received_tuples

    # A decommissioned node's counters leave the same way a failed one's do.
    note_departed_node = note_failed_node

    def _totals(self) -> "tuple[int, int]":
        shed = self.system.total_shed_tuples() + self.lost_shed
        received = self.system.total_received_tuples() + self.lost_received
        return shed, received

    def mark(self) -> None:
        """Start a new phase: remember every active query's history length."""
        self._marks = {
            coordinator.query_id: len(coordinator.tracker.history)
            for coordinator in self.system.coordinators.all()
        }
        self._last_shed, self._last_received = self._totals()

    def phase_row(self, phase: str) -> Dict[str, object]:
        """Summarise the samples taken since the last :meth:`mark`."""
        means: Dict[str, float] = {}
        for coordinator in self.system.coordinators.all():
            start = self._marks.get(coordinator.query_id, 0)
            samples = [value for _, value in coordinator.tracker.history[start:]]
            if samples:
                means[coordinator.query_id] = sum(samples) / len(samples)
        fairness = summarize_fairness(means)
        shed, received = self._totals()
        phase_shed = shed - self._last_shed
        phase_received = received - self._last_received
        return {
            "phase": phase,
            "queries": len(means),
            "nodes": len(self.system.nodes),
            "mean_sic": fairness.mean,
            "jains_index": fairness.jains_index,
            "shed_fraction": phase_shed / phase_received if phase_received else 0.0,
        }


def run(
    scale: str = "small",
    seed: int = 0,
    phase_seconds: Optional[float] = None,
    rate: Optional[float] = None,
) -> ExperimentResult:
    """Run the churn scenario and report per-phase fairness."""
    base: SimulationConfig = scaled_config(scale, seed=seed)
    if phase_seconds is None:
        phase_seconds = PHASE_SECONDS.get(scale, PHASE_SECONDS["small"])
    if rate is None:
        rate = 80.0

    initial = [_make_query(i, rate, seed) for i in range(INITIAL_QUERIES)]
    placement = Placement(
        assignments={
            fragment_id: _node_for(i)
            for i, query in enumerate(initial)
            for fragment_id in query.fragments
        }
    )
    node_ids = [f"node-{i}" for i in range(NUM_NODES)]
    # Budgets are sized once, from the initial population: arrivals deepen
    # the overload, departures relax it — capacity does not follow the churn.
    budgets = compute_node_budgets(
        initial,
        placement,
        shedding_interval=base.shedding_interval,
        capacity_fraction=base.capacity_fraction,
        node_ids=node_ids,
    )

    system = FederatedSystem(
        stw_config=base.stw_config(),
        shedding_interval=base.shedding_interval,
        network=Network(UniformLatency(base.network_latency_seconds)),
    )
    for index, node_id in enumerate(node_ids):
        system.add_node(
            FspsNode(
                node_id=node_id,
                shedder=make_shedder(base.shedder, seed=seed + index),
                budget_per_interval=budgets[node_id],
                stw_config=base.stw_config(),
            )
        )
    for i, query in enumerate(initial):
        system.deploy_query(
            query.query_id,
            query.fragments,
            query.sources,
            _placement(query, _node_for(i)),
            nominal_rates=query.nominal_rates(),
        )

    runtime = EventRuntime(system)
    experiment = ExperimentResult(
        name="churn",
        description="query arrivals/departures and a node failure mid-run "
        "(event runtime lifecycle)",
    )
    experiment.add_note(
        f"{NUM_NODES} nodes, budgets fixed from the initial "
        f"{INITIAL_QUERIES}-query population at capacity fraction "
        f"{base.capacity_fraction}; phases of {phase_seconds:.0f}s"
    )

    # Warm-up outside the reported phases.
    runtime.run(base.warmup_seconds)
    tracker = _PhaseTracker(system)

    # Phase 1 — steady state.
    runtime.run(phase_seconds)
    experiment.add_row(**tracker.phase_row("steady"))

    # Phase 2 — query arrivals (same budgets, deeper overload).
    tracker.mark()
    for j in range(ARRIVING_QUERIES):
        index = INITIAL_QUERIES + j
        query = _make_query(index, rate, seed)
        runtime.deploy_query(
            query.query_id,
            query.fragments,
            query.sources,
            _placement(query, _node_for(index)),
            nominal_rates=query.nominal_rates(),
        )
    runtime.run(phase_seconds)
    experiment.add_row(**tracker.phase_row("arrivals"))

    # Phase 3 — query departures (capacity released to the rest).
    tracker.mark()
    for i in range(DEPARTING_QUERIES):
        runtime.undeploy_query(f"churn-q{i}")
    runtime.run(phase_seconds)
    experiment.add_row(**tracker.phase_row("departures"))

    # Phase 4 — a node crash-fails; its queries' sources are unrouted.
    tracker.mark()
    failed = runtime.fail_node(FAILED_NODE)
    tracker.note_failed_node(failed)
    runtime.run(phase_seconds)
    row = tracker.phase_row("node-failure")
    experiment.add_row(**row)
    experiment.add_note(
        f"failed node {FAILED_NODE!r} hosted "
        f"{len(failed.fragments)} fragment(s); their queries degrade to "
        f"SIC 0 while the survivors keep their allocation"
    )
    runtime.close()
    return experiment
