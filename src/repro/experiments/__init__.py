"""Experiment harness: one module per figure/table of the paper's evaluation.

See DESIGN.md for the experiment index and EXPERIMENTS.md for a reference run
of every experiment with the paper-vs-measured comparison.
"""

from .common import ExperimentResult, build_federation, config_with, format_table, run_workload

__all__ = [
    "ExperimentResult",
    "build_federation",
    "config_with",
    "format_table",
    "run_workload",
]
