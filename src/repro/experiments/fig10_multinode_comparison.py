"""Figure 10 — BALANCE-SIC vs random shedding on a multi-node deployment.

The paper's headline fairness result: complex queries whose fragments span 18
nodes are shed either with the BALANCE-SIC fair shedder or with the random
baseline, for fragment counts of 2–6 per query plus a "mixed" case (1–6
fragments).  BALANCE-SIC achieves a markedly higher Jain's Fairness Index
(33 % better in the mixed case), a lower spread (std) of per-query SIC values
and a higher mean SIC.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Union

from ..federation.deployment import RandomPlacement
from ..workloads.generators import WorkloadSpec, generate_complex_workload
from .common import ExperimentResult, config_with, run_workload
from .testbeds import scaled_config

__all__ = ["run", "FRAGMENT_CASES"]

# Fragment-count cases of Figure 10; "mixed" draws uniformly from 1-6.
FRAGMENT_CASES: Sequence[Union[int, str]] = (2, 3, 4, 5, 6, "mixed")


def run(
    scale: str = "small",
    seed: int = 0,
    cases: Sequence[Union[int, str]] = FRAGMENT_CASES,
    num_nodes: Optional[int] = None,
    total_fragments: Optional[int] = None,
    capacity_fraction: float = 0.4,
) -> ExperimentResult:
    """Reproduce Figure 10: Jain's index, std and mean SIC per shedder."""
    base_config = scaled_config(scale, seed=seed, capacity_fraction=capacity_fraction)
    if num_nodes is None:
        num_nodes = {"small": 6, "medium": 9}.get(scale, 18)
    if total_fragments is None:
        total_fragments = {"small": 120, "medium": 400}.get(scale, 2000)

    experiment = ExperimentResult(
        name="fig10",
        description="BALANCE-SIC vs random shedding across fragment counts",
    )
    experiment.add_note(
        f"{total_fragments} fragments total on {num_nodes} nodes; "
        "fragments placed uniformly at random (distinct nodes per query)"
    )

    for case in cases:
        if case == "mixed":
            fragments_per_query: Union[int, Sequence[int]] = (1, 2, 3, 4, 5, 6)
            mean_fragments = 3.5
        else:
            fragments_per_query = int(case)
            mean_fragments = float(case)
        num_queries = max(2, int(round(total_fragments / mean_fragments)))

        spec = WorkloadSpec(
            num_queries=num_queries,
            fragments_per_query=fragments_per_query,
            kinds=("avg-all", "top5", "cov"),
            source_rate=8.0 if scale == "small" else 20.0,
            sources_per_avg_all_fragment=3,
            machines_per_top5_fragment=2,
            seed=seed,
        )

        for shedder in ("balance-sic", "random"):
            result = run_workload(
                lambda: generate_complex_workload(spec),
                num_nodes=num_nodes,
                config=config_with(base_config, shedder=shedder),
                shedder_name=shedder,
                placement_strategy=RandomPlacement(seed=seed),
                budget_mode="uniform",
            )
            experiment.add_row(
                fragments=case,
                shedder=shedder,
                queries=num_queries,
                jains_index=result.jains_index,
                std_sic=result.std_sic,
                mean_sic=result.mean_sic,
                shed_fraction=result.shed_fraction,
            )
    return experiment


def improvement_summary(experiment: ExperimentResult) -> Dict[str, float]:
    """Relative Jain's-index improvement of BALANCE-SIC over random, per case."""
    by_case: Dict[str, Dict[str, float]] = {}
    for row in experiment.rows:
        case = str(row["fragments"])
        by_case.setdefault(case, {})[str(row["shedder"])] = float(row["jains_index"])
    improvements: Dict[str, float] = {}
    for case, values in by_case.items():
        fair = values.get("balance-sic")
        rand = values.get("random")
        if fair is None or rand is None or rand == 0:
            continue
        improvements[case] = (fair - rand) / rand
    return improvements
