"""Figure 9 — effect of the shedding interval on BALANCE-SIC fairness.

The paper deploys 200 complex queries (1–3 fragments each) on 6 nodes and
varies the shedding interval between 25 ms and 250 ms; fairness is insensitive
to the interval (Jain's index stays high, the mean SIC barely moves).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..workloads.generators import WorkloadSpec, generate_complex_workload
from .common import ExperimentResult, config_with, run_workload
from .testbeds import scaled_config

__all__ = ["run", "INTERVALS_SECONDS"]

INTERVALS_SECONDS = (0.025, 0.05, 0.1, 0.15, 0.2, 0.25)


def run(
    scale: str = "small",
    seed: int = 0,
    intervals: Sequence[float] = INTERVALS_SECONDS,
    num_queries: Optional[int] = None,
    num_nodes: Optional[int] = None,
) -> ExperimentResult:
    """Reproduce Figure 9: mean SIC and Jain's index vs shedding interval."""
    base_config = scaled_config(scale, seed=seed)
    if num_queries is None:
        num_queries = {"small": 20, "medium": 60}.get(scale, 200)
    if num_nodes is None:
        num_nodes = {"small": 3, "medium": 4}.get(scale, 6)

    experiment = ExperimentResult(
        name="fig09",
        description="BALANCE-SIC fairness for different shedding intervals",
    )
    experiment.add_note(
        f"{num_queries} complex queries with 1-3 fragments on {num_nodes} nodes"
    )

    spec = WorkloadSpec(
        num_queries=num_queries,
        fragments_per_query=(1, 2, 3),
        kinds=("avg-all", "top5", "cov"),
        source_rate=10.0 if scale == "small" else 20.0,
        sources_per_avg_all_fragment=3,
        machines_per_top5_fragment=2,
        seed=seed,
    )

    for interval in intervals:
        config = config_with(
            base_config,
            shedding_interval=interval,
            coordinator_update_interval=interval,
        )
        result = run_workload(
            lambda: generate_complex_workload(spec),
            num_nodes=num_nodes,
            config=config,
            shedder_name="balance-sic",
        )
        experiment.add_row(
            interval_ms=interval * 1000.0,
            mean_sic=result.mean_sic,
            jains_index=result.jains_index,
            shed_fraction=result.shed_fraction,
        )
    return experiment
