"""Command-line entry point for the experiment harness.

Usage::

    python -m repro.experiments.cli --list
    python -m repro.experiments.cli fig10 --scale small
    python -m repro.experiments.cli all --scale medium --output results.txt

Every experiment prints the rows the corresponding paper figure/table plots;
EXPERIMENTS.md records a reference run.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Callable, Dict, List, Optional

from ..simulation.config import RUNTIMES

from . import (
    ablations,
    chaos,
    churn,
    migration,
    fig06_sic_correlation_aggregate,
    fig07_sic_correlation_complex,
    fig08_single_node_fairness,
    fig09_shedding_interval,
    fig10_multinode_comparison,
    fig11_multifragment_ratio,
    fig12_scalability_nodes,
    fig13_scalability_queries,
    fig14_burstiness_wan,
    overhead,
    related_work_comparison,
    soak,
)
from .common import ExperimentResult

__all__ = ["EXPERIMENTS", "main", "run_experiment"]

EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "fig06": fig06_sic_correlation_aggregate.run,
    "fig07": fig07_sic_correlation_complex.run,
    "fig08": fig08_single_node_fairness.run,
    "fig09": fig09_shedding_interval.run,
    "fig10": fig10_multinode_comparison.run,
    "fig11": fig11_multifragment_ratio.run,
    "fig12": fig12_scalability_nodes.run,
    "fig13": fig13_scalability_queries.run,
    "fig14": fig14_burstiness_wan.run,
    "related_work": related_work_comparison.run,
    "overhead": overhead.run,
    "chaos": chaos.run,
    "churn": churn.run,
    "soak": soak.run,
    "migration": migration.run,
    "ablation_updatesic": ablations.run_update_sic_ablation,
    "ablation_selection": ablations.run_selection_ablation,
    "ablation_stw": ablations.run_stw_ablation,
}


def run_experiment(name: str, scale: str = "small", seed: int = 0) -> ExperimentResult:
    """Run one experiment by name."""
    try:
        runner = EXPERIMENTS[name]
    except KeyError:
        raise ValueError(
            f"unknown experiment {name!r}; known: {sorted(EXPERIMENTS)}"
        ) from None
    return runner(scale=scale, seed=seed)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "experiment",
        nargs="?",
        default=None,
        help="experiment name (e.g. fig10) or 'all'",
    )
    parser.add_argument("--scale", default="small", choices=("small", "medium", "paper"))
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--list", action="store_true", help="list experiments and exit")
    parser.add_argument("--output", default=None, help="also write the tables to a file")
    parser.add_argument(
        "--runtime",
        default=None,
        choices=RUNTIMES,
        help="execution-driver override for every run (sets REPRO_RUNTIME; "
        "'sharded' reruns the experiment on per-site shards, bit-identical "
        "to 'event')",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="shard count for --runtime sharded (sets REPRO_WORKERS)",
    )
    args = parser.parse_args(argv)

    # The experiments build their SimulationConfigs internally, so the
    # overrides travel the same way CI's matrix legs set them: via the
    # process-wide environment defaults.
    if args.runtime is not None:
        os.environ["REPRO_RUNTIME"] = args.runtime
    if args.workers is not None:
        os.environ["REPRO_WORKERS"] = str(args.workers)

    if args.list or args.experiment is None:
        print("available experiments:")
        for name in sorted(EXPERIMENTS):
            print(f"  {name}")
        return 0

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    chunks: List[str] = []
    for name in names:
        started = time.perf_counter()
        result = run_experiment(name, scale=args.scale, seed=args.seed)
        elapsed = time.perf_counter() - started
        table = result.to_table() + f"\n(completed in {elapsed:.1f}s)"
        print(table)
        print()
        chunks.append(table)

    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write("\n\n".join(chunks) + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
