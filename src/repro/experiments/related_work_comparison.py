"""§7.5 — comparison against centralised related work (FIT [34] and Zhao [44]).

Two deployments are compared:

* **Simple set-up** (matching the evaluation of [34]): many identical two-
  fragment AVG-all queries whose source-side operators are co-located on the
  same node (two nodes in total).  The FIT LP maximises total weighted
  throughput and serves a handful of queries fully while starving the rest;
  the concave (log) utility maximisation of [44] and BALANCE-SIC both produce
  a fair allocation.
* **Complex set-up**: a mix of AVG-all (3 fragments), TOP-5 and COV (2
  fragments) queries randomly placed on 4 nodes.  Here the utility-
  maximisation allocation is measurably less fair than BALANCE-SIC
  (the paper reports Jain's indices of 0.87 vs 0.97).
"""

from __future__ import annotations

from typing import Dict, List

from ..baselines.fit import FitOptimizer
from ..baselines.problem import problem_from_deployment
from ..baselines.utility_max import UtilityMaxOptimizer
from ..core.fairness import jains_index
from ..federation.deployment import ExplicitPlacement, RandomPlacement
from ..workloads.complex import make_avg_all_query, make_cov_query, make_top5_query
from ..workloads.generators import compute_node_budgets
from ..workloads.spec import WorkloadQuery
from .common import ExperimentResult, run_workload
from .testbeds import scaled_config

__all__ = ["run"]


def _simple_setup_queries(num_queries: int, rate: float, seed: int) -> List[WorkloadQuery]:
    """Two-fragment AVG-all queries for the simple set-up of [34]."""
    return [
        make_avg_all_query(
            query_id=f"simple-q{i}",
            num_fragments=2,
            sources_per_fragment=2,
            rate=rate,
            seed=seed * 31 + i,
        )
        for i in range(num_queries)
    ]


def _complex_setup_queries(scale: str, rate: float, seed: int) -> List[WorkloadQuery]:
    """The 20+20+20 query deployment of §7.5 (scaled down below 'paper')."""
    per_kind = {"small": 5, "medium": 10}.get(scale, 20)
    queries: List[WorkloadQuery] = []
    for i in range(per_kind):
        queries.append(
            make_avg_all_query(
                query_id=f"cmp-avgall-{i}",
                num_fragments=3,
                sources_per_fragment=3,
                rate=rate,
                seed=seed * 101 + i,
            )
        )
        queries.append(
            make_cov_query(
                query_id=f"cmp-cov-{i}", num_fragments=2, rate=rate, seed=seed * 103 + i
            )
        )
        queries.append(
            make_top5_query(
                query_id=f"cmp-top5-{i}",
                num_fragments=2,
                machines_per_fragment=2,
                rate=rate,
                seed=seed * 107 + i,
            )
        )
    return queries


def _simple_placement(queries: List[WorkloadQuery]) -> Dict[str, str]:
    """Co-locate every query's source-side fragment on node-0, the rest on node-1."""
    assignments: Dict[str, str] = {}
    for query in queries:
        ordered = query.fragment_order
        for position, fragment_id in enumerate(ordered):
            assignments[fragment_id] = "node-0" if position == 0 else "node-1"
    return assignments


def run(
    scale: str = "small",
    seed: int = 0,
    capacity_fraction: float = 0.3,
) -> ExperimentResult:
    """Reproduce the §7.5 comparison table."""
    config = scaled_config(scale, seed=seed, capacity_fraction=capacity_fraction)
    rate = 10.0 if scale == "small" else 20.0
    num_simple = {"small": 20, "medium": 40}.get(scale, 60)

    experiment = ExperimentResult(
        name="related_work",
        description="BALANCE-SIC vs FIT (throughput LP) and Zhao (log-utility max)",
    )
    experiment.add_note(
        "FIT solved with scipy.linprog (paper used GLPK); utility maximisation "
        "solved with SLSQP (paper used Matlab)"
    )

    # ---------------------------------------------------------- simple set-up
    queries = _simple_setup_queries(num_simple, rate, seed)
    node_ids = ["node-0", "node-1"]
    placement_map = _simple_placement(queries)
    strategy = ExplicitPlacement(placement_map)
    fragments = [f for q in queries for f in q.fragment_list()]
    placement = strategy.place(fragments, node_ids)
    budgets = compute_node_budgets(
        queries,
        placement,
        shedding_interval=config.shedding_interval,
        capacity_fraction=capacity_fraction,
        node_ids=node_ids,
    )
    problem = problem_from_deployment(
        queries, placement, budgets, config.shedding_interval
    )

    fit_solution = FitOptimizer().solve(problem)
    utility_solution = UtilityMaxOptimizer().solve(problem)

    experiment.add_row(
        setup="simple",
        approach="FIT [34]",
        jains_index=fit_solution.jains_index_of_fractions(),
        fully_served=fit_solution.queries_fully_served(),
        starved=fit_solution.queries_fully_starved(),
    )
    experiment.add_row(
        setup="simple",
        approach="Zhao [44]",
        jains_index=utility_solution.jains_index_of_fractions(),
        fully_served=utility_solution.queries_fully_served(),
        starved=utility_solution.queries_fully_starved(),
    )

    themis_simple = run_workload(
        lambda: _simple_setup_queries(num_simple, rate, seed),
        num_nodes=2,
        config=config,
        shedder_name="balance-sic",
        placement_strategy=ExplicitPlacement(placement_map),
        node_budgets=budgets,
    )
    experiment.add_row(
        setup="simple",
        approach="BALANCE-SIC",
        jains_index=themis_simple.jains_index,
        fully_served=sum(1 for v in themis_simple.per_query_sic.values() if v >= 0.9),
        starved=sum(1 for v in themis_simple.per_query_sic.values() if v <= 0.01),
    )

    # --------------------------------------------------------- complex set-up
    complex_queries = _complex_setup_queries(scale, rate, seed)
    complex_nodes = [f"node-{i}" for i in range(4)]
    complex_strategy = RandomPlacement(seed=seed)
    complex_fragments = [f for q in complex_queries for f in q.fragment_list()]
    complex_placement = complex_strategy.place(complex_fragments, complex_nodes)
    complex_budgets = compute_node_budgets(
        complex_queries,
        complex_placement,
        shedding_interval=config.shedding_interval,
        capacity_fraction=capacity_fraction,
        node_ids=complex_nodes,
    )
    complex_problem = problem_from_deployment(
        complex_queries, complex_placement, complex_budgets, config.shedding_interval
    )
    complex_utility = UtilityMaxOptimizer().solve(complex_problem)
    normalized = UtilityMaxOptimizer.normalized_log_outputs(
        complex_utility, complex_problem
    )
    experiment.add_row(
        setup="complex",
        approach="Zhao [44]",
        jains_index=jains_index(normalized.values()),
        fully_served=complex_utility.queries_fully_served(),
        starved=complex_utility.queries_fully_starved(),
    )

    themis_complex = run_workload(
        lambda: _complex_setup_queries(scale, rate, seed),
        num_nodes=4,
        config=config,
        shedder_name="balance-sic",
        placement_strategy=RandomPlacement(seed=seed),
        node_budgets=complex_budgets,
    )
    experiment.add_row(
        setup="complex",
        approach="BALANCE-SIC",
        jains_index=themis_complex.jains_index,
        fully_served=sum(1 for v in themis_complex.per_query_sic.values() if v >= 0.9),
        starved=sum(1 for v in themis_complex.per_query_sic.values() if v <= 0.01),
    )
    return experiment
