"""Figure 14 — burstiness and wide-area latencies.

THEMIS is deployed on 4 nodes in four configurations: LAN latencies (5 ms) or
emulated wide-area latencies (50 ms, "FSPS"), each with or without bursty
sources (10 % of the time a source emits at 10× its rate).  The mean SIC after
BALANCE-SIC shedding stays essentially unchanged across the four set-ups, for
both 20-query and 40-query populations.

The wide-area deployments use an *asymmetric* :class:`LatencyMatrix`
(:func:`repro.experiments.common.asymmetric_latency_matrix`): each ordered
inter-node pair splits into a slow 75 ms direction and a fast 25 ms return
(mean 50 ms), and the coordinators' ``updateSIC`` paths are skewed the same
way — real administrative domains rarely peer symmetrically, and the paper's
claim is that fairness survives the latency topology, not just its average.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..federation.deployment import RandomPlacement
from ..federation.network import LAN_LATENCY_SECONDS, WAN_LATENCY_SECONDS
from ..workloads.generators import WorkloadSpec, generate_complex_workload
from .common import (
    ExperimentResult,
    asymmetric_latency_matrix,
    config_with,
    run_workload,
)
from .testbeds import scaled_config

__all__ = ["run", "DEPLOYMENTS", "WAN_ASYMMETRY_SPREAD"]

# (label, latency_seconds, bursty)
DEPLOYMENTS = (
    ("LAN", LAN_LATENCY_SECONDS, False),
    ("FSPS", WAN_LATENCY_SECONDS, False),
    ("LAN bursty", LAN_LATENCY_SECONDS, True),
    ("FSPS bursty", WAN_LATENCY_SECONDS, True),
)

# Per-direction skew of the wide-area paths: base * (1 ± spread).
WAN_ASYMMETRY_SPREAD = 0.5


def run(
    scale: str = "small",
    seed: int = 0,
    query_counts: Optional[Sequence[int]] = None,
    num_nodes: int = 4,
) -> ExperimentResult:
    """Reproduce Figure 14: mean SIC per deployment set-up and population size."""
    base_config = scaled_config(scale, seed=seed, capacity_fraction=0.5)
    if query_counts is None:
        query_counts = (8, 16) if scale == "small" else (20, 40)

    experiment = ExperimentResult(
        name="fig14",
        description="BALANCE-SIC fairness with bursty sources and WAN latencies",
    )
    experiment.add_note(
        "two-fragment complex queries randomly assigned to 4 nodes; bursty "
        "sources emit at 10x their rate 10% of the time"
    )
    experiment.add_note(
        f"FSPS (wide-area) rows use asymmetric per-pair latencies: "
        f"{WAN_LATENCY_SECONDS * (1 + WAN_ASYMMETRY_SPREAD) * 1e3:.0f} ms "
        f"one way, "
        f"{WAN_LATENCY_SECONDS * (1 - WAN_ASYMMETRY_SPREAD) * 1e3:.0f} ms "
        f"back (mean {WAN_LATENCY_SECONDS * 1e3:.0f} ms)"
    )

    node_ids = [f"node-{i}" for i in range(num_nodes)]
    for num_queries in query_counts:
        for label, latency, bursty in DEPLOYMENTS:
            spec = WorkloadSpec(
                num_queries=num_queries,
                fragments_per_query=2,
                kinds=("avg-all", "top5", "cov"),
                source_rate=10.0 if scale == "small" else 20.0,
                sources_per_avg_all_fragment=3,
                machines_per_top5_fragment=2,
                bursty=bursty,
                seed=seed,
            )
            config = config_with(base_config, network_latency_seconds=latency)
            # The wide-area rows exercise asymmetric per-pair paths; LAN
            # rows keep the uniform model (a LAN is symmetric to first
            # order, and the contrast isolates the latency topology).
            latency_model = (
                asymmetric_latency_matrix(
                    node_ids, latency, spread=WAN_ASYMMETRY_SPREAD
                )
                if latency >= WAN_LATENCY_SECONDS
                else None
            )
            result = run_workload(
                lambda spec=spec: generate_complex_workload(spec),
                num_nodes=num_nodes,
                config=config,
                shedder_name="balance-sic",
                placement_strategy=RandomPlacement(seed=seed),
                budget_mode="uniform",
                latency_model=latency_model,
            )
            experiment.add_row(
                deployment=label,
                queries=num_queries,
                mean_sic=result.mean_sic,
                jains_index=result.jains_index,
                shed_fraction=result.shed_fraction,
            )
    return experiment
