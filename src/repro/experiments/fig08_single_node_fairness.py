"""Figure 8 — BALANCE-SIC fairness on a single node under increasing load.

The paper deploys an increasing number of complex-workload queries (30–330) on
one node with a fixed capacity; as the load grows the mean result SIC drops
(more tuples are shed) while Jain's Fairness Index stays close to 1 — the
shedder keeps penalising every query equally.

The reproduction keeps the node budget constant across the sweep (sized so the
smallest population roughly fits) and scales the population sizes to the
requested scale level.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..workloads.generators import WorkloadSpec, generate_complex_workload
from .common import ExperimentResult, config_with, run_workload
from .testbeds import scaled_config

__all__ = ["run", "query_counts_for_scale"]


def query_counts_for_scale(scale: str) -> List[int]:
    """Population sweep per scale (the paper uses 30–330 queries)."""
    if scale == "small":
        return [6, 12, 18, 24]
    if scale == "medium":
        return [15, 30, 45, 60, 75]
    return [30, 60, 90, 120, 150, 180, 210, 240, 270, 300, 330]


def run(
    scale: str = "small",
    seed: int = 0,
    query_counts: Optional[Sequence[int]] = None,
    source_rate: Optional[float] = None,
) -> ExperimentResult:
    """Reproduce Figure 8: mean SIC and Jain's index vs number of queries."""
    config = scaled_config(scale, seed=seed)
    counts = list(query_counts) if query_counts else query_counts_for_scale(scale)
    rate = source_rate if source_rate is not None else (10.0 if scale == "small" else 20.0)

    experiment = ExperimentResult(
        name="fig08",
        description="single-node BALANCE-SIC fairness vs number of queries",
    )
    experiment.add_note(
        f"node budget fixed at the offered load of the smallest population "
        f"({counts[0]} queries); larger populations overload the node further"
    )

    def spec_for(count: int) -> WorkloadSpec:
        return WorkloadSpec(
            num_queries=count,
            fragments_per_query=1,
            kinds=("avg-all", "top5", "cov"),
            source_rate=rate,
            sources_per_avg_all_fragment=3,
            machines_per_top5_fragment=2,
            seed=seed,
        )

    # Size the node budget once, from the smallest population at full capacity.
    from ..federation.deployment import RoundRobinPlacement
    from ..workloads.generators import compute_node_budgets

    base_queries = generate_complex_workload(spec_for(counts[0]))
    base_fragments = [f for q in base_queries for f in q.fragment_list()]
    base_placement = RoundRobinPlacement().place(base_fragments, ["node-0"])
    fixed_budgets = compute_node_budgets(
        base_queries,
        base_placement,
        shedding_interval=config.shedding_interval,
        capacity_fraction=1.0,
        node_ids=["node-0"],
    )

    for count in counts:
        result = run_workload(
            lambda count=count: generate_complex_workload(spec_for(count)),
            num_nodes=1,
            config=config_with(config, shedder="balance-sic"),
            node_budgets=fixed_budgets,
        )
        experiment.add_row(
            queries=count,
            mean_sic=result.mean_sic,
            jains_index=result.jains_index,
            shed_fraction=result.shed_fraction,
        )
    return experiment
