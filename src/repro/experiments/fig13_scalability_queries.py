"""Figure 13 — scalability with the number of queries.

The deployment (18 nodes in the paper) is fixed and the number of complex
queries grows from 180 to 900.  More queries mean more offered load on the
same capacity, so the mean SIC decreases, but the shedding stays fair (Jain's
index close to 1).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..federation.deployment import RandomPlacement, RoundRobinPlacement
from ..workloads.generators import (
    WorkloadSpec,
    compute_node_budgets,
    generate_complex_workload,
)
from .common import ExperimentResult, run_workload
from .testbeds import scaled_config

__all__ = ["run", "query_counts_for_scale"]


def query_counts_for_scale(scale: str) -> List[int]:
    if scale == "small":
        return [20, 40, 60, 80]
    if scale == "medium":
        return [60, 120, 180, 240]
    return [180, 240, 300, 360, 420, 480, 540, 600, 660, 720, 780, 840, 900]


def run(
    scale: str = "small",
    seed: int = 0,
    query_counts: Optional[Sequence[int]] = None,
    num_nodes: Optional[int] = None,
) -> ExperimentResult:
    """Reproduce Figure 13: fairness and mean SIC vs number of queries."""
    config = scaled_config(scale, seed=seed)
    counts = list(query_counts) if query_counts else query_counts_for_scale(scale)
    if num_nodes is None:
        num_nodes = {"small": 6, "medium": 9}.get(scale, 18)
    source_rate = 8.0 if scale == "small" else 20.0

    experiment = ExperimentResult(
        name="fig13",
        description="BALANCE-SIC fairness for an increasing number of queries",
    )
    experiment.add_note(
        f"fixed deployment on {num_nodes} nodes; node budgets sized for the "
        f"smallest population ({counts[0]} queries) and held constant"
    )

    def spec_for(count: int) -> WorkloadSpec:
        return WorkloadSpec(
            num_queries=count,
            fragments_per_query=(1, 2, 3),
            kinds=("avg-all", "top5", "cov"),
            source_rate=source_rate,
            sources_per_avg_all_fragment=3,
            machines_per_top5_fragment=2,
            seed=seed,
        )

    node_ids = [f"node-{i}" for i in range(num_nodes)]
    base_queries = generate_complex_workload(spec_for(counts[0]))
    base_fragments = [f for q in base_queries for f in q.fragment_list()]
    base_placement = RoundRobinPlacement().place(base_fragments, node_ids)
    fixed_budgets = compute_node_budgets(
        base_queries,
        base_placement,
        shedding_interval=config.shedding_interval,
        capacity_fraction=1.0,
        node_ids=node_ids,
    )

    for count in counts:
        result = run_workload(
            lambda count=count: generate_complex_workload(spec_for(count)),
            num_nodes=num_nodes,
            config=config,
            shedder_name="balance-sic",
            placement_strategy=RandomPlacement(seed=seed),
            node_budgets=fixed_budgets,
        )
        experiment.add_row(
            queries=count,
            mean_sic=result.mean_sic,
            jains_index=result.jains_index,
            shed_fraction=result.shed_fraction,
        )
    return experiment
