"""Figure 7 — correlation of the SIC metric with result correctness (complex workload).

* TOP-5 queries: the error metric is the normalised Kendall's distance between
  the degraded and the perfect top-5 lists of every window (Figure 7a).
* COV queries: random shedding produces a series of sample covariance values
  whose expectation matches the true covariance; the error metric is their
  standard deviation around the perfect value (Figure 7b).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Sequence

from ..metrics.errors import normalized_kendall_distance, std_around_reference
from ..workloads.complex import make_cov_query, make_top5_query
from .common import ExperimentResult, config_with, run_workload
from .testbeds import scaled_config

__all__ = ["run", "top5_lists_per_window", "cov_values"]

DATASETS = ("gaussian", "uniform", "exponential", "mixed", "planetlab")


def top5_lists_per_window(
    result_values: Sequence[Dict[str, object]]
) -> Dict[float, List[object]]:
    """Group TOP-5 result tuples into ranked id lists per window timestamp."""
    per_window: Dict[float, List[tuple]] = defaultdict(list)
    for values in result_values:
        ts = values.get("_ts")
        ident = values.get("id")
        rank = values.get("rank")
        if ts is None or ident is None or rank is None:
            continue
        per_window[round(float(ts), 6)].append((int(rank), ident))
    return {
        ts: [ident for _, ident in sorted(entries)]
        for ts, entries in per_window.items()
    }


def cov_values(result_values: Sequence[Dict[str, object]]) -> Dict[float, float]:
    """Per-window covariance values of a COV query."""
    series: Dict[float, float] = {}
    for values in result_values:
        ts = values.get("_ts")
        cov = values.get("cov")
        if ts is None or cov is None:
            continue
        series[round(float(ts), 6)] = float(cov)
    return series


def run(
    scale: str = "small",
    seed: int = 0,
    datasets: Sequence[str] = DATASETS,
    overload_fractions: Optional[Sequence[float]] = None,
) -> ExperimentResult:
    """Reproduce Figure 7: (SIC, error) points for TOP-5 and COV queries."""
    # Result payloads are retained (off by default) because the error metrics
    # align degraded and perfect runs window by window.
    base_config = config_with(
        scaled_config(scale, seed=seed), retain_result_values=True
    )
    if overload_fractions is None:
        overload_fractions = (0.2, 0.4, 0.6, 0.8)
    top5_rate = 20.0
    cov_rate = 100.0 if scale == "small" else 400.0

    experiment = ExperimentResult(
        name="fig07",
        description="SIC vs result error for TOP-5 (Kendall distance) and COV (std)",
    )
    experiment.add_note(
        "single-fragment deployments on one node with random shedding, matching §7.1"
    )

    for dataset in datasets:
        # ------------------------------------------------------------- TOP-5
        def top5_builder(dataset=dataset):
            return [
                make_top5_query(
                    query_id=f"top5-{dataset}",
                    num_fragments=1,
                    machines_per_fragment=5,
                    rate=top5_rate,
                    dataset=dataset,
                    seed=seed,
                )
            ]

        perfect_cfg = config_with(base_config, shedder="none", capacity_fraction=1e6)
        perfect = run_workload(top5_builder, num_nodes=1, config=perfect_cfg)
        perfect_lists = top5_lists_per_window(perfect.result_values[f"top5-{dataset}"])

        for fraction in overload_fractions:
            degraded_cfg = config_with(
                base_config, shedder="random", capacity_fraction=fraction
            )
            degraded = run_workload(top5_builder, num_nodes=1, config=degraded_cfg)
            degraded_lists = top5_lists_per_window(
                degraded.result_values[f"top5-{dataset}"]
            )
            common = sorted(set(perfect_lists) & set(degraded_lists))
            if common:
                distance = sum(
                    normalized_kendall_distance(degraded_lists[ts], perfect_lists[ts])
                    for ts in common
                ) / len(common)
            else:
                distance = 1.0
            experiment.add_row(
                query="top5",
                dataset=dataset,
                capacity_fraction=fraction,
                sic=degraded.mean_sic,
                error=distance,
            )

        # --------------------------------------------------------------- COV
        def cov_builder(dataset=dataset):
            return [
                make_cov_query(
                    query_id=f"cov-{dataset}",
                    num_fragments=1,
                    rate=cov_rate,
                    dataset=dataset,
                    seed=seed,
                )
            ]

        perfect = run_workload(cov_builder, num_nodes=1, config=perfect_cfg)
        perfect_cov = cov_values(perfect.result_values[f"cov-{dataset}"])
        perfect_mean = (
            sum(perfect_cov.values()) / len(perfect_cov) if perfect_cov else 0.0
        )

        for fraction in overload_fractions:
            degraded_cfg = config_with(
                base_config, shedder="random", capacity_fraction=fraction
            )
            degraded = run_workload(cov_builder, num_nodes=1, config=degraded_cfg)
            degraded_cov = cov_values(degraded.result_values[f"cov-{dataset}"])
            spread = std_around_reference(
                list(degraded_cov.values()), reference=perfect_mean
            )
            experiment.add_row(
                query="cov",
                dataset=dataset,
                capacity_fraction=fraction,
                sic=degraded.mean_sic,
                error=spread,
            )
    return experiment
