"""Figure 11 — effect of the ratio of multi-fragment queries on fairness.

BALANCE-SIC relies on queries spanning nodes to propagate shedding information
across the federation.  The paper varies the ratio of three-fragment queries
over single-fragment queries (total fragments held constant on 10 nodes) and
shows that fairness improves as more queries are multi-fragmented.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from ..federation.deployment import RandomPlacement
from ..workloads.complex import make_avg_all_query, make_cov_query, make_top5_query
from ..workloads.spec import WorkloadQuery
from .common import ExperimentResult, run_workload
from .testbeds import scaled_config

__all__ = ["run", "RATIOS"]

RATIOS = (0.1, 0.2, 0.4, 0.6, 0.8, 1.0)


def _build_population(
    ratio: float,
    total_fragments: int,
    source_rate: float,
    seed: int,
) -> List[WorkloadQuery]:
    """Build a population with ``ratio`` of the queries having 3 fragments."""
    rng = random.Random(seed)
    queries: List[WorkloadQuery] = []
    fragments_used = 0
    index = 0
    builders = (make_avg_all_query, make_top5_query, make_cov_query)
    while fragments_used < total_fragments:
        multi = rng.random() < ratio
        num_fragments = 3 if multi else 1
        builder = builders[index % len(builders)]
        kwargs = dict(
            query_id=f"q{index}-r{int(ratio * 100)}",
            num_fragments=num_fragments,
            rate=source_rate,
            seed=seed * 7919 + index,
        )
        if builder is make_avg_all_query:
            kwargs["sources_per_fragment"] = 3
        elif builder is make_top5_query:
            kwargs["machines_per_fragment"] = 2
        queries.append(builder(**kwargs))
        fragments_used += num_fragments
        index += 1
    return queries


def run(
    scale: str = "small",
    seed: int = 0,
    ratios: Sequence[float] = RATIOS,
    num_nodes: Optional[int] = None,
    total_fragments: Optional[int] = None,
) -> ExperimentResult:
    """Reproduce Figure 11: fairness vs ratio of three-fragment queries."""
    config = scaled_config(scale, seed=seed, capacity_fraction=0.4)
    if num_nodes is None:
        num_nodes = {"small": 4, "medium": 6}.get(scale, 10)
    if total_fragments is None:
        total_fragments = {"small": 60, "medium": 300}.get(scale, 2000)
    source_rate = 8.0 if scale == "small" else 20.0

    experiment = ExperimentResult(
        name="fig11",
        description="BALANCE-SIC fairness vs ratio of multi-fragment queries",
    )
    experiment.add_note(
        f"~{total_fragments} fragments on {num_nodes} nodes; ratio = share of "
        "3-fragment queries (remainder are single-fragment)"
    )

    for ratio in ratios:
        result = run_workload(
            lambda ratio=ratio: _build_population(
                ratio, total_fragments, source_rate, seed
            ),
            num_nodes=num_nodes,
            config=config,
            shedder_name="balance-sic",
            placement_strategy=RandomPlacement(seed=seed),
            budget_mode="uniform",
        )
        experiment.add_row(
            ratio=ratio,
            mean_sic=result.mean_sic,
            jains_index=result.jains_index,
            queries=len(result.per_query_sic),
        )
    return experiment
