"""Migration scenario — rebalance and fail-rejoin under checkpoint/restore.

PR 3's churn experiment could only *destroy* placement state: a node
departure meant undeploying its queries, a failure meant losing them.  With
the checkpoint/restore subsystem (``repro.state``), placement is a runtime
decision, and this experiment exercises the two recovery paths end to end
against a static-placement control run of the same seeded workload:

1. **steady** — the query population runs on a 3-node federation under
   permanent overload (C2), with periodic federation-wide checkpoints;
2. **decommission** — one node is gracefully removed mid-run: its fragments
   live-migrate (drain → checkpoint → reroute → resume) to the survivors,
   and in-flight batches are replayed on the new hosts;
3. **failure** — a second node crash-fails; its fragments' state is gone,
   the affected queries' result SIC collapses;
4. **rejoin** — the failed node id rejoins with a fresh node; its fragments
   are restored from the last coordinator-held checkpoints with explicit
   loss accounting.

Each phase reports mean SIC, Jain's Fairness Index and shed fraction for the
churny run *and* for the static control over the same simulated window, so
the table shows directly that migration keeps fairness within tolerance of
static placement while capacity shrinks and recovers.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.shedding import make_shedder
from ..federation.deployment import Placement
from ..federation.fsps import FederatedSystem
from ..federation.network import Network, UniformLatency
from ..federation.node import FspsNode
from ..runtime import EventRuntime
from ..simulation.config import SimulationConfig
from ..workloads.aggregate import make_aggregate_query
from ..workloads.generators import compute_node_budgets
from ..workloads.spec import WorkloadQuery
from .churn import _PhaseTracker
from .common import ExperimentResult
from .testbeds import scaled_config

__all__ = ["run", "PHASES"]

NUM_NODES = 3
NUM_QUERIES = 6
DECOMMISSIONED_NODE = f"node-{NUM_NODES - 1}"
FAILED_NODE = "node-1"
KINDS = ("avg", "max", "count")
PHASES = ("steady", "decommission", "failure", "rejoin", "recovered")

PHASE_SECONDS = {"small": 5.0, "medium": 10.0, "paper": 30.0}


def _make_query(index: int, rate: float, seed: int) -> WorkloadQuery:
    return make_aggregate_query(
        KINDS[index % len(KINDS)],
        query_id=f"mig-q{index}",
        rate=rate,
        seed=seed + index,
    )


def _node_for(index: int) -> str:
    return f"node-{index % NUM_NODES}"


def _build(base: SimulationConfig, rate: float, seed: int):
    """Build the federation; returns ``(system, per-node budgets)``."""
    queries = [_make_query(i, rate, seed) for i in range(NUM_QUERIES)]
    placement = Placement(
        assignments={
            fragment_id: _node_for(i)
            for i, query in enumerate(queries)
            for fragment_id in query.fragments
        }
    )
    node_ids = [f"node-{i}" for i in range(NUM_NODES)]
    budgets = compute_node_budgets(
        queries,
        placement,
        shedding_interval=base.shedding_interval,
        capacity_fraction=base.capacity_fraction,
        node_ids=node_ids,
    )
    system = FederatedSystem(
        stw_config=base.stw_config(),
        shedding_interval=base.shedding_interval,
        network=Network(UniformLatency(base.network_latency_seconds)),
    )
    for index, node_id in enumerate(node_ids):
        system.add_node(
            FspsNode(
                node_id=node_id,
                shedder=make_shedder(base.shedder, seed=seed + index),
                budget_per_interval=budgets[node_id],
                stw_config=base.stw_config(),
            )
        )
    for i, query in enumerate(queries):
        system.deploy_query(
            query.query_id,
            query.fragments,
            query.sources,
            {fragment_id: _node_for(i) for fragment_id in query.fragments},
            nominal_rates=query.nominal_rates(),
        )
    return system, budgets


def run(
    scale: str = "small",
    seed: int = 0,
    phase_seconds: Optional[float] = None,
    rate: Optional[float] = None,
) -> ExperimentResult:
    """Run the migration scenario against a static-placement control."""
    base: SimulationConfig = scaled_config(scale, seed=seed)
    if phase_seconds is None:
        phase_seconds = PHASE_SECONDS.get(scale, PHASE_SECONDS["small"])
    if rate is None:
        rate = 80.0

    # --- static control: same seeds, no lifecycle changes -----------------
    static, _ = _build(base, rate, seed)
    static_runtime = EventRuntime(static)
    static_runtime.run(base.warmup_seconds)
    static_tracker = _PhaseTracker(static)
    static_rows: List[Dict[str, object]] = []
    for phase in PHASES:
        static_tracker.mark()
        static_runtime.run(phase_seconds)
        static_rows.append(static_tracker.phase_row(phase))
    static_runtime.close()

    # --- churny run: decommission, failure, rejoin ------------------------
    system, budgets = _build(base, rate, seed)
    runtime = EventRuntime(
        system, checkpoint_interval=base.shedding_interval
    )
    experiment = ExperimentResult(
        name="migration",
        description="live fragment migration (graceful decommission) and a "
        "fail-rejoin cycle vs static placement",
    )
    experiment.add_note(
        f"{NUM_NODES} nodes, {NUM_QUERIES} aggregate queries at capacity "
        f"fraction {base.capacity_fraction}; phases of {phase_seconds:.0f}s; "
        f"checkpoints every {base.shedding_interval}s"
    )

    runtime.run(base.warmup_seconds)
    tracker = _PhaseTracker(system)

    def report(phase: str, static_row: Dict[str, object]) -> None:
        row = tracker.phase_row(phase)
        row["static_mean_sic"] = static_row["mean_sic"]
        row["static_jains"] = static_row["jains_index"]
        experiment.add_row(**row)

    # Phase 1 — steady state with periodic checkpoints.
    tracker.mark()
    runtime.run(phase_seconds)
    report("steady", static_rows[0])

    # Phase 2 — graceful decommission: fragments live-migrate away.
    tracker.mark()
    removed = runtime.remove_node(DECOMMISSIONED_NODE)
    tracker.note_departed_node(removed)
    experiment.add_note(
        f"decommissioned {DECOMMISSIONED_NODE!r}: its fragments migrated to "
        f"the survivors; its {removed.budget_per_interval:.0f}-unit budget "
        f"left with it"
    )
    runtime.run(phase_seconds)
    report("decommission", static_rows[1])

    # Phase 3 — crash failure: fragment state is lost until the rejoin.
    tracker.mark()
    failed = runtime.fail_node(FAILED_NODE)
    tracker.note_failed_node(failed)
    runtime.run(phase_seconds)
    report("failure", static_rows[2])

    # Phase 4 — rejoin: restore from the last coordinator-held checkpoints.
    tracker.mark()
    rejoin = runtime.rejoin_node(
        FspsNode(
            node_id=FAILED_NODE,
            shedder=make_shedder(base.shedder, seed=seed + 7),
            budget_per_interval=budgets[FAILED_NODE],
            stw_config=base.stw_config(),
        )
    )
    experiment.add_note(
        f"rejoined {FAILED_NODE!r}: {len(rejoin.restored_fragments)} "
        f"fragment(s) restored from checkpoints, "
        f"{len(rejoin.fragments_without_checkpoint)} without one; "
        f"crash lost {rejoin.lost_tuples} buffered tuple(s) / "
        f"{rejoin.lost_sic:.4f} SIC beyond the checkpoints"
    )
    runtime.run(phase_seconds)
    report("rejoin", static_rows[3])

    # Phase 5 — recovered: one more phase after the restored queries' STW
    # windows refill, showing fairness back within tolerance of static.
    tracker.mark()
    runtime.run(phase_seconds)
    report("recovered", static_rows[4])
    runtime.close()

    experiment.add_note(
        f"{system.forwarded_batches} in-flight batch(es) were replayed on "
        f"migrated fragments' new hosts via the forwarding pointer"
    )
    recovered_row = experiment.rows[-1]
    experiment.add_note(
        f"recovered-phase Jain's-index gap to static placement: "
        f"{abs(float(recovered_row['jains_index']) - float(recovered_row['static_jains'])):.4f}"
    )
    return experiment
