"""§7.6 — overhead of the BALANCE-SIC fair shedder.

Two costs are reported:

* **Execution time** — the fair shedder does more work per invocation than the
  random baseline (it sorts batches by SIC and iterates over queries); the
  paper measures an 11 % increase in per-batch shedding time.  The
  reproduction measures the wall-clock time of shedder invocations during an
  otherwise identical run, and additionally micro-benchmarks both shedders on
  identical synthetic input buffers (see ``benchmarks/test_bench_overhead.py``).
* **Meta-data** — 10 bytes of SIC meta-data per batch plus 30-byte
  ``updateSIC`` coordinator messages per hosting node per shedding interval.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from ..core.balance_sic import ShedDecision
from ..core.tuples import Batch, Tuple
from ..federation.deployment import RandomPlacement
from ..workloads.generators import WorkloadSpec, generate_complex_workload
from .common import ExperimentResult, config_with, run_workload
from .testbeds import scaled_config

__all__ = ["run", "make_synthetic_buffer", "shed_once"]


def make_synthetic_buffer(
    num_queries: int = 20,
    batches_per_query: int = 10,
    tuples_per_batch: int = 50,
    seed: int = 0,
) -> List[Batch]:
    """Build a synthetic input buffer for shedder micro-benchmarks."""
    rng = random.Random(seed)
    batches: List[Batch] = []
    for q in range(num_queries):
        per_stw = batches_per_query * tuples_per_batch * 4
        for b in range(batches_per_query):
            tuples = [
                Tuple(
                    timestamp=b + i / tuples_per_batch,
                    sic=1.0 / per_stw * rng.uniform(0.5, 1.5),
                    values={"v": rng.random()},
                    source_id=f"q{q}-src",
                )
                for i in range(tuples_per_batch)
            ]
            batches.append(Batch(f"q{q}", tuples))
    rng.shuffle(batches)
    return batches


def shed_once(
    shedder, batches: List[Batch], capacity: int, reported: Optional[Dict[str, float]] = None
) -> ShedDecision:
    """Run one shedder invocation (used by the micro-benchmarks)."""
    reported = reported or {}
    return shedder.shed(batches, capacity, reported)


def run(
    scale: str = "small",
    seed: int = 0,
    num_queries: Optional[int] = None,
    num_nodes: int = 4,
) -> ExperimentResult:
    """Reproduce the §7.6 overhead measurements."""
    config = scaled_config(scale, seed=seed, capacity_fraction=0.4)
    if num_queries is None:
        num_queries = {"small": 16, "medium": 60}.get(scale, 200)

    experiment = ExperimentResult(
        name="overhead",
        description="execution-time and meta-data overhead of the fair shedder",
    )

    spec = WorkloadSpec(
        num_queries=num_queries,
        fragments_per_query=(1, 2, 3),
        kinds=("avg-all", "top5", "cov"),
        source_rate=10.0 if scale == "small" else 20.0,
        sources_per_avg_all_fragment=3,
        machines_per_top5_fragment=2,
        seed=seed,
    )

    results = {}
    for shedder in ("balance-sic", "random"):
        results[shedder] = run_workload(
            lambda: generate_complex_workload(spec),
            num_nodes=num_nodes,
            config=config_with(config, shedder=shedder),
            shedder_name=shedder,
            placement_strategy=RandomPlacement(seed=seed),
            budget_mode="uniform",
            measure_shedder_time=True,
        )

    fair = results["balance-sic"]
    rand = results["random"]
    fair_time = fair.mean_shedder_time
    rand_time = rand.mean_shedder_time
    overhead_pct = (
        100.0 * (fair_time - rand_time) / rand_time if rand_time > 0 else 0.0
    )

    for name, result, mean_time in (
        ("balance-sic", fair, fair_time),
        ("random", rand, rand_time),
    ):
        experiment.add_row(
            shedder=name,
            mean_shedder_time_ms=mean_time * 1000.0,
            shedder_invocations=sum(
                n.shedder_invocations for n in result.node_summaries
            ),
            jains_index=result.jains_index,
            mean_sic=result.mean_sic,
            messages_sent=result.messages_sent,
            bytes_sent=result.bytes_sent,
        )
    experiment.add_note(
        f"fair shedder execution-time overhead over random: {overhead_pct:.1f}% "
        "(the paper reports about 11%)"
    )
    experiment.add_note(
        "per-batch SIC meta-data: 10 bytes (+ query id and timestamp); "
        "updateSIC coordinator messages: 30 bytes per hosting node per interval"
    )
    return experiment
