"""Test-bed configurations (Table 2) mapped onto simulation configurations.

The paper evaluates THEMIS on two physical test-beds; the reproduction maps
them onto simulation configurations and, because a pure-Python simulator
cannot push millions of tuples per second, also defines *scaled* variants used
by default by the experiment modules and the benchmarks.  The scaling factors
are documented in EXPERIMENTS.md; they reduce source rates and population
sizes while keeping every structural property of the deployments (overload
factor, fragment counts, placement skew, latencies) intact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..simulation.config import SimulationConfig

__all__ = [
    "TestbedProfile",
    "LOCAL_TESTBED",
    "EMULAB_TESTBED",
    "scaled_config",
    "SCALES",
]

SCALES = ("small", "medium", "paper")


@dataclass(frozen=True)
class TestbedProfile:
    """A named test-bed profile (Table 2).

    Attributes:
        name: profile name.
        num_processing_nodes: number of THEMIS processing nodes.
        source_rate: per-source rate in tuples/second.
        batches_per_second: source batching granularity (informational).
        network_latency_seconds: one-way latency between nodes.
    """

    name: str
    num_processing_nodes: int
    source_rate: float
    batches_per_second: float
    network_latency_seconds: float


LOCAL_TESTBED = TestbedProfile(
    name="local",
    num_processing_nodes=1,
    source_rate=400.0,
    batches_per_second=5.0,
    network_latency_seconds=0.001,
)

EMULAB_TESTBED = TestbedProfile(
    name="emulab",
    num_processing_nodes=18,
    source_rate=150.0,
    batches_per_second=3.0,
    network_latency_seconds=0.005,
)


def scaled_config(
    scale: str = "small",
    seed: int = 0,
    capacity_fraction: float = 0.5,
    shedder: str = "balance-sic",
    network_latency_seconds: float = 0.005,
) -> SimulationConfig:
    """Return the :class:`SimulationConfig` for a scale level.

    ``small`` keeps unit-test and benchmark runs in the seconds range,
    ``medium`` matches the defaults used to produce EXPERIMENTS.md, and
    ``paper`` uses the paper's durations (minutes of simulated time — slow in
    pure Python, provided for completeness).
    """
    if scale == "small":
        return SimulationConfig(
            duration_seconds=12.0,
            warmup_seconds=6.0,
            shedding_interval=0.25,
            stw_seconds=6.0,
            shedder=shedder,
            capacity_fraction=capacity_fraction,
            network_latency_seconds=network_latency_seconds,
            seed=seed,
        )
    if scale == "medium":
        return SimulationConfig(
            duration_seconds=30.0,
            warmup_seconds=10.0,
            shedding_interval=0.25,
            stw_seconds=10.0,
            shedder=shedder,
            capacity_fraction=capacity_fraction,
            network_latency_seconds=network_latency_seconds,
            seed=seed,
        )
    if scale == "paper":
        return SimulationConfig(
            duration_seconds=300.0,
            warmup_seconds=20.0,
            shedding_interval=0.25,
            stw_seconds=10.0,
            shedder=shedder,
            capacity_fraction=capacity_fraction,
            network_latency_seconds=network_latency_seconds,
            seed=seed,
        )
    raise ValueError(f"unknown scale {scale!r}; expected one of {SCALES}")


def workload_scale_factors(scale: str) -> Dict[str, float]:
    """Population/rate multipliers per scale, used by the experiment modules."""
    if scale == "small":
        return {"queries": 0.1, "nodes": 0.34, "rate": 0.25}
    if scale == "medium":
        return {"queries": 0.25, "nodes": 0.5, "rate": 0.4}
    if scale == "paper":
        return {"queries": 1.0, "nodes": 1.0, "rate": 1.0}
    raise ValueError(f"unknown scale {scale!r}; expected one of {SCALES}")
