"""Soak scenario — exactly-once results and flat memory over repeated crashes.

The robustness PRs each prove one recovery path in isolation; the soak proves
they *compose* and do not wear out.  One federation with the full resilience
stack (reliable delivery, periodic checkpoints, bounded ingress with source
backpressure, exactly-once result accounting) runs an extended sequence of
fail/rejoin cycles:

* every cycle crash-fails one node (round-robin) mid-stream, lets the
  federation run degraded, then rejoins a fresh node instance from the
  coordinator-held checkpoints;
* every third cycle also crash-fails one query's coordinator and promotes
  its standby (round-robin over the queries);
* after each cycle the experiment closes the exactly-once result ledger
  (``unaccounted_tuples`` must be zero at *any instant*, no drain needed),
  records Jain's fairness over the live result SICs, and takes a
  :class:`~repro.perf.memwatch.MemoryWatch` sample.

The pass conditions the soak test (and the perf gate) check:

* the ledger identity ``arrived == recorded + deduped + dropped +
  lost_to_crash + retired`` closes after every cycle and after the final
  drain;
* tracked bounded memory is flat across cycles (±5% between the first
  post-warm-up sample and the last) — checkpoint stores, standby snapshots,
  ledger lanes, epoch tails, network buffers and fault timelines are all
  purged or bounded;
* backpressure pacing engages (``paced_tuples > 0``) while the bounded
  ingress queues never overflow (``ingress_overflow_tuples == 0``) — the
  degradation ladder is pace → shed, not grow → OOM.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core.fairness import jains_index
from ..core.shedding import make_shedder
from ..federation.deployment import Placement
from ..federation.fsps import FederatedSystem
from ..federation.network import Network, ReliabilityConfig, UniformLatency
from ..federation.node import FspsNode
from ..perf.memwatch import MemoryWatch
from ..runtime import EventRuntime
from ..simulation.config import SimulationConfig
from ..workloads.aggregate import make_aggregate_query
from ..workloads.generators import compute_node_budgets
from ..workloads.spec import WorkloadQuery
from .common import ExperimentResult
from .testbeds import scaled_config

__all__ = ["run", "build_soak_federation", "run_cycle"]

NUM_NODES = 3
NUM_QUERIES = 4
KINDS = ("avg", "count", "max", "avg")

#: Fail/rejoin cycles per scale; the acceptance bar is >= 20 sustained.
CYCLES = {"small": 20, "medium": 40, "paper": 100}

#: Simulated seconds a crashed node stays down, and seconds of recovered
#: operation before the next cycle's crash.  The runtime quantizes both to
#: whole shedding intervals, so the cycle is 7 ticks (1.75s) — deliberately
#: coprime with the 2-tick checkpoint cadence, so crashes land at varying
#: offsets after the last checkpoint round and the rejoin replay actually
#: re-emits output (exercising the coordinator's dedup path) rather than
#: always restoring a zero-gap checkpoint.
DOWN_SECONDS = 0.5
RECOVER_SECONDS = 1.25

#: Bounded ingress per node, tuned against the soak workload so pacing
#: engages under the post-crash redistribution spikes while the hard cap is
#: never hit (overflow == 0): the ladder is pace -> shed, not drop at the
#: door.
MAX_INGRESS_TUPLES = 64

#: A coordinator failover rides along every FAILOVER_EVERY-th cycle.
FAILOVER_EVERY = 3


def _node_for(index: int) -> str:
    return f"node-{index % NUM_NODES}"


def _make_query(index: int, rate: float, seed: int) -> WorkloadQuery:
    return make_aggregate_query(
        KINDS[index % len(KINDS)],
        query_id=f"soak-q{index}",
        rate=rate,
        seed=seed + index,
    )


def build_soak_federation(
    base: SimulationConfig, rate: float, seed: int
) -> "tuple[FederatedSystem, EventRuntime, callable]":
    """Federation + runtime with the full resilience stack for the soak.

    Returns ``(system, runtime, node_factory)``; the factory builds the
    fresh node instances rejoined after each crash (same shedder seed per
    node id, so a rejoined node sheds exactly like its predecessor would
    have).
    """
    queries = [_make_query(i, rate, seed) for i in range(NUM_QUERIES)]
    placement = Placement(
        assignments={
            fragment_id: _node_for(i)
            for i, query in enumerate(queries)
            for fragment_id in query.fragments
        }
    )
    node_ids = [f"node-{i}" for i in range(NUM_NODES)]
    budgets = compute_node_budgets(
        queries,
        placement,
        shedding_interval=base.shedding_interval,
        capacity_fraction=base.capacity_fraction,
        node_ids=node_ids,
    )
    system = FederatedSystem(
        stw_config=base.stw_config(),
        shedding_interval=base.shedding_interval,
        network=Network(
            UniformLatency(base.network_latency_seconds),
            reliability=ReliabilityConfig(),
        ),
        result_accounting=True,
    )

    def node_factory(node_id: str) -> FspsNode:
        index = node_ids.index(node_id)
        return FspsNode(
            node_id=node_id,
            shedder=make_shedder(base.shedder, seed=seed + index),
            budget_per_interval=budgets[node_id],
            stw_config=base.stw_config(),
            max_ingress_tuples=MAX_INGRESS_TUPLES,
        )

    for node_id in node_ids:
        system.add_node(node_factory(node_id))
    for i, query in enumerate(queries):
        system.deploy_query(
            query.query_id,
            query.fragments,
            query.sources,
            {fragment_id: _node_for(i) for fragment_id in query.fragments},
            nominal_rates=query.nominal_rates(),
        )
    # 3 ticks: deliberately coprime with the 2-tick window-emission cadence,
    # so some checkpoints are taken *between* result emissions and a crash
    # then replays output past the checkpointed watermark (dedup coverage).
    runtime = EventRuntime(
        system, checkpoint_interval=3 * base.shedding_interval
    )
    return system, runtime, node_factory


def run_cycle(
    system: FederatedSystem,
    runtime: EventRuntime,
    node_factory,
    cycle: int,
) -> Dict[str, object]:
    """One fail/rejoin cycle (plus failover every third); returns its row."""
    victim = _node_for(cycle)
    failed_query: Optional[str] = None
    runtime.fail_node(victim)
    runtime.run(DOWN_SECONDS)
    report = runtime.rejoin_node(node_factory(victim))
    if cycle % FAILOVER_EVERY == FAILOVER_EVERY - 1:
        failed_query = f"soak-q{(cycle // FAILOVER_EVERY) % NUM_QUERIES}"
        runtime.fail_coordinator(failed_query)
    runtime.run(RECOVER_SECONDS)
    accounting = system.result_accounting_report()
    sics = list(system.current_sic_per_query().values())
    return {
        "cycle": cycle,
        "victim": victim,
        "failover": failed_query or "-",
        "restored_fragments": len(report.restored_fragments),
        "deduped_tuples": accounting["deduped_tuples"],
        "lost_to_crash_tuples": accounting["lost_to_crash_tuples"],
        "unaccounted_tuples": accounting["unaccounted_tuples"],
        "jains_index": jains_index(sics),
    }


def run(
    scale: str = "small",
    seed: int = 0,
    cycles: Optional[int] = None,
    rate: Optional[float] = None,
) -> ExperimentResult:
    """Run the soak: repeated fail/rejoin + failover cycles under load."""
    base: SimulationConfig = scaled_config(scale, seed=seed)
    if cycles is None:
        cycles = CYCLES.get(scale, CYCLES["small"])
    if rate is None:
        rate = 80.0

    experiment = ExperimentResult(
        name="soak",
        description=f"{cycles} fail/rejoin cycles (coordinator failover every "
        f"{FAILOVER_EVERY}rd) with exactly-once ledger closure, bounded "
        "ingress backpressure and flat tracked memory",
    )
    experiment.add_note(
        f"{NUM_NODES} nodes, {NUM_QUERIES} queries at {rate:.0f} tuples/s; "
        f"crash down-time {DOWN_SECONDS}s, recovery window {RECOVER_SECONDS}s "
        f"per cycle; checkpoints every {3 * base.shedding_interval}s; ingress "
        f"bounded at {MAX_INGRESS_TUPLES} tuples/node"
    )

    system, runtime, node_factory = build_soak_federation(base, rate, seed)
    memwatch = MemoryWatch()
    runtime.run(base.warmup_seconds)
    memwatch.sample(system, now=runtime.now, scheduler=runtime.scheduler)

    closure_failures = 0
    for cycle in range(cycles):
        row = run_cycle(system, runtime, node_factory, cycle)
        memwatch.sample(system, now=runtime.now, scheduler=runtime.scheduler)
        if row["unaccounted_tuples"] != 0:
            closure_failures += 1
        experiment.add_row(**row)

    # Final drain and end-of-run closure.
    system.drain_network()
    final = system.result_accounting_report()
    memwatch.sample(system, now=system.now, scheduler=runtime.scheduler)
    experiment.add_note(
        f"final ledger: {final['arrived_tuples']} arrived = "
        f"{final['recorded_tuples']} recorded + {final['deduped_tuples']} "
        f"deduped + {final['dropped_tuples']} dropped + "
        f"{final['lost_to_crash_tuples']} lost_to_crash + "
        f"{final['retired_tuples']} retired "
        f"({final['unaccounted_tuples']} unaccounted)"
    )
    if closure_failures or final["unaccounted_tuples"] != 0:
        experiment.add_note(
            f"WARNING: ledger failed to close in {closure_failures} cycles "
            f"(final residual {final['unaccounted_tuples']})"
        )
    if final["lane_problems"]:
        experiment.add_note(f"WARNING: lane algebra violated: {final['lane_problems']}")

    paced = system.total_paced_tuples()
    overflow = sum(
        node.stats.ingress_overflow_tuples for node in system.nodes.values()
    )
    engagements = sum(
        node.stats.backpressure_engagements for node in system.nodes.values()
    )
    experiment.add_note(
        f"backpressure: {paced} tuples paced at the sources over "
        f"{engagements} engagements; {overflow} ingress overflow tuples "
        f"(must be 0 — pacing engages before the hard cap)"
    )
    if overflow:
        experiment.add_note("WARNING: bounded ingress overflowed")

    # Skip the first two samples (STW windows still filling post-warm-up)
    # and average 2 * FAILOVER_EVERY samples at each end: the per-cycle
    # readings jitter a few percent with the crash/failover phase, and a
    # window of whole failover periods cancels that pattern.
    mem = memwatch.summary(skip_initial=2, window=2 * FAILOVER_EVERY)
    growth = mem["bounded_growth_fraction"]
    experiment.add_note(
        f"tracked memory: {mem['first_bounded_bytes']} -> "
        f"{mem['last_bounded_bytes']} bounded bytes over {mem['samples']} "
        f"samples (peak {mem['peak_bounded_bytes']}, growth "
        f"{growth if growth is None else round(growth * 100, 2)}%); "
        f"series (SIC histories, linear in simulated time) "
        f"{mem['last_series_bytes']} bytes"
    )
    if growth is not None and abs(growth) > 0.05:
        experiment.add_note(
            "WARNING: tracked bounded memory drifted more than 5% across cycles"
        )
    experiment.add_note(
        f"checkpoint store holds {system.coordinators.checkpoint_store_size()} "
        f"envelopes, standby store {system.coordinators.standby_store_size()} "
        f"snapshots, {system.epoch_tail_count()} epoch tails"
    )
    runtime.close()
    return experiment
