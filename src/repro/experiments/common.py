"""Shared experiment infrastructure.

Every experiment module builds one or more federated deployments, runs them
under a configured shedder and reports rows of a table that mirrors a figure
or table of the paper.  The helpers here cover the common steps: building a
federation from a list of workload queries, sizing node budgets from a target
overload factor, running the simulator, and formatting result tables.

Because query fragments are stateful, experiments always work with *builders*
(zero-argument callables returning a fresh list of
:class:`~repro.workloads.spec.WorkloadQuery`) so the same workload can be
deployed several times — once per shedder or parameter value — from identical
random seeds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from ..core.shedding import Shedder, make_shedder
from ..federation.deployment import PlacementStrategy, RoundRobinPlacement
from ..federation.fsps import FederatedSystem
from ..federation.network import (
    LatencyMatrix,
    LatencyModel,
    Network,
    UniformLatency,
)
from ..federation.node import FspsNode
from ..simulation.config import SimulationConfig
from ..simulation.results import RunResult
from ..simulation.simulator import Simulator
from ..workloads.generators import compute_node_budgets
from ..workloads.spec import WorkloadQuery

__all__ = [
    "ExperimentResult",
    "WorkloadBuilder",
    "asymmetric_latency_matrix",
    "build_federation",
    "run_workload",
    "format_table",
    "config_with",
]

WorkloadBuilder = Callable[[], List[WorkloadQuery]]


def config_with(config: SimulationConfig, **overrides: object) -> SimulationConfig:
    """Return a copy of ``config`` with the given fields replaced."""
    values = {
        "duration_seconds": config.duration_seconds,
        "warmup_seconds": config.warmup_seconds,
        "shedding_interval": config.shedding_interval,
        "stw_seconds": config.stw_seconds,
        "shedder": config.shedder,
        "capacity_fraction": config.capacity_fraction,
        "network_latency_seconds": config.network_latency_seconds,
        "enable_sic_updates": config.enable_sic_updates,
        "coordinator_update_interval": config.coordinator_update_interval,
        "columnar": config.columnar,
        "columnar_backend": config.columnar_backend,
        "runtime": config.runtime,
        "node_shedding_intervals": dict(config.node_shedding_intervals),
        "checkpoint_interval": config.checkpoint_interval,
        "reliable_delivery": config.reliable_delivery,
        "heartbeat_interval": config.heartbeat_interval,
        "heartbeat_timeout_intervals": config.heartbeat_timeout_intervals,
        "result_accounting": config.result_accounting,
        "max_ingress_tuples": config.max_ingress_tuples,
        "ingress_high_fraction": config.ingress_high_fraction,
        "ingress_low_fraction": config.ingress_low_fraction,
        "retain_result_values": config.retain_result_values,
        "max_result_values": config.max_result_values,
        "seed": config.seed,
    }
    values.update(overrides)
    return SimulationConfig(**values)


@dataclass
class ExperimentResult:
    """Tabular result of one experiment.

    Attributes:
        name: experiment identifier (e.g. ``"fig10"``).
        description: one-line description of what the experiment reproduces.
        rows: list of row dictionaries; all rows share the same keys.
        notes: free-form remarks (substitutions, scale used, caveats).
    """

    name: str
    description: str
    rows: List[Dict[str, object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, **values: object) -> None:
        self.rows.append(dict(values))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def column(self, key: str) -> List[object]:
        return [row.get(key) for row in self.rows]

    def to_table(self) -> str:
        header = f"== {self.name}: {self.description} =="
        body = format_table(self.rows)
        notes = "\n".join(f"note: {note}" for note in self.notes)
        parts = [header, body]
        if notes:
            parts.append(notes)
        return "\n".join(parts)


def format_table(rows: Sequence[Mapping[str, object]]) -> str:
    """Render rows of dictionaries as an aligned text table."""
    if not rows:
        return "(no rows)"
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)

    def fmt(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.4f}"
        return str(value)

    widths = {col: len(col) for col in columns}
    rendered: List[List[str]] = []
    for row in rows:
        cells = [fmt(row.get(col, "")) for col in columns]
        rendered.append(cells)
        for col, cell in zip(columns, cells):
            widths[col] = max(widths[col], len(cell))

    lines = [
        "  ".join(col.ljust(widths[col]) for col in columns),
        "  ".join("-" * widths[col] for col in columns),
    ]
    for cells in rendered:
        lines.append("  ".join(cell.ljust(widths[col]) for col, cell in zip(columns, cells)))
    return "\n".join(lines)


def asymmetric_latency_matrix(
    node_ids: Sequence[str],
    base_seconds: float,
    spread: float = 0.5,
    coordinator_endpoint: str = "coordinator",
) -> LatencyMatrix:
    """Wide-area latency matrix with asymmetric inter-site paths.

    Real federations cross administrative domains whose uplinks and
    downlinks differ; this helper models that with per-direction latencies
    around ``base_seconds``: for each ordered node pair ``(a, b)`` with
    ``a < b``, the a→b path takes ``base * (1 + spread)`` and the return
    path ``base * (1 - spread)`` (the pair's mean stays ``base``, so runs
    remain comparable with the uniform model).  The coordinator pushes its
    ``updateSIC`` messages over the same skewed long-haul paths: towards
    odd-indexed nodes at ``base * (1 + spread)``, towards the rest at
    ``base * (1 - spread)``.  Everything else (source → node ingest) keeps
    the ``base_seconds`` default.
    """
    if not 0.0 <= spread < 1.0:
        raise ValueError(f"spread must be in [0, 1), got {spread}")
    matrix = LatencyMatrix(default_seconds=base_seconds)
    slow = base_seconds * (1.0 + spread)
    fast = base_seconds * (1.0 - spread)
    ordered = list(node_ids)
    for i, a in enumerate(ordered):
        for b in ordered[i + 1:]:
            matrix.set_latency(a, b, slow, symmetric=False)
            matrix.set_latency(b, a, fast, symmetric=False)
    for index, node_id in enumerate(ordered):
        matrix.set_latency(
            coordinator_endpoint,
            node_id,
            slow if index % 2 else fast,
            symmetric=False,
        )
    return matrix


def build_federation(
    queries: Sequence[WorkloadQuery],
    num_nodes: int,
    config: SimulationConfig,
    shedder_name: Optional[str] = None,
    placement_strategy: Optional[PlacementStrategy] = None,
    node_budgets: Optional[Mapping[str, float]] = None,
    budget_mode: str = "proportional",
    latency_model: Optional[LatencyModel] = None,
) -> FederatedSystem:
    """Build a federation hosting ``queries`` on ``num_nodes`` nodes.

    Fragment placement defaults to round-robin; per-node budgets default to
    ``config.capacity_fraction`` times the load offered to the node
    (``budget_mode="proportional"``) or to a uniform share of the total
    offered load (``budget_mode="uniform"``, homogeneous hardware).  The
    network defaults to ``UniformLatency(config.network_latency_seconds)``;
    pass ``latency_model`` (e.g. :func:`asymmetric_latency_matrix`) for
    per-pair paths.
    """
    if num_nodes <= 0:
        raise ValueError(f"num_nodes must be positive, got {num_nodes}")
    node_ids = [f"node-{i}" for i in range(num_nodes)]
    strategy = placement_strategy or RoundRobinPlacement()
    fragments = [f for query in queries for f in query.fragment_list()]
    placement = strategy.place(fragments, node_ids)

    budgets = dict(node_budgets) if node_budgets else compute_node_budgets(
        queries,
        placement,
        shedding_interval=config.shedding_interval,
        capacity_fraction=config.capacity_fraction,
        node_ids=node_ids,
        mode=budget_mode,
    )

    system = FederatedSystem(
        stw_config=config.stw_config(),
        shedding_interval=config.shedding_interval,
        network=Network(
            latency_model
            or UniformLatency(config.network_latency_seconds),
            reliability=config.reliability_config(),
        ),
        coordinator_update_interval=config.coordinator_update_interval,
        enable_sic_updates=config.enable_sic_updates,
        columnar=config.columnar,
        retain_results=config.retain_result_values,
        max_retained_results=config.max_result_values,
        result_accounting=config.result_accounting,
    )
    shedder_kind = shedder_name or config.shedder
    for index, node_id in enumerate(node_ids):
        shedder: Shedder = make_shedder(shedder_kind, seed=config.seed + index)
        system.add_node(
            FspsNode(
                node_id=node_id,
                shedder=shedder,
                budget_per_interval=budgets[node_id],
                stw_config=config.stw_config(),
                max_ingress_tuples=config.max_ingress_tuples,
                ingress_high_fraction=config.ingress_high_fraction,
                ingress_low_fraction=config.ingress_low_fraction,
            )
        )
    for query in queries:
        system.deploy_query(
            query_id=query.query_id,
            fragments=query.fragments,
            sources=query.sources,
            placement={
                fragment_id: placement.node_for(fragment_id)
                for fragment_id in query.fragments
            },
            nominal_rates=query.nominal_rates(),
        )
    return system


def run_workload(
    builder: WorkloadBuilder,
    num_nodes: int,
    config: SimulationConfig,
    shedder_name: Optional[str] = None,
    placement_strategy: Optional[PlacementStrategy] = None,
    node_budgets: Optional[Mapping[str, float]] = None,
    budget_mode: str = "proportional",
    measure_shedder_time: bool = False,
    latency_model: Optional[LatencyModel] = None,
) -> RunResult:
    """Build a fresh workload with ``builder`` and run it end to end."""
    queries = builder()
    system = build_federation(
        queries,
        num_nodes=num_nodes,
        config=config,
        shedder_name=shedder_name,
        placement_strategy=placement_strategy,
        node_budgets=node_budgets,
        budget_mode=budget_mode,
        latency_model=latency_model,
    )
    simulator = Simulator(system, config, measure_shedder_time=measure_shedder_time)
    return simulator.run()
