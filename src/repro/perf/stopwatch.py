"""Stopwatch and counter registry used by the perf benchmarks.

Design goals:

* **cheap** — one ``perf_counter`` call per start/stop, plain dict counters;
* **deterministic output** — :meth:`PerfRegistry.summary` returns plain
  JSON-serialisable dicts with stable key order so reports diff cleanly;
* **composable** — a registry can be passed into benchmark helpers, or the
  module-level :func:`default_registry` can be used for quick measurements.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

__all__ = ["Stopwatch", "TimerStat", "PerfRegistry", "default_registry"]


class Stopwatch:
    """A restartable wall-clock stopwatch.

    Usable imperatively (``start()`` / ``stop()``) or as a context manager::

        with Stopwatch() as sw:
            policy.select(batches, capacity, reported)
        print(sw.elapsed_seconds)

    ``stop()`` returns the lap time and accumulates into ``elapsed_seconds``
    so one stopwatch can time a loop of repetitions.
    """

    __slots__ = ("elapsed_seconds", "laps", "_started_at", "_clock")

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self.elapsed_seconds = 0.0
        self.laps = 0
        self._started_at: Optional[float] = None
        self._clock = clock

    def start(self) -> "Stopwatch":
        if self._started_at is not None:
            raise RuntimeError("stopwatch already running")
        self._started_at = self._clock()
        return self

    def stop(self) -> float:
        if self._started_at is None:
            raise RuntimeError("stopwatch is not running")
        lap = self._clock() - self._started_at
        self._started_at = None
        self.elapsed_seconds += lap
        self.laps += 1
        return lap

    @property
    def running(self) -> bool:
        return self._started_at is not None

    def reset(self) -> None:
        self.elapsed_seconds = 0.0
        self.laps = 0
        self._started_at = None

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


@dataclass
class TimerStat:
    """Aggregated laps of one named timer."""

    total_seconds: float = 0.0
    count: int = 0
    min_seconds: float = float("inf")
    max_seconds: float = 0.0

    def record(self, seconds: float) -> None:
        self.total_seconds += seconds
        self.count += 1
        if seconds < self.min_seconds:
            self.min_seconds = seconds
        if seconds > self.max_seconds:
            self.max_seconds = seconds

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.count if self.count else 0.0


@dataclass
class PerfRegistry:
    """Named counters and timers, summarised as JSON-friendly dicts."""

    counters: Dict[str, float] = field(default_factory=dict)
    timers: Dict[str, TimerStat] = field(default_factory=dict)

    def incr(self, name: str, amount: float = 1.0) -> None:
        self.counters[name] = self.counters.get(name, 0.0) + amount

    def record(self, name: str, seconds: float) -> None:
        stat = self.timers.get(name)
        if stat is None:
            stat = self.timers[name] = TimerStat()
        stat.record(seconds)

    def time(self, name: str) -> "_RegistryTimer":
        """Context manager recording a lap under ``name``."""
        return _RegistryTimer(self, name)

    def measure(self, name: str, func: Callable, *args, **kwargs):
        """Time one call of ``func`` under ``name`` and return its result."""
        sw = Stopwatch().start()
        result = func(*args, **kwargs)
        self.record(name, sw.stop())
        return result

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Stable-ordered, JSON-serialisable snapshot of all metrics."""
        return {
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "timers": {
                k: {
                    "total_seconds": stat.total_seconds,
                    "count": stat.count,
                    "mean_seconds": stat.mean_seconds,
                    "min_seconds": stat.min_seconds if stat.count else 0.0,
                    "max_seconds": stat.max_seconds,
                }
                for k, stat in sorted(self.timers.items())
            },
        }

    def reset(self) -> None:
        self.counters.clear()
        self.timers.clear()


class _RegistryTimer:
    __slots__ = ("_registry", "_name", "_stopwatch")

    def __init__(self, registry: PerfRegistry, name: str) -> None:
        self._registry = registry
        self._name = name
        self._stopwatch = Stopwatch()

    def __enter__(self) -> Stopwatch:
        return self._stopwatch.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self._registry.record(self._name, self._stopwatch.stop())


_DEFAULT = PerfRegistry()


def default_registry() -> PerfRegistry:
    """The module-level registry for ad-hoc measurements."""
    return _DEFAULT
