"""Bounded-memory soak instrumentation.

Long-running soak experiments (repeated crash/rejoin and failover cycles)
must not grow memory cycle over cycle.  ``tracemalloc`` and RSS are too
noisy for a deterministic gate — the simulation shares its process with the
test harness — so :class:`MemoryWatch` instead counts the entries of every
structure in the federation that *could* grow and converts the counts into
an RSS proxy with fixed per-entry byte estimates.  The estimates do not
need to be exact; they only need to be *constant*, so that flat counts read
as flat bytes and a leak in any tracked structure shows up as growth.

Probes fall into two classes:

* **bounded** — structures the design promises stay flat across cycles:
  scheduler queue, network buffers, node ingress buffers, sliding-window
  tracker events, checkpoint/standby stores, ledger lanes, epoch tails,
  retained result payloads, fault timelines and detector incident records.
  The soak gate (``growth_fraction``) applies to these.
* **series** — metrics time series that grow linearly with *simulated
  time* by design (one entry per shedding interval), independent of how
  many fault cycles run: the result-SIC snapshot histories.  They are
  reported separately so they cannot mask (or masquerade as) a leak.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["MemorySample", "MemoryWatch", "PER_ENTRY_BYTES", "SERIES_PROBES"]

# Fixed per-entry RSS-proxy costs (bytes).  Rough CPython object-graph sizes;
# constant by construction so growth in counts is growth in bytes.
PER_ENTRY_BYTES: Dict[str, int] = {
    "scheduler_pending_events": 160,
    "network_in_flight_messages": 256,
    "network_reliable_pending": 256,
    "network_reorder_buffered": 256,
    "node_input_buffer_tuples": 120,
    "node_tracker_window_events": 64,
    "coordinator_tracker_window_events": 64,
    "checkpoint_envelopes": 4096,
    "standby_snapshots": 2048,
    "ledger_lanes": 160,
    "epoch_tails": 96,
    "retained_result_values": 240,
    "fault_timeline_events": 96,
    "detector_incident_records": 160,
    "node_tracker_history_samples": 64,
    "coordinator_tracker_history_samples": 64,
}

#: Probes that grow linearly with simulated time by design (excluded from
#: the flat-memory gate, reported separately).
SERIES_PROBES = frozenset(
    {"node_tracker_history_samples", "coordinator_tracker_history_samples"}
)


@dataclass
class MemorySample:
    """One memwatch observation: per-probe entry counts plus byte totals."""

    at: float
    counts: Dict[str, int] = field(default_factory=dict)

    @property
    def bounded_bytes(self) -> int:
        return sum(
            count * PER_ENTRY_BYTES[name]
            for name, count in self.counts.items()
            if name not in SERIES_PROBES
        )

    @property
    def series_bytes(self) -> int:
        return sum(
            count * PER_ENTRY_BYTES[name]
            for name, count in self.counts.items()
            if name in SERIES_PROBES
        )

    @property
    def total_bytes(self) -> int:
        return self.bounded_bytes + self.series_bytes


class MemoryWatch:
    """Samples the growable structures of a federation into an RSS proxy.

    Call :meth:`sample` at stable points (e.g. once per soak cycle); the
    samples accumulate on the watch and :meth:`growth_fraction` reports the
    relative growth of the *bounded* byte total between the first retained
    sample and the last — the number the soak's ±5% flatness gate checks.
    """

    def __init__(self) -> None:
        self.samples: List[MemorySample] = []

    def sample(
        self,
        system,
        now: float = 0.0,
        scheduler=None,
        injector=None,
        detector=None,
    ) -> MemorySample:
        """Probe ``system`` (and optional runtime companions) once."""
        counts: Dict[str, int] = {}
        node_buffer = 0
        node_events = 0
        node_history = 0
        for node in system.nodes.values():
            node_buffer += node.input_buffer_size()
            events, history = node.tracker_footprint()
            node_events += events
            node_history += history
        counts["node_input_buffer_tuples"] = node_buffer
        counts["node_tracker_window_events"] = node_events
        counts["node_tracker_history_samples"] = node_history

        coord_events = 0
        coord_history = 0
        lanes = 0
        retained = 0
        for coordinator in system.coordinators.all():
            coord_events += coordinator.tracker.window_event_count()
            coord_history += coordinator.tracker.history_size()
            retained += len(coordinator.result_values)
            if coordinator.ledger is not None:
                lanes += coordinator.ledger.lane_count
        counts["coordinator_tracker_window_events"] = coord_events
        counts["coordinator_tracker_history_samples"] = coord_history
        counts["ledger_lanes"] = lanes
        counts["retained_result_values"] = retained
        counts["checkpoint_envelopes"] = system.coordinators.checkpoint_store_size()
        counts["standby_snapshots"] = system.coordinators.standby_store_size()
        counts["epoch_tails"] = system.epoch_tail_count()

        network = system.network
        counts["network_in_flight_messages"] = network.in_flight()
        counts["network_reliable_pending"] = network.reliable_pending()
        counts["network_reorder_buffered"] = network.reorder_buffered()

        if scheduler is not None:
            counts["scheduler_pending_events"] = scheduler.pending_events()
        if injector is not None:
            counts["fault_timeline_events"] = len(injector.timeline)
        if detector is not None:
            counts["detector_incident_records"] = len(detector.detections) + len(
                detector.recoveries
            )

        sample = MemorySample(at=now, counts=counts)
        self.samples.append(sample)
        return sample

    # ------------------------------------------------------------------ gates
    def growth_fraction(
        self, skip_initial: int = 1, window: int = 1
    ) -> Optional[float]:
        """Relative bounded-bytes growth, early retained samples → late.

        ``skip_initial`` drops warm-up samples taken before the structures
        reached steady state (default: the very first).  ``window`` averages
        that many samples at each end before comparing: per-cycle samples
        jitter by a few percent with the crash/failover phase (buffers are
        probed mid-recovery at varying offsets), so a single endpoint pair
        is a noisy growth estimator while window means cancel the phase
        pattern — soak callers use a window spanning whole failover periods.
        Returns ``None`` with fewer than ``2 * window`` comparable samples.
        """
        samples = self.samples[skip_initial:]
        window = max(1, window)
        if len(samples) < 2 * window:
            return None
        first = sum(s.bounded_bytes for s in samples[:window]) / window
        last = sum(s.bounded_bytes for s in samples[-window:]) / window
        if first <= 0:
            return None if last <= 0 else float("inf")
        return (last - first) / first

    def peak_bounded_bytes(self) -> int:
        return max((s.bounded_bytes for s in self.samples), default=0)

    def summary(self, skip_initial: int = 1, window: int = 1) -> Dict[str, object]:
        growth = self.growth_fraction(skip_initial=skip_initial, window=window)
        return {
            "samples": len(self.samples),
            "first_bounded_bytes": (
                self.samples[0].bounded_bytes if self.samples else 0
            ),
            "last_bounded_bytes": (
                self.samples[-1].bounded_bytes if self.samples else 0
            ),
            "peak_bounded_bytes": self.peak_bounded_bytes(),
            "last_series_bytes": (
                self.samples[-1].series_bytes if self.samples else 0
            ),
            "bounded_growth_fraction": growth,
        }
