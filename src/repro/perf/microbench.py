"""Micro-benchmark kernels for the shedding fast path.

Each kernel times one hot path in isolation, and where a pre-optimisation
reference implementation exists (:mod:`repro.core._reference`) it is timed on
the identical workload so the recorded speedup is machine-independent.  The
kernels are shared by ``benchmarks/test_bench_micro.py`` (pytest-benchmark
suite) and ``scripts/bench_report.py`` (writes ``BENCH_shedding.json``).

Workload shapes mirror the paper's scalability experiments: the selection
benchmark sweeps the query count like fig13, and the estimator ingest uses
the fig12 arrival pattern (~200-tuple batches, i.e. 800 tuples/s sources
observed every 0.25 s shedding interval).
"""

from __future__ import annotations

import random
from typing import Dict, List, Mapping, Optional, Tuple as PyTuple

from ..core._reference import (
    ReferenceBalanceSicPolicy,
    ReferenceSourceRateEstimator,
)
from ..core.balance_sic import BalanceSicPolicy
from ..core.shedding import BalanceSicShedder
from ..core.sic import SourceRateEstimator
from ..core.tuples import Batch, Tuple
from ..federation.node import FspsNode
from .stopwatch import PerfRegistry, Stopwatch

__all__ = [
    "build_selection_workload",
    "time_selection",
    "time_estimator_ingest",
    "time_node_ticks",
    "run_microbench",
]

SELECTION_QUERY_COUNTS = (10, 100, 1000)
ESTIMATOR_ARRIVALS = 100_000
ESTIMATOR_CHUNK = 200  # 800 tuples/s observed every 0.25 s interval (fig12)


def build_selection_workload(
    num_queries: int,
    batches_per_query: int = 4,
    tuples_per_batch: int = 25,
    seed: int = 0,
) -> PyTuple[List[Batch], Dict[str, float], int]:
    """Build an overloaded input buffer: batches, reported SIC, capacity.

    Capacity is a quarter of the buffered tuples so the selection loop runs
    its full gradient-ascent convergence, the worst case for the old
    O(iterations × queries) implementation.
    """
    rng = random.Random(seed)
    batches: List[Batch] = []
    reported: Dict[str, float] = {}
    for q in range(num_queries):
        query_id = f"q{q}"
        reported[query_id] = rng.random()
        for b in range(batches_per_query):
            sic = rng.uniform(1e-4, 1e-2)
            tuples = [
                Tuple(timestamp=b + i * 1e-3, sic=sic, values={})
                for i in range(tuples_per_batch)
            ]
            batches.append(Batch(query_id, tuples))
    capacity = (batches_per_query * tuples_per_batch * num_queries) // 4
    return batches, reported, capacity


def time_selection(
    num_queries: int,
    use_reference: bool = False,
    seed: int = 0,
    registry: Optional[PerfRegistry] = None,
) -> float:
    """Seconds for one BALANCE-SIC selection round over a fresh workload."""
    batches, reported, capacity = build_selection_workload(num_queries, seed=seed)
    cls = ReferenceBalanceSicPolicy if use_reference else BalanceSicPolicy
    policy = cls(rng=random.Random(seed))
    with Stopwatch() as sw:
        decision = policy.select(batches, capacity, reported)
    assert decision.kept_tuples == capacity
    if registry is not None:
        name = "selection.reference" if use_reference else "selection.fast"
        registry.record(f"{name}.q{num_queries}", sw.elapsed_seconds)
    return sw.elapsed_seconds


def time_estimator_ingest(
    arrivals: int = ESTIMATOR_ARRIVALS,
    chunk: int = ESTIMATOR_CHUNK,
    use_reference: bool = False,
    registry: Optional[PerfRegistry] = None,
) -> float:
    """Seconds to ingest ``arrivals`` arrivals in ``chunk``-sized batches."""
    cls = ReferenceSourceRateEstimator if use_reference else SourceRateEstimator
    estimator = cls(stw_seconds=1.0)
    calls = arrivals // chunk
    with Stopwatch() as sw:
        for i in range(calls):
            estimator.observe("s", i * 0.25, count=chunk)
    if registry is not None:
        name = "estimator.reference" if use_reference else "estimator.fast"
        registry.record(name, sw.elapsed_seconds)
    return sw.elapsed_seconds


def time_node_ticks(
    ticks: int = 50,
    batches_per_tick: int = 200,
    tuples_per_batch: int = 20,
    capacity_fraction: float = 0.5,
    registry: Optional[PerfRegistry] = None,
) -> float:
    """Seconds to run ``ticks`` overloaded enqueue/shed rounds on one node.

    The node hosts no fragments, so the measurement isolates the input-buffer
    bookkeeping, overload detection and BALANCE-SIC shedding — the paths this
    PR made incremental.
    """
    per_tick_tuples = batches_per_tick * tuples_per_batch
    budget = per_tick_tuples * capacity_fraction
    node = FspsNode(
        node_id="bench-node",
        shedder=BalanceSicShedder(seed=0),
        budget_per_interval=budget,
    )
    rng = random.Random(0)
    with Stopwatch() as sw:
        for tick in range(ticks):
            now = (tick + 1) * 0.25
            for b in range(batches_per_tick):
                query_id = f"q{b % 20}"
                sic = rng.uniform(1e-4, 1e-2)
                tuples = [
                    Tuple(timestamp=now + i * 1e-4, sic=sic, values={})
                    for i in range(tuples_per_batch)
                ]
                node.enqueue(Batch(query_id, tuples))
            node.tick(now)
    assert node.stats.shed_tuples > 0  # the workload must actually overload
    if registry is not None:
        registry.record("node.tick", sw.elapsed_seconds)
    return sw.elapsed_seconds


def run_microbench(
    selection_queries: Optional[Mapping[int, bool]] = None,
    registry: Optional[PerfRegistry] = None,
) -> Dict[str, object]:
    """Run the full micro-benchmark matrix and return a result dict.

    Args:
        selection_queries: query count → also time the reference
            implementation (the reference at Q=1000 takes seconds, so callers
            may restrict where it runs).  Defaults to reference at every Q.
        registry: optional registry collecting the raw laps.

    Returns a JSON-serialisable dict with per-kernel milliseconds and the
    fast-vs-reference speedups.
    """
    if selection_queries is None:
        selection_queries = {q: True for q in SELECTION_QUERY_COUNTS}
    results: Dict[str, object] = {"selection": {}, "estimator": {}, "node": {}}

    for num_queries, with_reference in selection_queries.items():
        entry: Dict[str, float] = {
            "fast_ms": time_selection(num_queries, registry=registry) * 1e3
        }
        if with_reference:
            entry["reference_ms"] = (
                time_selection(num_queries, use_reference=True, registry=registry)
                * 1e3
            )
            entry["speedup"] = entry["reference_ms"] / entry["fast_ms"]
        results["selection"][f"q{num_queries}"] = entry

    fast = time_estimator_ingest(registry=registry) * 1e3
    reference = time_estimator_ingest(use_reference=True, registry=registry) * 1e3
    results["estimator"] = {
        "arrivals": ESTIMATOR_ARRIVALS,
        "chunk": ESTIMATOR_CHUNK,
        "fast_ms": fast,
        "reference_ms": reference,
        "speedup": reference / fast,
    }

    node_seconds = time_node_ticks(registry=registry)
    results["node"] = {
        "ticks": 50,
        "total_ms": node_seconds * 1e3,
        "ticks_per_second": 50 / node_seconds if node_seconds else 0.0,
    }
    return results
