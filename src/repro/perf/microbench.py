"""Micro-benchmark kernels for the shedding fast path.

Each kernel times one hot path in isolation, and where a pre-optimisation
reference implementation exists (:mod:`repro.core._reference`) it is timed on
the identical workload so the recorded speedup is machine-independent.  The
kernels are shared by ``benchmarks/test_bench_micro.py`` (pytest-benchmark
suite) and ``scripts/bench_report.py`` (writes ``BENCH_shedding.json``).

Workload shapes mirror the paper's scalability experiments: the selection
benchmark sweeps the query count like fig13, and the estimator ingest uses
the fig12 arrival pattern (~200-tuple batches, i.e. 800 tuples/s sources
observed every 0.25 s shedding interval).
"""

from __future__ import annotations

import os
import random
from typing import Dict, List, Mapping, Optional, Tuple as PyTuple

from ..core._reference import (
    ReferenceBalanceSicPolicy,
    ReferenceSicAssigner,
    ReferenceSourceRateEstimator,
)
from ..core.balance_sic import BalanceSicPolicy
from ..core.columns import use_backend
from ..core.shedding import BalanceSicShedder
from ..core.sic import SicAssigner, SourceRateEstimator
from ..core.tuples import Batch, Tuple
from ..federation.node import FspsNode
from .stopwatch import PerfRegistry, Stopwatch

__all__ = [
    "build_selection_workload",
    "time_selection",
    "time_estimator_ingest",
    "time_node_ticks",
    "time_generation_sic",
    "time_window_insert",
    "time_window_insert_v2",
    "time_aggregate_v2",
    "time_end_to_end_v2",
    "time_end_to_end_fused",
    "time_migration",
    "run_end_to_end",
    "time_end_to_end",
    "time_runtime",
    "time_reliability",
    "time_result_accounting",
    "run_sharded_scenario",
    "time_sharded",
    "run_microbench",
]

SELECTION_QUERY_COUNTS = (10, 100, 1000)
ESTIMATOR_ARRIVALS = 100_000
ESTIMATOR_CHUNK = 200  # 800 tuples/s observed every 0.25 s interval (fig12)

# End-to-end macro-benchmark scenario: the aggregate workload of Table 1 at
# the paper's local test-bed scale (50 queries) under overload factor 2.
END_TO_END_QUERIES = 50
END_TO_END_RATE = 400.0
END_TO_END_DURATION = 6.0
END_TO_END_WARMUP = 1.0
GENERATION_SOURCES = 8
GENERATION_TICKS = 100
GENERATION_RATE = 2000.0

# Sharded-federation macro-benchmark scenario: a multi-site WAN deployment
# (latency 50 ms, so the conservative lookahead windows carry real work)
# with twice as many sites as worker shards — each of the 4 shards owns two
# sites and the per-interval node work dominates the boundary merge.
SHARDED_NODES = 8
SHARDED_QUERIES = 12
SHARDED_WORKERS = 4
SHARDED_RATE = 60.0
SHARDED_DURATION = 4.0
SHARDED_WARMUP = 0.5
SHARDED_LATENCY = 0.05


def build_selection_workload(
    num_queries: int,
    batches_per_query: int = 4,
    tuples_per_batch: int = 25,
    seed: int = 0,
) -> PyTuple[List[Batch], Dict[str, float], int]:
    """Build an overloaded input buffer: batches, reported SIC, capacity.

    Capacity is a quarter of the buffered tuples so the selection loop runs
    its full gradient-ascent convergence, the worst case for the old
    O(iterations × queries) implementation.
    """
    rng = random.Random(seed)
    batches: List[Batch] = []
    reported: Dict[str, float] = {}
    for q in range(num_queries):
        query_id = f"q{q}"
        reported[query_id] = rng.random()
        for b in range(batches_per_query):
            sic = rng.uniform(1e-4, 1e-2)
            tuples = [
                Tuple(timestamp=b + i * 1e-3, sic=sic, values={})
                for i in range(tuples_per_batch)
            ]
            batches.append(Batch(query_id, tuples))
    capacity = (batches_per_query * tuples_per_batch * num_queries) // 4
    return batches, reported, capacity


def time_selection(
    num_queries: int,
    use_reference: bool = False,
    seed: int = 0,
    registry: Optional[PerfRegistry] = None,
) -> float:
    """Seconds for one BALANCE-SIC selection round over a fresh workload."""
    batches, reported, capacity = build_selection_workload(num_queries, seed=seed)
    cls = ReferenceBalanceSicPolicy if use_reference else BalanceSicPolicy
    policy = cls(rng=random.Random(seed))
    with Stopwatch() as sw:
        decision = policy.select(batches, capacity, reported)
    assert decision.kept_tuples == capacity
    if registry is not None:
        name = "selection.reference" if use_reference else "selection.fast"
        registry.record(f"{name}.q{num_queries}", sw.elapsed_seconds)
    return sw.elapsed_seconds


def time_estimator_ingest(
    arrivals: int = ESTIMATOR_ARRIVALS,
    chunk: int = ESTIMATOR_CHUNK,
    use_reference: bool = False,
    registry: Optional[PerfRegistry] = None,
) -> float:
    """Seconds to ingest ``arrivals`` arrivals in ``chunk``-sized batches."""
    cls = ReferenceSourceRateEstimator if use_reference else SourceRateEstimator
    estimator = cls(stw_seconds=1.0)
    calls = arrivals // chunk
    with Stopwatch() as sw:
        for i in range(calls):
            estimator.observe("s", i * 0.25, count=chunk)
    if registry is not None:
        name = "estimator.reference" if use_reference else "estimator.fast"
        registry.record(name, sw.elapsed_seconds)
    return sw.elapsed_seconds


def time_node_ticks(
    ticks: int = 50,
    batches_per_tick: int = 200,
    tuples_per_batch: int = 20,
    capacity_fraction: float = 0.5,
    registry: Optional[PerfRegistry] = None,
) -> float:
    """Seconds to run ``ticks`` overloaded enqueue/shed rounds on one node.

    The node hosts no fragments, so the measurement isolates the input-buffer
    bookkeeping, overload detection and BALANCE-SIC shedding — the paths this
    PR made incremental.
    """
    per_tick_tuples = batches_per_tick * tuples_per_batch
    budget = per_tick_tuples * capacity_fraction
    node = FspsNode(
        node_id="bench-node",
        shedder=BalanceSicShedder(seed=0),
        budget_per_interval=budget,
    )
    rng = random.Random(0)
    with Stopwatch() as sw:
        for tick in range(ticks):
            now = (tick + 1) * 0.25
            for b in range(batches_per_tick):
                query_id = f"q{b % 20}"
                sic = rng.uniform(1e-4, 1e-2)
                tuples = [
                    Tuple(timestamp=now + i * 1e-4, sic=sic, values={})
                    for i in range(tuples_per_batch)
                ]
                node.enqueue(Batch(query_id, tuples))
            node.tick(now)
    assert node.stats.shed_tuples > 0  # the workload must actually overload
    if registry is not None:
        registry.record("node.tick", sw.elapsed_seconds)
    return sw.elapsed_seconds


def time_generation_sic(
    sources: int = GENERATION_SOURCES,
    ticks: int = GENERATION_TICKS,
    rate: float = GENERATION_RATE,
    dataset: str = "uniform",
    use_reference: bool = False,
    registry: Optional[PerfRegistry] = None,
) -> float:
    """Seconds to generate, SIC-stamp and batch the per-tick source output.

    Fast path: ``generate_block`` → ``assign_block`` → ``Batch.from_block``
    (columns only, no Tuple objects).  Reference: the seed per-tuple pipeline
    — ``generate`` (one Tuple + payload dict per item) →
    :class:`ReferenceSicAssigner` (per-tuple ``observe``/stamp) → ``Batch``.
    Both draw identical seeded value streams, so the comparison is pure
    representation overhead.
    """
    # Imported here so the core microbench kernels stay importable without
    # the workloads package.
    from ..workloads.sources import ValueSource

    interval = 0.25
    value_sources = [
        ValueSource(f"s{i}", rate=rate, dataset=dataset, seed=i)
        for i in range(sources)
    ]
    rates = {f"s{i}": rate for i in range(sources)}
    if use_reference:
        assigner = ReferenceSicAssigner(
            "bench-q", sources, stw_seconds=10.0, nominal_rates=rates
        )
    else:
        assigner = SicAssigner(
            "bench-q", sources, stw_seconds=10.0, nominal_rates=rates
        )
    emitted = 0
    with Stopwatch() as sw:
        for tick in range(ticks):
            start = tick * interval
            end = start + interval
            if use_reference:
                for source in value_sources:
                    tuples = source.generate(start, end)
                    assigner.assign(tuples)
                    batch = Batch("bench-q", tuples, created_at=end)
                    emitted += len(batch)
            else:
                for source in value_sources:
                    block = source.generate_block(start, end)
                    assigner.assign_block(block)
                    batch = Batch.from_block("bench-q", block, created_at=end)
                    emitted += len(batch)
    assert emitted == sources * ticks * int(rate * interval)
    if registry is not None:
        name = "generation.reference" if use_reference else "generation.fast"
        registry.record(name, sw.elapsed_seconds)
    return sw.elapsed_seconds


def time_window_insert(
    blocks: int = 200,
    tuples_per_block: int = 250,
    window_seconds: float = 1.0,
    use_reference: bool = False,
    registry: Optional[PerfRegistry] = None,
) -> float:
    """Seconds to route a stream of batches into a tumbling window and close
    its panes.

    Fast path: ``insert_block`` run-bucketing over column groups (pane SIC
    maintained incrementally).  Reference: the seed per-tuple
    :class:`~repro.streaming._reference.ReferenceTimeWindow` fed materialized
    tuples.  Inputs are pre-built outside the timed region in each path's
    native representation.
    """
    from ..core.columns import ColumnBlock
    from ..streaming._reference import ReferenceTimeWindow
    from ..streaming.windows import TimeWindow

    interval = 0.25
    step = interval / tuples_per_block
    column_blocks = []
    for b in range(blocks):
        start = b * interval
        timestamps = [start + (i + 0.5) * step for i in range(tuples_per_block)]
        column_blocks.append(
            ColumnBlock(
                timestamps=timestamps,
                sics=[1e-4] * tuples_per_block,
                values={"v": [float(i) for i in range(tuples_per_block)]},
                source_id="s",
            )
        )
    horizon = blocks * interval + window_seconds + 1.0
    if use_reference:
        tuple_lists = [block.to_tuples() for block in column_blocks]
        window = ReferenceTimeWindow(window_seconds)
        with Stopwatch() as sw:
            for tuples in tuple_lists:
                window.insert(tuples)
            panes = window.advance(horizon)
            total = sum(pane.total_sic for pane in panes)
    else:
        window = TimeWindow(window_seconds)
        with Stopwatch() as sw:
            for block in column_blocks:
                window.insert_block(block)
            panes = window.advance(horizon)
            total = sum(pane.sic for pane in panes)
    assert total > 0
    if registry is not None:
        name = "window.reference" if use_reference else "window.fast"
        registry.record(name, sw.elapsed_seconds)
    return sw.elapsed_seconds


# Columnar v2 kernel shapes: paper-scale per-block row counts (a 2000 t/s
# fig12-style source observed over a 0.25 s shedding interval yields 500-row
# blocks; multi-source streams merge into blocks of a few thousand rows).
V2_WINDOW_BLOCKS = 100
V2_WINDOW_TUPLES_PER_BLOCK = 2000
V2_AGGREGATE_BLOCKS = 100
V2_AGGREGATE_TUPLES_PER_BLOCK = 2000
# v2 end-to-end macro: the aggregate workload at paper-scale source rates
# under mild overload (capacity_fraction 0.9 — the C2 permanent-overload
# characteristic without the deep-overload split churn of the legacy
# overload-2 scenario, whose runtime is dominated by the — shared, already
# heap-optimized — BALANCE-SIC selection rather than the columnar pipeline).
V2_END_TO_END_QUERIES = 12
V2_END_TO_END_RATE = 2000.0
V2_END_TO_END_CAPACITY = 0.9
V2_END_TO_END_DATASET = "uniform"


def _numpy_version() -> Optional[str]:
    try:
        import numpy
    except ImportError:  # pragma: no cover - stripped installs
        return None
    return numpy.__version__


def _build_v2_blocks(blocks: int, tuples_per_block: int, interval: float = 0.25):
    from ..core.columns import ColumnBlock

    step = interval / tuples_per_block
    built = []
    for b in range(blocks):
        start = b * interval
        timestamps = [start + (i + 0.5) * step for i in range(tuples_per_block)]
        built.append(
            ColumnBlock(
                timestamps=timestamps,
                sics=[1e-4] * tuples_per_block,
                values={"v": [float(i) for i in range(tuples_per_block)]},
                source_id="s",
            )
        )
    return built


def time_window_insert_v2(
    backend: str = "numpy",
    blocks: int = V2_WINDOW_BLOCKS,
    tuples_per_block: int = V2_WINDOW_TUPLES_PER_BLOCK,
    window_seconds: float = 1.0,
    registry: Optional[PerfRegistry] = None,
) -> float:
    """Seconds to bucket paper-scale blocks into a tumbling window and close
    its panes, under one columnar backend.

    Both backends run the *same* ``TimeWindow.insert_block`` fast path on the
    identical workload; only the column storage differs — ``"numpy"``
    (float64 arrays: change-point run scan, cumsum pane SIC, concatenate pane
    merge) versus ``"list"`` (the pre-v2 per-element loops).  The ratio is
    the columnar v2 speedup gated in ``benchmarks/test_bench_micro.py``.
    """
    from ..streaming.windows import TimeWindow

    interval = 0.25
    with use_backend(backend):
        column_blocks = _build_v2_blocks(blocks, tuples_per_block, interval)
        horizon = blocks * interval + window_seconds + 1.0
        window = TimeWindow(window_seconds)
        with Stopwatch() as sw:
            for block in column_blocks:
                window.insert_block(block)
            panes = window.advance(horizon)
            total = sum(pane.sic for pane in panes)
    assert total > 0
    if registry is not None:
        registry.record(f"window_v2.{backend}", sw.elapsed_seconds)
    return sw.elapsed_seconds


def time_aggregate_v2(
    backend: str = "numpy",
    blocks: int = V2_AGGREGATE_BLOCKS,
    tuples_per_block: int = V2_AGGREGATE_TUPLES_PER_BLOCK,
    window_seconds: float = 1.0,
    registry: Optional[PerfRegistry] = None,
) -> float:
    """Seconds to run paper-scale blocks through a windowed aggregate.

    Ingest (window bucketing) plus periodic ``advance_items`` rounds: pane
    merge, payload-column pull and the reduction itself.  On the numpy
    backend the qualifying values stay one float64 array and the mean reduces
    through cumsum's last element; on the list backend every row passes
    through the per-element extraction loop.  Identical results either way —
    the ratio is pure representation.
    """
    from ..streaming.operators.aggregate import Average

    interval = 0.25
    with use_backend(backend):
        column_blocks = _build_v2_blocks(blocks, tuples_per_block, interval)
        operator = Average("v", window_seconds=window_seconds)
        outputs = 0
        with Stopwatch() as sw:
            for b, block in enumerate(column_blocks):
                operator.ingest_block(block)
                outputs += len(operator.advance_items((b + 1) * interval))
            outputs += len(
                operator.advance_items(blocks * interval + window_seconds + 1.0)
            )
    assert outputs > 0
    if registry is not None:
        registry.record(f"aggregate_v2.{backend}", sw.elapsed_seconds)
    return sw.elapsed_seconds


def time_end_to_end_v2(
    backend: str = "numpy",
    registry: Optional[PerfRegistry] = None,
    **kwargs,
) -> float:
    """Seconds for one v2 end-to-end macro run under one columnar backend.

    Same full stack as :func:`time_end_to_end` (sources → SIC → node →
    shedder → windows → operators → coordinator, event runtime), at
    paper-scale source rates under mild overload; see the V2_END_TO_END_*
    constants.  Results are bit-identical across backends, so the ratio
    isolates the column representation end to end.  Fusion is off on both
    sides: the numpy-vs-list ratio keeps its staged-vs-staged meaning (the
    fused ratio is measured separately by :func:`time_end_to_end_fused`).
    """
    params = dict(
        num_queries=V2_END_TO_END_QUERIES,
        rate=V2_END_TO_END_RATE,
        capacity_fraction=V2_END_TO_END_CAPACITY,
        dataset=V2_END_TO_END_DATASET,
        columnar_backend=backend,
        fusion="off",
    )
    params.update(kwargs)
    seconds, result = run_end_to_end(**params)
    # Mild but real overload: the shedder must actually participate.
    assert any(s.shed_tuples > 0 for s in result.node_summaries)
    if registry is not None:
        registry.record(f"end_to_end_v2.{backend}", seconds)
    return seconds


def time_end_to_end_fused(
    fusion: str = "on",
    registry: Optional[PerfRegistry] = None,
    **kwargs,
) -> float:
    """Seconds for one paper-scale macro run under one fusion mode.

    Same scenario as :func:`time_end_to_end_v2` on the numpy backend; the
    ``fusion="on"`` / ``fusion="off"`` ratio isolates the fragment plan
    compiler (fused single-pass prefix vs staged per-operator dispatch).
    Results are bit-identical across modes, so the ratio is pure execution
    cost.
    """
    params = dict(
        num_queries=V2_END_TO_END_QUERIES,
        rate=V2_END_TO_END_RATE,
        capacity_fraction=V2_END_TO_END_CAPACITY,
        dataset=V2_END_TO_END_DATASET,
        columnar_backend="numpy",
        fusion=fusion,
    )
    params.update(kwargs)
    seconds, result = run_end_to_end(**params)
    assert any(s.shed_tuples > 0 for s in result.node_summaries)
    if registry is not None:
        registry.record(f"end_to_end_fused.{fusion}", seconds)
    return seconds


MIGRATION_WINDOW_TUPLES = 100_000


def time_migration(
    tuples: int = MIGRATION_WINDOW_TUPLES,
    phase: str = "roundtrip",
    registry: Optional[PerfRegistry] = None,
) -> float:
    """Checkpoint + restore cost of a window holding ``tuples`` tuples.

    This is the state volume a fragment migration or a periodic checkpoint
    round moves for one heavily-buffered operator (10⁵ tuples ≈ a 1-second
    pane at the fig12 aggregate source rates).  ``phase`` selects what is
    timed on the identical workload:

    * ``"build"`` — filling the window via columnar ``insert_block`` (the
      pipeline's own cost of creating that state; the machine-independent
      denominator for the recorded ratio);
    * ``"roundtrip"`` — ``snapshot()`` into the serialised checkpoint form
      plus ``restore()`` into a fresh window, i.e. the full
      state-transfer cost of :meth:`FspsNode.checkpoint_fragment` →
      ``adopt_fragment`` for that window.

    The round-trip is verified to conserve the tuple count and the
    incrementally-maintained pane SIC bit for bit.
    """
    from ..core.columns import ColumnBlock
    from ..streaming.windows import TimeWindow

    if phase not in ("build", "roundtrip"):
        raise ValueError(f"unknown phase {phase!r}")
    interval = 0.25
    tuples_per_block = 250
    blocks = tuples // tuples_per_block
    step = interval / tuples_per_block
    column_blocks = []
    for b in range(blocks):
        start = b * interval
        timestamps = [start + (i + 0.5) * step for i in range(tuples_per_block)]
        column_blocks.append(
            ColumnBlock(
                timestamps=timestamps,
                sics=[1e-5] * tuples_per_block,
                values={"v": [float(i) for i in range(tuples_per_block)]},
                source_id="s",
            )
        )
    # One window spanning the whole stream: everything stays buffered, so
    # the checkpoint carries all `tuples` tuples.
    window_seconds = blocks * interval + 1.0
    window = TimeWindow(window_seconds)
    if phase == "build":
        with Stopwatch() as sw:
            for block in column_blocks:
                window.insert_block(block)
        assert window.pending_count() == tuples
        if registry is not None:
            registry.record("migration.build", sw.elapsed_seconds)
        return sw.elapsed_seconds
    for block in column_blocks:
        window.insert_block(block)
    before_sic = window.pending_sic()
    with Stopwatch() as sw:
        state = window.snapshot()
        restored = TimeWindow(window_seconds)
        restored.restore(state)
    assert restored.pending_count() == tuples
    assert restored.pending_sic() == before_sic
    if registry is not None:
        registry.record("migration.roundtrip", sw.elapsed_seconds)
    return sw.elapsed_seconds


def run_end_to_end(
    num_queries: int = END_TO_END_QUERIES,
    rate: float = END_TO_END_RATE,
    duration_seconds: float = END_TO_END_DURATION,
    warmup_seconds: float = END_TO_END_WARMUP,
    columnar: bool = True,
    runtime: str = "event",
    capacity_fraction: float = 0.5,
    dataset: str = "gaussian",
    columnar_backend: Optional[str] = None,
    fusion: str = "on",
    reliable_delivery: bool = False,
    result_accounting: bool = True,
    seed: int = 0,
):
    """Run the end-to-end macro-benchmark scenario and return
    ``(seconds, RunResult)``.

    A single-node ``LocalEngine`` deployment of the aggregate workload
    (avg/max/count mix) under overload factor 2 (``capacity_fraction=0.5``).
    With equal seeds the columnar and per-tuple runs — and the event-driven
    and lockstep drivers — are result-identical (the differential tests
    assert it), so a timing difference isolates exactly one variable: the
    tick pipeline's representation (``columnar``) or the execution driver
    (``runtime``).  Result payloads are retained as in the recorded PR 2
    baseline so the timings stay comparable across reports.
    """
    from ..simulation.config import SimulationConfig
    from ..streaming.engine import LocalEngine
    from ..workloads.aggregate import make_aggregate_query

    config = SimulationConfig(
        duration_seconds=duration_seconds,
        warmup_seconds=warmup_seconds,
        capacity_fraction=capacity_fraction,
        columnar=columnar,
        columnar_backend=columnar_backend,
        fusion=fusion,
        runtime=runtime,
        reliable_delivery=reliable_delivery,
        result_accounting=result_accounting,
        retain_result_values=True,
        seed=seed,
    )
    engine = LocalEngine(config)
    kinds = ("avg", "max", "count")
    # Same query ids in both modes so run results are directly comparable
    # (the differential test asserts per-query SIC equality key by key).
    for i in range(num_queries):
        engine.add_query(
            make_aggregate_query(
                kinds[i % len(kinds)],
                query_id=f"bench-q{i}",
                rate=rate,
                dataset=dataset,
                seed=i,
            )
        )
    with Stopwatch() as sw:
        result = engine.run()
    return sw.elapsed_seconds, result


def time_end_to_end(
    use_reference: bool = False,
    registry: Optional[PerfRegistry] = None,
    **kwargs,
) -> float:
    """Seconds for one end-to-end macro-benchmark run (see
    :func:`run_end_to_end`)."""
    seconds, result = run_end_to_end(columnar=not use_reference, **kwargs)
    # The scenario must actually overload the node, otherwise the shedding
    # pipeline under test is idle.
    assert any(s.shed_tuples > 0 for s in result.node_summaries)
    if registry is not None:
        name = "end_to_end.reference" if use_reference else "end_to_end.fast"
        registry.record(name, seconds)
    return seconds


def time_runtime(
    use_lockstep: bool = False,
    registry: Optional[PerfRegistry] = None,
    **kwargs,
) -> float:
    """Seconds for one end-to-end run under one execution driver.

    Same macro-benchmark scenario as :func:`time_end_to_end` (columnar on for
    both sides), varying only the driver: the discrete-event runtime versus
    the lockstep tick loop.  The drivers are result-identical for this seeded
    homogeneous scenario, so the ratio is pure scheduling overhead — the
    event loop is required to stay within 10% of lockstep end to end
    (asserted in ``benchmarks/test_bench_micro.py`` and recorded in
    ``BENCH_shedding.json``).
    """
    runtime = "lockstep" if use_lockstep else "event"
    seconds, result = run_end_to_end(runtime=runtime, **kwargs)
    assert any(s.shed_tuples > 0 for s in result.node_summaries)
    if registry is not None:
        name = "runtime.lockstep" if use_lockstep else "runtime.event"
        registry.record(name, seconds)
    return seconds


def time_reliability(
    reliable: bool = True,
    registry: Optional[PerfRegistry] = None,
    **kwargs,
) -> float:
    """Seconds for one end-to-end run with or without reliable delivery.

    Same macro-benchmark scenario as :func:`time_end_to_end`, varying only
    ``SimulationConfig.reliable_delivery``.  With zero faults the reliable
    channel changes nothing observable (the differential tests assert
    bit-exact result identity), so the ratio is the pure bookkeeping cost of
    sequence numbers, acks and retransmission timers on a loss-free network —
    required to stay within 10% (asserted in ``benchmarks/test_bench_micro.py``
    and recorded in the ``faults`` section of ``BENCH_shedding.json``).
    """
    seconds, result = run_end_to_end(reliable_delivery=reliable, **kwargs)
    assert any(s.shed_tuples > 0 for s in result.node_summaries)
    if registry is not None:
        name = "reliability.on" if reliable else "reliability.off"
        registry.record(name, seconds)
    return seconds


def time_result_accounting(
    accounting: bool = True,
    registry: Optional[PerfRegistry] = None,
    **kwargs,
) -> float:
    """Seconds for one end-to-end run with or without result accounting.

    Same macro-benchmark scenario as :func:`time_end_to_end`, varying only
    ``SimulationConfig.result_accounting``.  With no crashes the ledger only
    ever advances watermarks (nothing is deduplicated), so the runs are
    result-identical and the ratio is the pure bookkeeping cost of stamping
    and lane updates — required to stay within 10% (asserted in
    ``benchmarks/test_bench_micro.py`` and recorded in the ``faults`` section
    of ``BENCH_shedding.json``).
    """
    seconds, result = run_end_to_end(result_accounting=accounting, **kwargs)
    assert any(s.shed_tuples > 0 for s in result.node_summaries)
    if registry is not None:
        name = "result_accounting.on" if accounting else "result_accounting.off"
        registry.record(name, seconds)
    return seconds


def run_sharded_scenario(
    runtime: str = "event",
    workers: int = SHARDED_WORKERS,
    processes: bool = False,
    num_nodes: int = SHARDED_NODES,
    num_queries: int = SHARDED_QUERIES,
    rate: float = SHARDED_RATE,
    duration_seconds: float = SHARDED_DURATION,
    latency_seconds: float = SHARDED_LATENCY,
    seed: int = 0,
):
    """Run the multi-site federation macro-scenario and return
    ``(seconds, RunResult)``.

    Unlike :func:`run_end_to_end` (a single-node ``LocalEngine``
    deployment, where sharding has nothing to partition) this builds a
    WAN federation of ``num_nodes`` sites sharing a complex workload, the
    deployment shape the sharded runtime exists for.  With equal seeds
    the single-heap event driver, inline shards and the multiprocessing
    worker pool are result-identical (the differential suite in
    ``tests/integration/test_sharded_runtime.py`` asserts it bit for
    bit), so a timing difference isolates exactly the execution driver.
    """
    from ..experiments.common import build_federation
    from ..simulation.config import SimulationConfig
    from ..simulation.simulator import Simulator
    from ..workloads.generators import WorkloadSpec, generate_complex_workload

    config = SimulationConfig(
        duration_seconds=duration_seconds,
        warmup_seconds=SHARDED_WARMUP,
        stw_seconds=4.0,
        capacity_fraction=0.5,
        network_latency_seconds=latency_seconds,
        runtime=runtime,
        workers=workers,
        sharded_processes=processes and runtime == "sharded",
        seed=seed,
    )
    spec = WorkloadSpec(
        num_queries=num_queries,
        fragments_per_query=(1, 2),
        kinds=("avg-all", "top5", "cov"),
        source_rate=rate,
        seed=seed,
    )
    system = build_federation(
        generate_complex_workload(spec), num_nodes=num_nodes, config=config
    )
    with Stopwatch() as sw:
        result = Simulator(system, config).run()
    return sw.elapsed_seconds, result


def time_sharded(
    mode: str = "event",
    workers: int = SHARDED_WORKERS,
    registry: Optional[PerfRegistry] = None,
    **kwargs,
):
    """Seconds for one federation macro-run under one execution driver.

    ``mode`` selects the driver: ``"event"`` (single heap), ``"inline"``
    (per-site shards merged in-process) or ``"multiprocess"`` (shards on
    forked workers).  Returns ``(seconds, fingerprint)`` where the
    fingerprint collects the run's observable outcome (per-query SIC and
    message accounting) so callers can assert the modes computed the same
    run before trusting a ratio between their timings.

    The inline-vs-event ratio is machine-independent bookkeeping overhead;
    the multiprocess speedup is *not* — it scales with available cores, so
    consumers must record ``os.cpu_count()`` alongside and gate on it.
    """
    if mode == "event":
        seconds, result = run_sharded_scenario(
            runtime="event", workers=workers, **kwargs
        )
    elif mode == "inline":
        seconds, result = run_sharded_scenario(
            runtime="sharded", workers=workers, processes=False, **kwargs
        )
    elif mode == "multiprocess":
        seconds, result = run_sharded_scenario(
            runtime="sharded", workers=workers, processes=True, **kwargs
        )
    else:
        raise ValueError(
            "mode must be 'event', 'inline' or 'multiprocess', got "
            f"{mode!r}"
        )
    fingerprint = (
        result.per_query_sic,
        result.messages_sent,
        result.bytes_sent,
    )
    if registry is not None:
        registry.record(f"sharded.{mode}", seconds)
    return seconds, fingerprint


def run_microbench(
    selection_queries: Optional[Mapping[int, bool]] = None,
    registry: Optional[PerfRegistry] = None,
) -> Dict[str, object]:
    """Run the full micro-benchmark matrix and return a result dict.

    Args:
        selection_queries: query count → also time the reference
            implementation (the reference at Q=1000 takes seconds, so callers
            may restrict where it runs).  Defaults to reference at every Q.
        registry: optional registry collecting the raw laps.

    Returns a JSON-serialisable dict with per-kernel milliseconds and the
    fast-vs-reference speedups.
    """
    if selection_queries is None:
        selection_queries = {q: True for q in SELECTION_QUERY_COUNTS}
    results: Dict[str, object] = {"selection": {}, "estimator": {}, "node": {}}

    for num_queries, with_reference in selection_queries.items():
        # Sub-millisecond kernels (Q <= 100) are dominated by scheduler
        # noise in a single shot; report best-of-3 so the recorded speedup
        # ratios are stable enough to gate on (the Q=1000 reference run
        # takes seconds and is repeatable as a single measurement).
        repeats = 3 if num_queries <= 100 else 1
        entry: Dict[str, float] = {
            "fast_ms": min(
                time_selection(num_queries, registry=registry)
                for _ in range(repeats)
            )
            * 1e3
        }
        if with_reference:
            entry["reference_ms"] = (
                min(
                    time_selection(
                        num_queries, use_reference=True, registry=registry
                    )
                    for _ in range(repeats)
                )
                * 1e3
            )
            entry["speedup"] = entry["reference_ms"] / entry["fast_ms"]
        results["selection"][f"q{num_queries}"] = entry

    # Sub-millisecond kernel: best-of-3 on *both* sides like the small
    # selection runs, so the recorded ratio is signal rather than scheduler
    # noise (and not biased by repeating only one side).
    fast = (
        min(time_estimator_ingest(registry=registry) for _ in range(3)) * 1e3
    )
    reference = (
        min(
            time_estimator_ingest(use_reference=True, registry=registry)
            for _ in range(3)
        )
        * 1e3
    )
    results["estimator"] = {
        "arrivals": ESTIMATOR_ARRIVALS,
        "chunk": ESTIMATOR_CHUNK,
        "fast_ms": fast,
        "reference_ms": reference,
        "speedup": reference / fast,
    }

    node_seconds = time_node_ticks(registry=registry)
    results["node"] = {
        "ticks": 50,
        "total_ms": node_seconds * 1e3,
        "ticks_per_second": 50 / node_seconds if node_seconds else 0.0,
    }

    # The columnar ratios are gated by `bench_report.py --compare`, so —
    # like the small selection kernels above — each side is best-of-N to
    # keep the recorded ratios signal rather than scheduler noise (the
    # macro-run gets best-of-2: it is the slowest kernel and a ~1 s run
    # already amortizes most jitter).
    gen_fast = (
        min(time_generation_sic(registry=registry) for _ in range(3)) * 1e3
    )
    gen_reference = (
        min(
            time_generation_sic(use_reference=True, registry=registry)
            for _ in range(3)
        )
        * 1e3
    )
    results["generation"] = {
        "sources": GENERATION_SOURCES,
        "ticks": GENERATION_TICKS,
        "rate": GENERATION_RATE,
        "dataset": "uniform",
        "fast_ms": gen_fast,
        "reference_ms": gen_reference,
        "speedup": gen_reference / gen_fast,
    }

    win_fast = (
        min(time_window_insert(registry=registry) for _ in range(3)) * 1e3
    )
    win_reference = (
        min(
            time_window_insert(use_reference=True, registry=registry)
            for _ in range(3)
        )
        * 1e3
    )
    results["window"] = {
        "blocks": 200,
        "tuples_per_block": 250,
        "fast_ms": win_fast,
        "reference_ms": win_reference,
        "speedup": win_reference / win_fast,
    }

    e2e_fast = (
        min(time_end_to_end(registry=registry) for _ in range(2)) * 1e3
    )
    e2e_reference = (
        min(
            time_end_to_end(use_reference=True, registry=registry)
            for _ in range(2)
        )
        * 1e3
    )
    results["end_to_end"] = {
        "queries": END_TO_END_QUERIES,
        "rate": END_TO_END_RATE,
        "duration_seconds": END_TO_END_DURATION,
        "overload_factor": 2.0,
        "fast_ms": e2e_fast,
        "reference_ms": e2e_reference,
        "speedup": e2e_reference / e2e_fast,
    }

    # Columnar v2: the NumPy-backed kernels against the list-backed fast
    # path on identical workloads (both sides run the same code, only the
    # column storage differs; results are bit-identical).  Best-of-3 like
    # the other sub-millisecond kernels; the macro run gets best-of-2.
    win_v2_numpy = (
        min(time_window_insert_v2("numpy", registry=registry) for _ in range(3))
        * 1e3
    )
    win_v2_list = (
        min(time_window_insert_v2("list", registry=registry) for _ in range(3))
        * 1e3
    )
    agg_v2_numpy = (
        min(time_aggregate_v2("numpy", registry=registry) for _ in range(3))
        * 1e3
    )
    agg_v2_list = (
        min(time_aggregate_v2("list", registry=registry) for _ in range(3))
        * 1e3
    )
    e2e_v2_numpy = (
        min(time_end_to_end_v2("numpy", registry=registry) for _ in range(2))
        * 1e3
    )
    e2e_v2_list = (
        min(time_end_to_end_v2("list", registry=registry) for _ in range(2))
        * 1e3
    )
    results["columnar_v2"] = {
        "numpy_version": _numpy_version(),
        "window": {
            "blocks": V2_WINDOW_BLOCKS,
            "tuples_per_block": V2_WINDOW_TUPLES_PER_BLOCK,
            "numpy_ms": win_v2_numpy,
            "list_ms": win_v2_list,
            "speedup": win_v2_list / win_v2_numpy,
        },
        "aggregate": {
            "blocks": V2_AGGREGATE_BLOCKS,
            "tuples_per_block": V2_AGGREGATE_TUPLES_PER_BLOCK,
            "numpy_ms": agg_v2_numpy,
            "list_ms": agg_v2_list,
            "speedup": agg_v2_list / agg_v2_numpy,
        },
        "end_to_end": {
            "queries": V2_END_TO_END_QUERIES,
            "rate": V2_END_TO_END_RATE,
            "capacity_fraction": V2_END_TO_END_CAPACITY,
            "dataset": V2_END_TO_END_DATASET,
            "numpy_ms": e2e_v2_numpy,
            "list_ms": e2e_v2_list,
            "speedup": e2e_v2_list / e2e_v2_numpy,
        },
    }

    # Fused fragment execution: the plan compiler's single-pass prefix
    # against staged v2 on the identical paper-scale scenario (numpy backend
    # both sides, results bit-identical).  Best-of-3: the macro run is tens
    # of milliseconds and the gated ratio must be stable.
    e2e_fused = (
        min(time_end_to_end_fused("on", registry=registry) for _ in range(3))
        * 1e3
    )
    e2e_staged = (
        min(time_end_to_end_fused("off", registry=registry) for _ in range(3))
        * 1e3
    )
    results["fused"] = {
        "end_to_end": {
            "queries": V2_END_TO_END_QUERIES,
            "rate": V2_END_TO_END_RATE,
            "capacity_fraction": V2_END_TO_END_CAPACITY,
            "dataset": V2_END_TO_END_DATASET,
            "fused_ms": e2e_fused,
            "staged_ms": e2e_staged,
            "speedup": e2e_staged / e2e_fused,
        },
    }

    # Checkpoint/restore of a heavily-buffered window (the state volume a
    # fragment migration moves).  The gated quantity is the roundtrip's cost
    # *relative to building the same state through the columnar pipeline* —
    # machine-independent, like every other recorded ratio.
    mig_build = (
        min(time_migration(phase="build", registry=registry) for _ in range(3))
        * 1e3
    )
    mig_roundtrip = (
        min(
            time_migration(phase="roundtrip", registry=registry)
            for _ in range(3)
        )
        * 1e3
    )
    results["migration"] = {
        "tuples": MIGRATION_WINDOW_TUPLES,
        "build_ms": mig_build,
        "roundtrip_ms": mig_roundtrip,
        "roundtrip_vs_build": mig_roundtrip / mig_build,
    }

    # Execution-driver overhead: the discrete-event runtime vs the lockstep
    # tick loop on the identical (columnar) scenario.  Best-of-2 like the
    # macro-run above; `overhead_pct` is the quantity the ≤10% acceptance
    # criterion gates.
    rt_event = min(time_runtime(registry=registry) for _ in range(2)) * 1e3
    rt_lockstep = (
        min(time_runtime(use_lockstep=True, registry=registry) for _ in range(2))
        * 1e3
    )
    results["runtime"] = {
        "queries": END_TO_END_QUERIES,
        "event_ms": rt_event,
        "lockstep_ms": rt_lockstep,
        "overhead_pct": (rt_event / rt_lockstep - 1.0) * 100.0,
    }

    # Reliable-delivery overhead on a loss-free network: same macro scenario,
    # varying only `reliable_delivery` (results are bit-identical, so the
    # ratio is pure transport bookkeeping).  Gated at ≤10% like the runtime.
    rel_off = min(time_reliability(False, registry=registry) for _ in range(2)) * 1e3
    rel_on = min(time_reliability(True, registry=registry) for _ in range(2)) * 1e3
    # Exactly-once result accounting on a crash-free run: same macro scenario,
    # varying only `result_accounting` (stamping always happens; the ledger's
    # lane updates are the measured delta).  Gated at ≤10% like the above.
    acct_off = (
        min(time_result_accounting(False, registry=registry) for _ in range(2))
        * 1e3
    )
    acct_on = (
        min(time_result_accounting(True, registry=registry) for _ in range(2))
        * 1e3
    )
    results["faults"] = {
        "reliability": {
            "queries": END_TO_END_QUERIES,
            "off_ms": rel_off,
            "on_ms": rel_on,
            "overhead_pct": (rel_on / rel_off - 1.0) * 100.0,
        },
        "exactly_once": {
            "queries": END_TO_END_QUERIES,
            "off_ms": acct_off,
            "on_ms": acct_on,
            "overhead_pct": (acct_on / acct_off - 1.0) * 100.0,
        },
    }

    # Sharded multi-core federation: the multi-site WAN macro-scenario under
    # the single-heap event driver, inline shards, and (where fork exists)
    # the multiprocessing worker pool.  Fingerprints are compared so the
    # recorded ratios are between runs proven to compute the same result.
    # Inline-vs-event overhead is machine-independent and gated by
    # `--compare`; the multiprocess speedup scales with available cores, so
    # `cpu_count` is recorded alongside and the ≥2×@4-workers acceptance
    # gate (benchmarks/test_bench_micro.py) only arms on ≥4-CPU machines.
    sharded_ms: Dict[str, Optional[float]] = {"multiprocess": None}
    fingerprints: Dict[str, object] = {}
    modes = [("event", 2), ("inline", 2)]
    if hasattr(os, "fork"):
        modes.append(("multiprocess", 1))
    for mode, repeats in modes:
        laps = []
        for _ in range(repeats):
            seconds, fingerprints[mode] = time_sharded(mode, registry=registry)
            laps.append(seconds)
        sharded_ms[mode] = min(laps) * 1e3
    for mode in fingerprints:
        assert fingerprints[mode] == fingerprints["event"], mode
    multiprocess_ms = sharded_ms["multiprocess"]
    results["sharded"] = {
        "nodes": SHARDED_NODES,
        "queries": SHARDED_QUERIES,
        "workers": SHARDED_WORKERS,
        "cpu_count": os.cpu_count(),
        "event_ms": sharded_ms["event"],
        "inline_ms": sharded_ms["inline"],
        "multiprocess_ms": multiprocess_ms,
        "inline_overhead_pct": (
            (sharded_ms["inline"] / sharded_ms["event"] - 1.0) * 100.0
        ),
        "multiprocess_speedup": (
            None
            if multiprocess_ms is None
            else sharded_ms["event"] / multiprocess_ms
        ),
    }
    return results
