"""Lightweight performance instrumentation for the shedding fast path.

This package is deliberately dependency-free and cheap enough to leave wired
into hot loops: a :class:`Stopwatch` built on ``time.perf_counter`` and a
:class:`PerfRegistry` of named counters and timers.  The micro-benchmark suite
(``benchmarks/test_bench_micro.py``) and the perf-report CLI
(``scripts/bench_report.py``) use it to produce the ``BENCH_shedding.json``
trajectory that future optimisation PRs are measured against.
"""

from .memwatch import MemorySample, MemoryWatch
from .stopwatch import PerfRegistry, Stopwatch, TimerStat, default_registry

__all__ = [
    "MemorySample",
    "MemoryWatch",
    "Stopwatch",
    "TimerStat",
    "PerfRegistry",
    "default_registry",
]
