"""THEMIS reproduction: fairness in federated stream processing under overload.

This package reproduces the system described in "THEMIS: Fairness in Federated
Stream Processing under Overload" (Kalyvianaki, Fiscato, Salonidis, Pietzuch —
SIGMOD 2016):

* :mod:`repro.core` — the source information content (SIC) metric, the
  sliding source time window, and the BALANCE-SIC fair load-shedding
  algorithm (Algorithm 1) together with baseline shedders.
* :mod:`repro.streaming` — the stream-processing substrate: operators with
  black-box SIC propagation, windows, query graphs/fragments and a CQL-like
  query language.
* :mod:`repro.federation` — autonomous nodes, the inter-site network, query
  coordinators and fragment placement.
* :mod:`repro.state` — operator-state checkpoint/restore: the versioned
  :class:`FragmentCheckpoint` envelope behind live fragment migration, node
  rejoin and coordinator failover.
* :mod:`repro.runtime` — the deterministic discrete-event runtime driving the
  federation (independent per-component rounds, heterogeneous per-node
  shedding intervals, mid-run cluster & query lifecycle).
* :mod:`repro.simulation` — the simulation driver standing in for the paper's
  physical test-beds (event-driven by default, lockstep as the oracle).
* :mod:`repro.workloads` — the Table 1 aggregate and complex workloads,
  datasets and population generators.
* :mod:`repro.baselines` — the centralised FIT and utility-maximisation
  baselines of §7.5.
* :mod:`repro.experiments` — one module per paper figure/table.

Quickstart::

    from repro import LocalEngine, SimulationConfig, make_avg_all_query

    engine = LocalEngine(SimulationConfig(duration_seconds=10, capacity_fraction=0.5))
    engine.add_queries(make_avg_all_query(num_fragments=1, rate=50, seed=i)
                       for i in range(5))
    result = engine.run()
    print(result.per_query_sic, result.jains_index)
"""

from .core import (
    BalanceSicConfig,
    BalanceSicPolicy,
    BalanceSicShedder,
    Batch,
    CostModel,
    NoShedder,
    RandomShedder,
    SelectionStrategy,
    ShedDecision,
    Shedder,
    SicAssigner,
    StwConfig,
    TailDropShedder,
    Tuple,
    jains_index,
    make_shedder,
    propagate_sic,
    source_tuple_sic,
)
from .federation import (
    FederatedSystem,
    FspsNode,
    Network,
    Placement,
    RandomPlacement,
    RoundRobinPlacement,
    UniformLatency,
    ZipfPlacement,
)
from .runtime import EventRuntime
from .simulation import RunResult, SimulationConfig, Simulator
from .state import CheckpointError, FragmentCheckpoint
from .streaming import LocalEngine, QueryFragment, QueryGraph, compile_query
from .workloads import (
    WorkloadQuery,
    WorkloadSpec,
    generate_complex_workload,
    make_avg_all_query,
    make_avg_query,
    make_count_query,
    make_cov_query,
    make_max_query,
    make_top5_query,
)

__version__ = "1.0.0"

__all__ = [
    "BalanceSicConfig",
    "BalanceSicPolicy",
    "BalanceSicShedder",
    "Batch",
    "CostModel",
    "NoShedder",
    "RandomShedder",
    "SelectionStrategy",
    "ShedDecision",
    "Shedder",
    "SicAssigner",
    "StwConfig",
    "TailDropShedder",
    "Tuple",
    "jains_index",
    "make_shedder",
    "propagate_sic",
    "source_tuple_sic",
    "FederatedSystem",
    "FspsNode",
    "Network",
    "Placement",
    "RandomPlacement",
    "RoundRobinPlacement",
    "UniformLatency",
    "ZipfPlacement",
    "EventRuntime",
    "RunResult",
    "SimulationConfig",
    "Simulator",
    "CheckpointError",
    "FragmentCheckpoint",
    "LocalEngine",
    "QueryFragment",
    "QueryGraph",
    "compile_query",
    "WorkloadQuery",
    "WorkloadSpec",
    "generate_complex_workload",
    "make_avg_all_query",
    "make_avg_query",
    "make_count_query",
    "make_cov_query",
    "make_max_query",
    "make_top5_query",
    "__version__",
]
