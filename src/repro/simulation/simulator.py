"""Simulation driver for a :class:`FederatedSystem`.

The simulator is a compatibility facade: it accepts a fully-constructed
federation plus a :class:`SimulationConfig` and executes the run under the
configured driver — the discrete-event runtime (:mod:`repro.runtime`, the
default) or the original lockstep tick loop (``runtime="lockstep"``, kept as
the equivalence oracle).  Either way it discards a warm-up period and returns
a :class:`RunResult` with the per-query result SIC values, fairness metrics
and node/network statistics that the experiment harness reports.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional

from ..core.columns import get_default_backend, use_backend
from ..federation.fsps import FederatedSystem
from ..streaming.fused import use_fusion
from ..metrics.collectors import (
    summarize_backpressure,
    summarize_network,
    summarize_result_accounting,
)
from ..perf import PerfRegistry, Stopwatch
from ..runtime import EventRuntime, FailureDetector, ShardedRuntime
from .clock import SimulationClock
from .config import SimulationConfig
from .results import NodeSummary, RunResult

__all__ = ["Simulator"]


class Simulator:
    """Runs a federated deployment under a :class:`SimulationConfig`.

    Args:
        system: the fully-constructed federation to drive.
        config: timing configuration (duration, warm-up, interval, driver).
        measure_shedder_time: wall-clock the shedder invocations (§7.6).
        perf_registry: optional :class:`repro.perf.PerfRegistry`; when given,
            the simulator records the whole run under ``simulator.run`` (and,
            on the lockstep driver, per-tick wall time under
            ``simulator.tick``), so experiment drivers can report throughput
            without instrumenting the loop themselves.
    """

    def __init__(
        self,
        system: FederatedSystem,
        config: SimulationConfig,
        measure_shedder_time: bool = False,
        perf_registry: Optional[PerfRegistry] = None,
    ) -> None:
        self.system = system
        self.config = config
        self.measure_shedder_time = measure_shedder_time
        self.perf_registry = perf_registry
        self.clock = SimulationClock(config.shedding_interval)

    def run(self) -> RunResult:
        """Execute warm-up plus measurement period and summarise the run.

        The columnar backend (``config.columnar_backend``) and the fusion
        mode (``config.fusion``) are scoped to the run: blocks built while
        the simulation executes use the configured storage, fragments compile
        (or decline) fused plans per the configured mode, and the
        process-wide defaults are restored afterwards.
        """
        backend = self.config.columnar_backend or get_default_backend()
        with use_backend(backend), use_fusion(self.config.fusion):
            return self._run()

    def _run(self) -> RunResult:
        timer: Optional[Callable[[], float]] = (
            time.perf_counter if self.measure_shedder_time else None
        )
        total_ticks = max(1, self.config.total_ticks)
        registry = self.perf_registry
        run_watch = Stopwatch().start() if registry is not None else None
        if self.config.runtime == "lockstep":
            for _ in range(total_ticks):
                self.clock.advance()
                if registry is not None:
                    with registry.time("simulator.tick"):
                        self.system.tick(timer=timer)
                else:
                    self.system.tick(timer=timer)
        else:
            # The runtime is scoped to this call and detached afterwards so
            # the system can be reused (e.g. under the lockstep driver).
            # Lifecycle experiments that keep driving a run build on
            # EventRuntime directly instead (see repro.experiments.churn).
            if self.config.runtime == "sharded":
                runtime = ShardedRuntime(
                    self.system,
                    node_intervals=self.config.node_shedding_intervals,
                    timer=timer,
                    checkpoint_interval=self.config.checkpoint_interval,
                    workers=self.config.workers,
                    processes=self.config.sharded_processes,
                    partition=self.config.shard_partition,
                )
            else:
                runtime = EventRuntime(
                    self.system,
                    node_intervals=self.config.node_shedding_intervals,
                    timer=timer,
                    checkpoint_interval=self.config.checkpoint_interval,
                )
            # Detection-only failure detector (no node_factory): it declares
            # silent nodes dead and records latencies; automatic rejoin needs
            # a factory and is wired by the chaos experiment harness.
            detector = None
            if self.config.heartbeat_interval is not None:
                detector = FailureDetector(
                    runtime,
                    interval=self.config.heartbeat_interval,
                    timeout_intervals=self.config.heartbeat_timeout_intervals,
                )
            try:
                runtime.run(ticks=total_ticks)
            finally:
                if detector is not None:
                    detector.close()
                runtime.close()
            for _ in range(total_ticks):
                self.clock.advance()
        if registry is not None and run_watch is not None:
            registry.record("simulator.run", run_watch.stop())
            registry.incr("simulator.ticks", total_ticks)
        return self._collect()

    # ----------------------------------------------------------------- helpers
    def _collect(self) -> RunResult:
        warmup_ticks = self.config.warmup_ticks
        per_query_sic = self.system.mean_sic_per_query(skip_initial=warmup_ticks)
        time_series: Dict[str, List[float]] = {}
        result_values: Dict[str, List[Dict[str, object]]] = {}
        for coordinator in self.system.coordinators.all():
            series = [value for _, value in coordinator.tracker.history]
            time_series[coordinator.query_id] = series
            result_values[coordinator.query_id] = list(coordinator.result_values)

        node_summaries = [
            NodeSummary(
                node_id=node.node_id,
                received_tuples=node.stats.received_tuples,
                kept_tuples=node.stats.kept_tuples,
                shed_tuples=node.stats.shed_tuples,
                overloaded_ticks=node.stats.overloaded_ticks,
                ticks=node.stats.ticks,
                shedder_invocations=node.stats.shedder_invocations,
                shedder_time_seconds=node.stats.shedder_time_seconds,
            )
            for node in self.system.nodes.values()
        ]

        shedder_names = {
            type(node.shedder).__name__ for node in self.system.nodes.values()
        }
        shedder = next(iter(sorted(shedder_names)), "unknown")

        return RunResult(
            shedder=shedder,
            duration_seconds=self.config.duration_seconds,
            per_query_sic=per_query_sic,
            sic_time_series=time_series,
            node_summaries=node_summaries,
            messages_sent=self.system.network.sent_messages,
            bytes_sent=self.system.network.bytes_sent,
            result_values=result_values,
            network=summarize_network(self.system.network),
            backpressure=summarize_backpressure(self.system),
            result_accounting=summarize_result_accounting(self.system),
        )
