"""Time-stepped simulation substrate."""

from .clock import SimulationClock
from .config import SimulationConfig
from .results import NodeSummary, RunResult
from .simulator import Simulator

__all__ = [
    "SimulationClock",
    "SimulationConfig",
    "NodeSummary",
    "RunResult",
    "Simulator",
]
