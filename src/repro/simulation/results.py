"""Run results and summaries.

A :class:`RunResult` captures everything the experiments report: per-query
mean result SIC over the measurement period, Jain's Fairness Index, the SIC
time series, per-node shedding statistics and network counters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List

from ..core.fairness import FairnessSummary, jains_index, summarize_fairness

__all__ = ["NodeSummary", "RunResult"]


@dataclass
class NodeSummary:
    """Per-node statistics extracted from the node's counters."""

    node_id: str
    received_tuples: int
    kept_tuples: int
    shed_tuples: int
    overloaded_ticks: int
    ticks: int
    shedder_invocations: int
    shedder_time_seconds: float

    @property
    def shed_fraction(self) -> float:
        if self.received_tuples == 0:
            return 0.0
        return self.shed_tuples / self.received_tuples

    @property
    def mean_shedder_time(self) -> float:
        if self.shedder_invocations == 0:
            return 0.0
        return self.shedder_time_seconds / self.shedder_invocations


@dataclass
class RunResult:
    """Summary of one simulated FSPS run."""

    shedder: str
    duration_seconds: float
    per_query_sic: Dict[str, float] = field(default_factory=dict)
    sic_time_series: Dict[str, List[float]] = field(default_factory=dict)
    node_summaries: List[NodeSummary] = field(default_factory=list)
    messages_sent: int = 0
    bytes_sent: int = 0
    result_values: Dict[str, List[Dict[str, object]]] = field(default_factory=dict)
    # Flattened transport accounting (see metrics.collectors.summarize_network):
    # bytes_delivered plus the per-message-type sent/delivered/dropped/
    # duplicate/retransmit/expired ledger of the run's Network.
    network: Dict[str, object] = field(default_factory=dict)
    # Ingress-backpressure accounting (metrics.collectors.summarize_backpressure):
    # paced/overflow/engagement counts, total and per node.
    backpressure: Dict[str, object] = field(default_factory=dict)
    # Exactly-once result-ledger closure (FederatedSystem.result_accounting_report):
    # arrived == recorded + deduped + dropped + lost_to_crash + retired.
    result_accounting: Dict[str, object] = field(default_factory=dict)
    extra: Dict[str, object] = field(default_factory=dict)

    # --------------------------------------------------------------- fairness
    @property
    def jains_index(self) -> float:
        return jains_index(self.per_query_sic.values())

    @property
    def mean_sic(self) -> float:
        values = list(self.per_query_sic.values())
        if not values:
            return 0.0
        return sum(values) / len(values)

    @property
    def std_sic(self) -> float:
        values = list(self.per_query_sic.values())
        if not values:
            return 0.0
        mean = self.mean_sic
        return math.sqrt(sum((v - mean) ** 2 for v in values) / len(values))

    def fairness(self) -> FairnessSummary:
        return summarize_fairness(self.per_query_sic)

    # ----------------------------------------------------------------- totals
    @property
    def total_shed_tuples(self) -> int:
        return sum(n.shed_tuples for n in self.node_summaries)

    @property
    def total_received_tuples(self) -> int:
        return sum(n.received_tuples for n in self.node_summaries)

    @property
    def shed_fraction(self) -> float:
        total = self.total_received_tuples
        if total == 0:
            return 0.0
        return self.total_shed_tuples / total

    @property
    def mean_shedder_time(self) -> float:
        invocations = sum(n.shedder_invocations for n in self.node_summaries)
        if invocations == 0:
            return 0.0
        total = sum(n.shedder_time_seconds for n in self.node_summaries)
        return total / invocations

    def summary_row(self) -> Dict[str, float]:
        """A flat dictionary convenient for tabular experiment output."""
        return {
            "shedder": self.shedder,
            "queries": len(self.per_query_sic),
            "mean_sic": self.mean_sic,
            "std_sic": self.std_sic,
            "jains_index": self.jains_index,
            "shed_fraction": self.shed_fraction,
        }
