"""Simulation configuration.

The reproduction substitutes the paper's physical test-beds (Table 2) with a
deterministic time-stepped simulation; :class:`SimulationConfig` collects the
knobs that the experiments sweep — STW duration, shedding interval, run
duration, warm-up, shedder choice, network latency, and the per-node
processing budget expressed as a fraction of the offered load (the "overload
factor").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..core.stw import StwConfig

__all__ = ["SimulationConfig"]


@dataclass
class SimulationConfig:
    """Configuration of one simulated FSPS run.

    Attributes:
        duration_seconds: simulated run length after warm-up.
        warmup_seconds: initial period excluded from the reported statistics
            (the paper reports results over 5 minutes of execution after query
            deployment; the simulation uses shorter, warmed-up runs).
        shedding_interval: the tuple shedder invocation period (slide of the
            STW approximation); 250 ms in the paper's evaluation.
        stw_seconds: duration of the source time window; 10 s in the paper.
        shedder: which shedder nodes use ("balance-sic", "random",
            "tail-drop" or "none").
        capacity_fraction: per-node processing budget as a fraction of the
            load offered to that node; values below 1.0 create permanent
            overload (characteristic C2).
        network_latency_seconds: one-way latency between distinct endpoints.
        enable_sic_updates: whether coordinators disseminate result SIC values
            (the Figure 4 ablation disables this).
        coordinator_update_interval: dissemination period; defaults to the
            shedding interval.
        columnar: run the columnar tick pipeline (vectorized source
            generation, SIC stamping and window bucketing).  Result-identical
            to the per-tuple path for equal seeds; disable to time or
            differentially test the tuple-at-a-time reference path.
        seed: RNG seed shared by data generation, placement and shedders.
    """

    duration_seconds: float = 30.0
    warmup_seconds: float = 5.0
    shedding_interval: float = 0.25
    stw_seconds: float = 10.0
    shedder: str = "balance-sic"
    capacity_fraction: float = 0.5
    network_latency_seconds: float = 0.005
    enable_sic_updates: bool = True
    coordinator_update_interval: Optional[float] = None
    columnar: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if self.duration_seconds <= 0:
            raise ValueError(
                f"duration_seconds must be positive, got {self.duration_seconds}"
            )
        if self.warmup_seconds < 0:
            raise ValueError(
                f"warmup_seconds must be non-negative, got {self.warmup_seconds}"
            )
        if self.shedding_interval <= 0:
            raise ValueError(
                f"shedding_interval must be positive, got {self.shedding_interval}"
            )
        if self.stw_seconds < self.shedding_interval:
            raise ValueError("stw_seconds must be at least the shedding interval")
        if self.capacity_fraction <= 0:
            raise ValueError(
                f"capacity_fraction must be positive, got {self.capacity_fraction}"
            )
        if self.network_latency_seconds < 0:
            raise ValueError("network_latency_seconds must be non-negative")

    @property
    def total_seconds(self) -> float:
        return self.duration_seconds + self.warmup_seconds

    @property
    def warmup_ticks(self) -> int:
        return int(round(self.warmup_seconds / self.shedding_interval))

    @property
    def total_ticks(self) -> int:
        return int(round(self.total_seconds / self.shedding_interval))

    def stw_config(self) -> StwConfig:
        """Build the :class:`StwConfig` corresponding to this configuration."""
        return StwConfig(
            stw_seconds=self.stw_seconds, slide_seconds=self.shedding_interval
        )
