"""Simulation configuration.

The reproduction substitutes the paper's physical test-beds (Table 2) with a
deterministic time-stepped simulation; :class:`SimulationConfig` collects the
knobs that the experiments sweep — STW duration, shedding interval, run
duration, warm-up, shedder choice, network latency, and the per-node
processing budget expressed as a fraction of the offered load (the "overload
factor").
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..core.columns import BACKENDS
from ..core.stw import StwConfig
from ..streaming.fused import FUSION_MODES

__all__ = ["SimulationConfig", "RUNTIMES"]

# Execution drivers: "event" is the discrete-event runtime
# (:mod:`repro.runtime`); "lockstep" is the original global tick loop, kept
# as the equivalence oracle and perf baseline; "sharded" partitions the
# event runtime by site into per-shard schedulers (inline by default,
# ``sharded_processes=True`` for a multiprocessing worker pool) with results
# bit-identical to "event".
RUNTIMES = ("event", "lockstep", "sharded")


def _default_runtime() -> str:
    """Process-wide runtime default, overridable via ``REPRO_RUNTIME``.

    Lets CI run the whole tier-1 suite under the sharded driver
    (``REPRO_RUNTIME=sharded``) without touching each test's config, the
    same pattern as ``REPRO_COLUMNAR_BACKEND`` / ``REPRO_FUSION``.
    """
    value = os.environ.get("REPRO_RUNTIME", "").strip().lower()
    if not value:
        return "event"
    if value not in RUNTIMES:
        raise ValueError(
            f"REPRO_RUNTIME must be one of {RUNTIMES}, got {value!r}"
        )
    return value


def _default_workers() -> int:
    """Process-wide shard-count default, overridable via ``REPRO_WORKERS``.

    Companion to ``REPRO_RUNTIME``: lets CI (and the experiments CLI) vary
    how many per-site shards the sharded driver uses without touching each
    test's config.  Ignored by the other runtimes.
    """
    value = os.environ.get("REPRO_WORKERS", "").strip()
    if not value:
        return 2
    try:
        return int(value)
    except ValueError:
        raise ValueError(
            f"REPRO_WORKERS must be an integer, got {value!r}"
        ) from None


@dataclass
class SimulationConfig:
    """Configuration of one simulated FSPS run.

    Attributes:
        duration_seconds: simulated run length after warm-up.
        warmup_seconds: initial period excluded from the reported statistics
            (the paper reports results over 5 minutes of execution after query
            deployment; the simulation uses shorter, warmed-up runs).
        shedding_interval: the tuple shedder invocation period (slide of the
            STW approximation); 250 ms in the paper's evaluation.
        stw_seconds: duration of the source time window; 10 s in the paper.
        shedder: which shedder nodes use ("balance-sic", "random",
            "tail-drop" or "none").
        capacity_fraction: per-node processing budget as a fraction of the
            load offered to that node; values below 1.0 create permanent
            overload (characteristic C2).
        network_latency_seconds: one-way latency between distinct endpoints.
        enable_sic_updates: whether coordinators disseminate result SIC values
            (the Figure 4 ablation disables this).
        coordinator_update_interval: dissemination period; defaults to the
            shedding interval.
        columnar: run the columnar tick pipeline (vectorized source
            generation, SIC stamping and window bucketing).  Result-identical
            to the per-tuple path for equal seeds; disable to time or
            differentially test the tuple-at-a-time reference path.
        columnar_backend: column storage for the columnar pipeline —
            ``"numpy"`` (float64 ndarrays, the columnar v2 kernels) or
            ``"list"`` (plain Python lists, the pre-v2 implementation kept as
            oracle and NumPy-free fallback).  ``None`` (default) uses the
            process-wide default (:func:`repro.core.columns.get_default_backend`,
            overridable via the ``REPRO_COLUMNAR_BACKEND`` environment
            variable).  Seeded runs are bit-exact result-identical across
            backends; the simulator scopes the setting to the run.
        runtime: execution driver — ``"event"`` (the discrete-event runtime,
            default) or ``"lockstep"`` (the original global tick loop, kept as
            the equivalence oracle).  Seeded homogeneous-interval runs are
            result-identical under both.
        node_shedding_intervals: per-node shedding-interval overrides (node
            id → seconds), honoured by the event runtime only — the lockstep
            loop is homogeneous by construction.
        checkpoint_interval: cadence (seconds) of the federation-wide
            checkpoint round that keeps the coordinator-held fragment
            checkpoints (node rejoin) and coordinator standby states
            (failover) fresh.  Event runtime only; ``None`` disables
            periodic checkpointing.  Checkpoints never mutate state, so
            enabling them does not change a run's results.
        reliable_delivery: run data/result messages over the network's
            reliable channel (per-link sequence numbers, acks, retransmit
            with exponential backoff, receiver-side dedup) instead of
            fire-and-forget.  With no injected faults this changes no
            results (asserted differentially); under loss it gives
            exactly-once delivery.  ``updateSIC`` and heartbeats stay
            best-effort either way.
        heartbeat_interval: cadence (seconds) of the heartbeat-based failure
            detector's sweeps; ``None`` (default) disables the detector.
            Event runtime only.  With zero injected faults every heartbeat
            arrives and the detector never acts.
        heartbeat_timeout_intervals: silent sweeps before a node is declared
            dead (detection timeout = interval × this).
        result_accounting: maintain the coordinator-side result ledger that
            deduplicates replayed root-fragment output after crash recovery
            and accounts checkpoint-gap losses (exactly-once results).  On by
            default; the off-path exists so the overhead can be timed.
        max_ingress_tuples: bound on each node's ingress buffer (tuples).
            ``None`` (default) leaves ingress unbounded, matching the
            pre-backpressure behaviour.  When set, sources are paced against
            the node's remaining credit before memory grows, and the cap is
            enforced as a last defence (overflow counted, never buffered).
        ingress_high_fraction / ingress_low_fraction: hysteresis thresholds
            for backpressure as fractions of ``max_ingress_tuples`` —
            pacing engages when occupancy reaches the high watermark and
            releases once it drains to the low one.
        fusion: fused fragment execution — ``"on"`` (default) compiles
            fusible linear fragments (receiver → annotated filters → tumbling
            aggregate → output) into single-pass columnar plans
            (:mod:`repro.streaming.fused`); ``"off"`` forces the staged
            operator-at-a-time pipeline everywhere.  Fusion only ever
            activates on the numpy columnar backend (the list backend always
            runs staged, as the equivalence oracle) and is bit-exact
            result-identical to the staged path for equal seeds.  The
            simulator scopes the setting to the run, like the backend.
        retain_result_values: keep every result tuple's payload on the query
            coordinators (needed by the SIC-correlation experiments, which
            align degraded and perfect runs window by window).  Off by
            default: unbounded retention leaks memory on long runs.
        max_result_values: cap on retained result payloads per query (oldest
            evicted first); ``None`` retains everything while
            ``retain_result_values`` is on.
        seed: RNG seed shared by data generation, placement and shedders.
    """

    duration_seconds: float = 30.0
    warmup_seconds: float = 5.0
    shedding_interval: float = 0.25
    stw_seconds: float = 10.0
    shedder: str = "balance-sic"
    capacity_fraction: float = 0.5
    network_latency_seconds: float = 0.005
    enable_sic_updates: bool = True
    coordinator_update_interval: Optional[float] = None
    columnar: bool = True
    columnar_backend: Optional[str] = None
    fusion: str = "on"
    runtime: str = field(default_factory=_default_runtime)
    workers: int = field(default_factory=_default_workers)
    sharded_processes: bool = False
    shard_partition: Dict[str, int] = field(default_factory=dict)
    node_shedding_intervals: Dict[str, float] = field(default_factory=dict)
    checkpoint_interval: Optional[float] = None
    reliable_delivery: bool = False
    heartbeat_interval: Optional[float] = None
    heartbeat_timeout_intervals: int = 3
    result_accounting: bool = True
    max_ingress_tuples: Optional[int] = None
    ingress_high_fraction: float = 0.8
    ingress_low_fraction: float = 0.5
    retain_result_values: bool = False
    max_result_values: Optional[int] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.duration_seconds <= 0:
            raise ValueError(
                f"duration_seconds must be positive, got {self.duration_seconds}"
            )
        if self.warmup_seconds < 0:
            raise ValueError(
                f"warmup_seconds must be non-negative, got {self.warmup_seconds}"
            )
        if self.shedding_interval <= 0:
            raise ValueError(
                f"shedding_interval must be positive, got {self.shedding_interval}"
            )
        if self.stw_seconds < self.shedding_interval:
            raise ValueError("stw_seconds must be at least the shedding interval")
        if self.capacity_fraction <= 0:
            raise ValueError(
                f"capacity_fraction must be positive, got {self.capacity_fraction}"
            )
        if self.network_latency_seconds < 0:
            raise ValueError("network_latency_seconds must be non-negative")
        if self.runtime not in RUNTIMES:
            raise ValueError(
                f"runtime must be one of {RUNTIMES}, got {self.runtime!r}"
            )
        if self.workers < 1:
            raise ValueError(f"workers must be at least 1, got {self.workers}")
        for node_id, shard in self.shard_partition.items():
            if not (0 <= shard < self.workers):
                raise ValueError(
                    f"shard_partition[{node_id!r}] must be in [0, "
                    f"{self.workers}), got {shard}"
                )
        if self.sharded_processes and self.runtime != "sharded":
            raise ValueError(
                "sharded_processes requires runtime='sharded', got "
                f"runtime={self.runtime!r}"
            )
        if self.sharded_processes and self.heartbeat_interval is not None:
            raise ValueError(
                "sharded_processes cannot run heartbeat failure detection "
                "(the detector schedules control events after the workers "
                "fork); use inline shards (sharded_processes=False)"
            )
        if self.columnar_backend is not None and self.columnar_backend not in BACKENDS:
            raise ValueError(
                f"columnar_backend must be one of {BACKENDS} or None, "
                f"got {self.columnar_backend!r}"
            )
        if self.fusion not in FUSION_MODES:
            raise ValueError(
                f"fusion must be one of {FUSION_MODES}, got {self.fusion!r}"
            )
        for node_id, interval in self.node_shedding_intervals.items():
            if interval <= 0:
                raise ValueError(
                    f"node_shedding_intervals[{node_id!r}] must be positive, "
                    f"got {interval}"
                )
        if self.checkpoint_interval is not None and self.checkpoint_interval <= 0:
            raise ValueError(
                f"checkpoint_interval must be positive, got "
                f"{self.checkpoint_interval}"
            )
        if self.heartbeat_interval is not None and self.heartbeat_interval <= 0:
            raise ValueError(
                f"heartbeat_interval must be positive, got {self.heartbeat_interval}"
            )
        if self.heartbeat_timeout_intervals < 1:
            raise ValueError(
                f"heartbeat_timeout_intervals must be at least 1, got "
                f"{self.heartbeat_timeout_intervals}"
            )
        if self.max_ingress_tuples is not None and self.max_ingress_tuples <= 0:
            raise ValueError(
                f"max_ingress_tuples must be positive, got {self.max_ingress_tuples}"
            )
        if not (0.0 < self.ingress_low_fraction <= self.ingress_high_fraction <= 1.0):
            raise ValueError(
                "ingress watermark fractions must satisfy "
                "0 < low <= high <= 1, got "
                f"low={self.ingress_low_fraction} high={self.ingress_high_fraction}"
            )
        if self.max_result_values is not None and self.max_result_values <= 0:
            raise ValueError(
                f"max_result_values must be positive, got {self.max_result_values}"
            )

    @property
    def total_seconds(self) -> float:
        return self.duration_seconds + self.warmup_seconds

    @property
    def warmup_ticks(self) -> int:
        return int(round(self.warmup_seconds / self.shedding_interval))

    @property
    def total_ticks(self) -> int:
        return int(round(self.total_seconds / self.shedding_interval))

    def stw_config(self) -> StwConfig:
        """Build the :class:`StwConfig` corresponding to this configuration."""
        return StwConfig(
            stw_seconds=self.stw_seconds, slide_seconds=self.shedding_interval
        )

    def reliability_config(self):
        """The network :class:`ReliabilityConfig` for this run (or ``None``)."""
        if not self.reliable_delivery:
            return None
        # Imported lazily: the simulation package stays importable without
        # pulling the federation layer in at module-import time.
        from ..federation.network import ReliabilityConfig

        return ReliabilityConfig()
