"""Simulation clock.

A tiny helper that advances simulated time in fixed steps (the shedding
interval) and answers periodicity questions ("is a coordinator update due?").
Kept separate so components that need a notion of time do not depend on the
simulator itself.
"""

from __future__ import annotations

from typing import Iterator

__all__ = ["SimulationClock"]


class SimulationClock:
    """Fixed-step simulated clock."""

    def __init__(self, step_seconds: float, start: float = 0.0) -> None:
        if step_seconds <= 0:
            raise ValueError(f"step_seconds must be positive, got {step_seconds}")
        self.step_seconds = float(step_seconds)
        self.start = float(start)
        self._now = float(start)
        self._ticks = 0

    @property
    def now(self) -> float:
        return self._now

    @property
    def ticks(self) -> int:
        return self._ticks

    @property
    def elapsed(self) -> float:
        return self._now - self.start

    def advance(self) -> float:
        """Advance by one step and return the new time."""
        self._ticks += 1
        self._now = self.start + self._ticks * self.step_seconds
        return self._now

    def iterate(self, duration_seconds: float) -> Iterator[float]:
        """Yield successive tick times until ``duration_seconds`` have elapsed."""
        if duration_seconds <= 0:
            raise ValueError(f"duration must be positive, got {duration_seconds}")
        steps = max(1, int(round(duration_seconds / self.step_seconds)))
        for _ in range(steps):
            yield self.advance()

    def is_multiple_of(self, period_seconds: float, tolerance: float = 1e-9) -> bool:
        """True when the current time is (approximately) a multiple of ``period_seconds``."""
        if period_seconds <= 0:
            raise ValueError(f"period must be positive, got {period_seconds}")
        ratio = self._now / period_seconds
        return abs(ratio - round(ratio)) < tolerance

    def reset(self) -> None:
        self._now = self.start
        self._ticks = 0
