"""Centralised related-work baselines: FIT LP and concave utility maximisation."""

from .fit import FitOptimizer
from .problem import (
    AllocationProblem,
    AllocationResult,
    QueryDemand,
    problem_from_deployment,
)
from .utility_max import UtilityMaxOptimizer

__all__ = [
    "FitOptimizer",
    "AllocationProblem",
    "AllocationResult",
    "QueryDemand",
    "problem_from_deployment",
    "UtilityMaxOptimizer",
]
