"""FIT-style centralised shedding baseline (Tatbul et al. [34], §7.5).

FIT maximises the *sum of weighted query throughputs* subject to node
capacities.  The paper shows that this objective, while optimal in aggregate,
is grossly unfair: in the two-node set-up of §7.5 the LP serves a handful of
queries completely and starves everybody else.

The optimisation problem is a linear program::

    maximise    Σ_q  w_q · r_q · x_q
    subject to  Σ_q  cost_{q,n} · r_q · x_q ≤ C_n     for every node n
                0 ≤ x_q ≤ 1

solved with :func:`scipy.optimize.linprog` (the paper used GLPK; the solution
is solver-independent).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np
from scipy.optimize import linprog

from .problem import AllocationProblem, AllocationResult

__all__ = ["FitOptimizer"]


class FitOptimizer:
    """Solve the FIT weighted-throughput LP for an allocation problem."""

    name = "fit"

    def __init__(self, method: str = "highs") -> None:
        self.method = method

    def solve(self, problem: AllocationProblem) -> AllocationResult:
        """Return the throughput-maximising admitted fractions."""
        num_queries = problem.num_queries
        # linprog minimises, so negate the weighted throughput.
        objective = np.array(
            [-(q.weight * q.input_rate) for q in problem.queries], dtype=float
        )

        node_ids = problem.node_ids
        a_ub: List[List[float]] = []
        b_ub: List[float] = []
        for node_id in node_ids:
            row = [
                q.node_costs.get(node_id, 0.0) * q.input_rate for q in problem.queries
            ]
            if any(value > 0 for value in row):
                a_ub.append(row)
                b_ub.append(problem.node_capacities[node_id])

        bounds = [(0.0, 1.0)] * num_queries
        if a_ub:
            solution = linprog(
                objective,
                A_ub=np.array(a_ub, dtype=float),
                b_ub=np.array(b_ub, dtype=float),
                bounds=bounds,
                method=self.method,
            )
        else:
            solution = linprog(
                objective, bounds=bounds, method=self.method
            )
        if not solution.success:  # pragma: no cover - solver failure is exceptional
            raise RuntimeError(f"FIT LP failed to solve: {solution.message}")

        fractions: Dict[str, float] = {}
        for demand, value in zip(problem.queries, solution.x):
            fractions[demand.query_id] = float(min(1.0, max(0.0, value)))
        achieved = sum(
            demand.weight * demand.input_rate * fractions[demand.query_id]
            for demand in problem.queries
        )
        return AllocationResult(
            fractions=fractions, objective=achieved, solver=self.name
        )
