"""Concave utility-maximisation baseline (Zhao et al. [44], §7.5).

Zhao et al. model distributed load shedding as maximising the sum of concave
utility functions of query output rates.  With logarithmic utilities the
optimum is the classic proportionally-fair allocation; the paper reports that
this yields a fair solution in the simple two-node set-up but is less fair
than BALANCE-SIC on the complex 60-query, 4-node deployment (Jain's index
0.87 vs. 0.97).

The optimisation problem is::

    maximise    Σ_q  w_q · log(x_q · r_q + ε)
    subject to  Σ_q  cost_{q,n} · r_q · x_q ≤ C_n     for every node n
                0 ≤ x_q ≤ 1

solved with SLSQP (the paper used Matlab; again the solution is
solver-independent).
"""

from __future__ import annotations

import math
from typing import Dict, List

import numpy as np
from scipy.optimize import LinearConstraint, minimize

from .problem import AllocationProblem, AllocationResult

__all__ = ["UtilityMaxOptimizer"]


class UtilityMaxOptimizer:
    """Solve the concave (logarithmic) utility maximisation problem."""

    name = "utility-max"

    def __init__(self, epsilon: float = 1e-6, max_iterations: int = 500) -> None:
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        self.epsilon = float(epsilon)
        self.max_iterations = int(max_iterations)

    def solve(self, problem: AllocationProblem) -> AllocationResult:
        """Return the proportionally-fair admitted fractions."""
        rates = np.array([q.input_rate for q in problem.queries], dtype=float)
        weights = np.array([max(q.weight, 0.0) for q in problem.queries], dtype=float)
        num_queries = problem.num_queries

        def negative_utility(x: np.ndarray) -> float:
            outputs = x * rates + self.epsilon
            return -float(np.sum(weights * np.log(outputs)))

        def gradient(x: np.ndarray) -> np.ndarray:
            outputs = x * rates + self.epsilon
            return -(weights * rates) / outputs

        constraints = []
        rows: List[List[float]] = []
        bounds_upper: List[float] = []
        for node_id in problem.node_ids:
            row = [
                q.node_costs.get(node_id, 0.0) * q.input_rate for q in problem.queries
            ]
            if any(value > 0 for value in row):
                rows.append(row)
                bounds_upper.append(problem.node_capacities[node_id])
        if rows:
            constraints.append(
                LinearConstraint(
                    np.array(rows, dtype=float),
                    lb=-np.inf,
                    ub=np.array(bounds_upper, dtype=float),
                )
            )

        # Feasible starting point: scale a uniform allocation into the most
        # constrained node's capacity.
        start = np.full(num_queries, 0.5)
        for row, cap in zip(rows, bounds_upper):
            used = float(np.dot(row, start))
            if used > cap > 0:
                start *= cap / used
        start = np.clip(start, 1e-6, 1.0)

        solution = minimize(
            negative_utility,
            start,
            jac=gradient,
            bounds=[(0.0, 1.0)] * num_queries,
            constraints=constraints,
            method="SLSQP",
            options={"maxiter": self.max_iterations, "ftol": 1e-9},
        )
        if not solution.success and not np.all(np.isfinite(solution.x)):
            raise RuntimeError(
                f"utility maximisation failed to solve: {solution.message}"
            )

        x = np.clip(solution.x, 0.0, 1.0)
        fractions: Dict[str, float] = {
            demand.query_id: float(value)
            for demand, value in zip(problem.queries, x)
        }
        achieved = sum(
            demand.weight * math.log(fractions[demand.query_id] * demand.input_rate + self.epsilon)
            for demand in problem.queries
        )
        return AllocationResult(
            fractions=fractions, objective=achieved, solver=self.name
        )

    @staticmethod
    def normalized_log_outputs(
        result: AllocationResult, problem: AllocationProblem, epsilon: float = 1e-6
    ) -> Dict[str, float]:
        """Normalised log-output rates, the utility distribution of [44]."""
        outputs = result.output_rates(problem)
        logs = {qid: math.log(rate + epsilon) for qid, rate in outputs.items()}
        max_log = max(logs.values()) if logs else 1.0
        if max_log <= 0:
            return {qid: 0.0 for qid in logs}
        return {qid: max(0.0, value) / max_log for qid, value in logs.items()}
