"""Centralised load-shedding allocation problems (§7.5).

The two related-work baselines the paper compares against — FIT [34] and the
network-utility-maximisation framework of Zhao et al. [44] — both formulate
load shedding as a *centralised* optimisation problem: choose, for every
query, the fraction of its input to admit so that node capacities are
respected and an objective over the query outputs is maximised.

:class:`AllocationProblem` captures that formulation in a solver-independent
way; :func:`problem_from_deployment` derives a problem instance from a THEMIS
deployment (queries, placement, node budgets) so the same workload can be
solved centrally and compared with the distributed BALANCE-SIC outcome.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from ..core.fairness import jains_index
from ..federation.deployment import Placement
from ..workloads.generators import estimate_source_path_cost

__all__ = ["QueryDemand", "AllocationProblem", "AllocationResult", "problem_from_deployment"]


@dataclass
class QueryDemand:
    """One query's demand in the centralised formulation.

    Attributes:
        query_id: query identifier.
        input_rate: total source tuple rate of the query (tuples/second).
        weight: weight of the query in the FIT objective (1.0 in §7.5).
        node_costs: per-node processing cost of one admitted tuple of this
            query (cost units); only nodes hosting fragments appear.
    """

    query_id: str
    input_rate: float
    weight: float = 1.0
    node_costs: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.input_rate <= 0:
            raise ValueError(
                f"query {self.query_id!r}: input_rate must be positive, "
                f"got {self.input_rate}"
            )
        if self.weight < 0:
            raise ValueError(f"query {self.query_id!r}: weight must be non-negative")


@dataclass
class AllocationProblem:
    """A centralised allocation problem over queries and node capacities."""

    queries: List[QueryDemand]
    node_capacities: Dict[str, float]

    def __post_init__(self) -> None:
        if not self.queries:
            raise ValueError("an allocation problem needs at least one query")
        if not self.node_capacities:
            raise ValueError("an allocation problem needs at least one node")
        for demand in self.queries:
            for node in demand.node_costs:
                if node not in self.node_capacities:
                    raise ValueError(
                        f"query {demand.query_id!r} references unknown node {node!r}"
                    )

    @property
    def num_queries(self) -> int:
        return len(self.queries)

    @property
    def node_ids(self) -> List[str]:
        return list(self.node_capacities)

    def query_ids(self) -> List[str]:
        return [q.query_id for q in self.queries]


@dataclass
class AllocationResult:
    """Solution of a centralised allocation problem.

    Attributes:
        fractions: admitted fraction of each query's input (0..1).
        objective: the solver's objective value.
        solver: name of the baseline that produced the solution.
    """

    fractions: Dict[str, float]
    objective: float
    solver: str

    def output_rates(self, problem: AllocationProblem) -> Dict[str, float]:
        rates: Dict[str, float] = {}
        for demand in problem.queries:
            rates[demand.query_id] = self.fractions.get(demand.query_id, 0.0) * demand.input_rate
        return rates

    def jains_index_of_fractions(self) -> float:
        """Fairness of the admitted fractions (the quantity SIC approximates)."""
        return jains_index(self.fractions.values())

    def queries_fully_served(self, threshold: float = 0.999) -> int:
        return sum(1 for f in self.fractions.values() if f >= threshold)

    def queries_fully_starved(self, threshold: float = 1e-3) -> int:
        return sum(1 for f in self.fractions.values() if f <= threshold)


def problem_from_deployment(
    queries: Sequence[object],
    placement: Placement,
    node_budgets: Mapping[str, float],
    shedding_interval: float,
    weights: Optional[Mapping[str, float]] = None,
) -> AllocationProblem:
    """Build an :class:`AllocationProblem` from a THEMIS deployment.

    Every workload query contributes a demand whose per-node cost is the cost
    of its fragments placed on that node (per admitted source tuple, using the
    same path-cost estimate that sizes node budgets), so the centralised
    baselines and the distributed system face exactly the same constraints.
    """
    demands: List[QueryDemand] = []
    for query in queries:
        source_rates = {
            getattr(s, "source_id"): float(getattr(s, "rate", 0.0))
            for s in query.sources
        }
        total_rate = sum(source_rates.values())
        if total_rate <= 0:
            continue
        node_costs: Dict[str, float] = {}
        for fragment in query.fragments.values():
            node_id = placement.node_for(fragment.fragment_id)
            fragment_rate = sum(
                source_rates.get(source_id, 0.0)
                for source_id in fragment.source_bindings
            )
            if fragment_rate <= 0:
                continue
            path_cost = estimate_source_path_cost(fragment)
            # Cost per admitted query tuple, weighted by the share of the
            # query's tuples that flow through this fragment.
            share = fragment_rate / total_rate
            node_costs[node_id] = node_costs.get(node_id, 0.0) + path_cost * share
        weight = float(weights.get(query.query_id, 1.0)) if weights else 1.0
        demands.append(
            QueryDemand(
                query_id=query.query_id,
                input_rate=total_rate,
                weight=weight,
                node_costs=node_costs,
            )
        )
    capacities = {
        node_id: float(budget) / shedding_interval
        for node_id, budget in node_budgets.items()
    }
    return AllocationProblem(queries=demands, node_capacities=capacities)
