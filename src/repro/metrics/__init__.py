"""Error metrics and metric collectors."""

from .collectors import MetricsCollector, SummaryStats, TimeSeries
from .errors import (
    align_series,
    kendall_distance,
    mean_absolute_relative_error,
    normalized_kendall_distance,
    std_around_reference,
)

__all__ = [
    "MetricsCollector",
    "SummaryStats",
    "TimeSeries",
    "align_series",
    "kendall_distance",
    "mean_absolute_relative_error",
    "normalized_kendall_distance",
    "std_around_reference",
]
