"""Metric collectors and small time-series helpers.

Experiments accumulate per-query and per-run observations; these helpers keep
that bookkeeping out of the experiment code and provide the summary statistics
reported in EXPERIMENTS.md (mean ± std, confidence-style spreads, series
down-sampling for the SIC time series).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from ..core.fairness import summary_moments

__all__ = [
    "SummaryStats",
    "TimeSeries",
    "MetricsCollector",
    "summarize_backpressure",
    "summarize_network",
    "summarize_result_accounting",
]


def summarize_network(network) -> Dict[str, object]:
    """Flatten a :class:`~repro.federation.network.Network`'s accounting.

    One plain dictionary combining the legacy top-level counters with the
    per-message-type :class:`NetworkStats` ledger — what ``RunResult.network``
    carries and the experiment reports print.  ``delivered`` counts unique
    application-dispatched messages; retransmissions, duplicates, drops and
    expirations are itemised per message kind under ``stats``.
    """
    return {
        "sent_messages": network.sent_messages,
        "delivered_messages": network.delivered_messages,
        "bytes_sent": network.bytes_sent,
        "bytes_delivered": network.bytes_delivered,
        "in_flight": network.in_flight(),
        "reliable_pending": network.reliable_pending(),
        "reorder_buffered": network.reorder_buffered(),
        "stats": network.stats.as_dict(),
    }


def summarize_backpressure(system) -> Dict[str, object]:
    """Flatten a federation's ingress-backpressure accounting.

    Per node: the configured bound, tuples paced back at the sources,
    tuples refused by the hard cap (``overflow`` — zero when pacing engages
    early enough) and how often the high watermark was crossed.  All zeros
    (and ``bounded: False``) when no node bounds its ingress.
    """
    per_node: Dict[str, Dict[str, object]] = {}
    for node_id in sorted(system.nodes):
        node = system.nodes[node_id]
        per_node[node_id] = {
            "max_ingress_tuples": node.max_ingress_tuples,
            "paced_tuples": node.stats.paced_tuples,
            "overflow_tuples": node.stats.ingress_overflow_tuples,
            "engagements": node.stats.backpressure_engagements,
        }
    return {
        "bounded": any(
            entry["max_ingress_tuples"] is not None for entry in per_node.values()
        ),
        "paced_tuples": sum(e["paced_tuples"] for e in per_node.values()),
        "overflow_tuples": sum(e["overflow_tuples"] for e in per_node.values()),
        "engagements": sum(e["engagements"] for e in per_node.values()),
        "per_node": per_node,
    }


def summarize_result_accounting(system) -> Dict[str, object]:
    """The federation's exactly-once result ledger closure.

    Thin alias of :meth:`FederatedSystem.result_accounting_report`, kept
    here so run summaries source all their sections from one module.
    """
    return system.result_accounting_report()


@dataclass
class SummaryStats:
    """Mean, standard deviation and extrema of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float

    @classmethod
    def from_samples(cls, samples: Iterable[float]) -> "SummaryStats":
        values = [float(v) for v in samples]
        if not values:
            return cls(count=0, mean=0.0, std=0.0, minimum=0.0, maximum=0.0)
        # Shared moments helper (vectorized with sequential-order sums above
        # its cut-over, exact scalar loops below it — bit-identical).
        mean, variance, minimum, maximum = summary_moments(values)
        return cls(
            count=len(values),
            mean=mean,
            std=math.sqrt(variance),
            minimum=minimum,
            maximum=maximum,
        )

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "max": self.maximum,
        }

    def __str__(self) -> str:
        return f"{self.mean:.4f} ± {self.std:.4f} (n={self.count})"


class TimeSeries:
    """An append-only (time, value) series with summary helpers."""

    def __init__(self, name: str = "series") -> None:
        self.name = name
        self._times: List[float] = []
        self._values: List[float] = []

    def append(self, time: float, value: float) -> None:
        if self._times and time < self._times[-1]:
            raise ValueError(
                f"time series {self.name!r} requires non-decreasing times"
            )
        self._times.append(float(time))
        self._values.append(float(value))

    def times(self) -> List[float]:
        return list(self._times)

    def values(self) -> List[float]:
        return list(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def last(self) -> Optional[float]:
        return self._values[-1] if self._values else None

    def summary(self, skip_initial: int = 0) -> SummaryStats:
        return SummaryStats.from_samples(self._values[skip_initial:])

    def downsample(self, max_points: int) -> List[Tuple[float, float]]:
        """Return at most ``max_points`` evenly spaced (time, value) pairs."""
        if max_points <= 0:
            raise ValueError(f"max_points must be positive, got {max_points}")
        n = len(self._values)
        if n <= max_points:
            return list(zip(self._times, self._values))
        step = n / max_points
        indices = [min(n - 1, int(i * step)) for i in range(max_points)]
        return [(self._times[i], self._values[i]) for i in indices]


class MetricsCollector:
    """Keyed collection of samples (e.g. per query, per configuration)."""

    def __init__(self) -> None:
        self._samples: Dict[str, List[float]] = {}

    def record(self, key: str, value: float) -> None:
        self._samples.setdefault(key, []).append(float(value))

    def record_many(self, values: Mapping[str, float]) -> None:
        for key, value in values.items():
            self.record(key, value)

    def keys(self) -> List[str]:
        return list(self._samples)

    def samples(self, key: str) -> List[float]:
        return list(self._samples.get(key, []))

    def summary(self, key: str) -> SummaryStats:
        return SummaryStats.from_samples(self._samples.get(key, []))

    def summaries(self) -> Dict[str, SummaryStats]:
        return {key: self.summary(key) for key in self._samples}

    def means(self) -> Dict[str, float]:
        return {key: self.summary(key).mean for key in self._samples}

    def __contains__(self, key: str) -> bool:
        return key in self._samples

    def __len__(self) -> int:
        return len(self._samples)
