"""Result-error metrics used by the SIC-correlation experiments (§7.1).

* mean absolute relative error — compares degraded aggregate values with the
  values produced by perfect processing (AVG, MAX, COUNT queries, Figure 6);
* normalised Kendall's distance — compares degraded and perfect top-k lists
  (TOP-5 query, Figure 7a);
* sample standard deviation — spread of the degraded covariance estimates
  around the perfect covariance (COV query, Figure 7b).
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, List, Optional, Sequence

__all__ = [
    "mean_absolute_relative_error",
    "kendall_distance",
    "normalized_kendall_distance",
    "std_around_reference",
    "align_series",
]


def mean_absolute_relative_error(
    degraded: Sequence[float], perfect: Sequence[float], epsilon: float = 1e-9
) -> float:
    """Mean of ``|degraded - perfect| / |perfect|`` over paired samples.

    Pairs where the perfect value is (near) zero fall back to the absolute
    error to avoid dividing by zero.  Raises ``ValueError`` when no pairs are
    available.
    """
    pairs = list(zip(degraded, perfect))
    if not pairs:
        raise ValueError("cannot compute an error over empty series")
    total = 0.0
    for approx, exact in pairs:
        if abs(exact) < epsilon:
            total += abs(approx - exact)
        else:
            total += abs(approx - exact) / abs(exact)
    return total / len(pairs)


def kendall_distance(list_a: Sequence[object], list_b: Sequence[object]) -> int:
    """Kendall's distance with penalty 1 for top-k lists [Fagin et al.].

    Counts (i) pairs of elements ranked in opposite order by the two lists and
    (ii) pairs where one or both elements appear in only one of the lists and
    the order cannot be confirmed.  Duplicates are ignored beyond their first
    occurrence.
    """
    a = list(dict.fromkeys(list_a))
    b = list(dict.fromkeys(list_b))
    pos_a = {item: rank for rank, item in enumerate(a)}
    pos_b = {item: rank for rank, item in enumerate(b)}
    universe = list(dict.fromkeys(a + b))
    distance = 0
    for x, y in itertools.combinations(universe, 2):
        both_a = x in pos_a and y in pos_a
        both_b = x in pos_b and y in pos_b
        if both_a and both_b:
            # Case 1: ranked by both lists — count order inversions.
            if (pos_a[x] - pos_a[y]) * (pos_b[x] - pos_b[y]) < 0:
                distance += 1
        elif both_a or both_b:
            # Case 2/4: one list ranks both elements.
            present = pos_a if both_a else pos_b
            other = pos_b if both_a else pos_a
            x_in_other = x in other
            y_in_other = y in other
            if x_in_other == y_in_other:
                # Case 4: neither element appears in the other top-k list —
                # pessimistic penalty of 1.
                distance += 1
            else:
                # Case 2: the other list implicitly ranks its present element
                # above the absent one; disagreement if the full list says the
                # opposite.
                ranked_elsewhere = x if x_in_other else y
                missing_elsewhere = y if x_in_other else x
                if present[missing_elsewhere] < present[ranked_elsewhere]:
                    distance += 1
        else:
            # Case 3: x only in one list, y only in the other — each list
            # implicitly ranks its own element above the other's: disagreement.
            distance += 1
    return distance


def normalized_kendall_distance(
    list_a: Sequence[object], list_b: Sequence[object]
) -> float:
    """Kendall's distance normalised to [0, 1] (0 = identical rankings)."""
    a = list(dict.fromkeys(list_a))
    b = list(dict.fromkeys(list_b))
    universe = list(dict.fromkeys(a + b))
    max_pairs = len(universe) * (len(universe) - 1) / 2
    if max_pairs == 0:
        return 0.0
    return min(1.0, kendall_distance(a, b) / max_pairs)


def std_around_reference(
    samples: Sequence[float], reference: Optional[float] = None
) -> float:
    """Standard deviation of ``samples`` around ``reference`` (or their mean)."""
    values = [float(v) for v in samples]
    if not values:
        return 0.0
    center = reference if reference is not None else sum(values) / len(values)
    return math.sqrt(sum((v - center) ** 2 for v in values) / len(values))


def align_series(
    degraded: Dict[float, float], perfect: Dict[float, float]
) -> List[tuple]:
    """Align two keyed series (e.g. per-window results) on their common keys."""
    common = sorted(set(degraded) & set(perfect))
    return [(degraded[key], perfect[key]) for key in common]
