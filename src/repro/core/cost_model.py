"""Online cost model for node capacity estimation (§6, Assumption 1).

Algorithm 1 needs to know ``c``, the number of tuples a node can process
during one shedding interval.  THEMIS estimates it online: the node measures
how much processing effort past tuples required, keeps a moving average of the
per-tuple cost, and divides the node's per-interval processing budget by that
average.  The model is independent of the node's hardware: it adapts to
whatever throughput the node actually achieves.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional

__all__ = ["CostModel", "CostModelConfig"]


@dataclass(frozen=True)
class CostModelConfig:
    """Configuration of the moving-average cost model.

    Attributes:
        window: number of past observations kept in the moving average.
        initial_cost_per_tuple: cost assumed before any observation exists.
        min_capacity: lower bound on the estimated capacity, so a node never
            reports that it can process zero tuples (which would shed
            everything forever and prevent the estimate from recovering).
    """

    window: int = 16
    initial_cost_per_tuple: float = 1.0
    min_capacity: int = 1

    def __post_init__(self) -> None:
        if self.window <= 0:
            raise ValueError(f"window must be positive, got {self.window}")
        if self.initial_cost_per_tuple <= 0:
            raise ValueError(
                "initial_cost_per_tuple must be positive, got "
                f"{self.initial_cost_per_tuple}"
            )
        if self.min_capacity < 1:
            raise ValueError(f"min_capacity must be >= 1, got {self.min_capacity}")


class CostModel:
    """Moving-average estimate of per-tuple processing cost → capacity.

    The node calls :meth:`observe` after every processing round with the
    number of tuples it processed and the total cost (in the node's budget
    units — simulated CPU-time in this reproduction) that they required.
    :meth:`capacity` then converts the node's per-interval budget into the
    input-buffer threshold ``c`` used by the overload detector and Algorithm 1.
    """

    def __init__(self, config: Optional[CostModelConfig] = None) -> None:
        self.config = config or CostModelConfig()
        self._samples: Deque[float] = deque(maxlen=self.config.window)
        self._total_tuples = 0
        self._total_cost = 0.0

    def observe(self, tuples_processed: int, total_cost: float) -> None:
        """Record one processing round.

        Rounds that processed nothing carry no information and are ignored.
        So are zero-cost rounds (e.g. a node hosting no fragments yet): a
        zero sample would drive the moving-average cost to 0 and the
        capacity estimate to infinity.
        """
        if tuples_processed < 0:
            raise ValueError(
                f"tuples_processed must be non-negative, got {tuples_processed}"
            )
        if total_cost < 0:
            raise ValueError(f"total_cost must be non-negative, got {total_cost}")
        if tuples_processed == 0 or total_cost == 0:
            return
        self._samples.append(total_cost / tuples_processed)
        self._total_tuples += tuples_processed
        self._total_cost += total_cost

    def cost_per_tuple(self) -> float:
        """Current moving-average cost of processing one tuple."""
        if not self._samples:
            return self.config.initial_cost_per_tuple
        return sum(self._samples) / len(self._samples)

    def capacity(self, budget_per_interval: float) -> int:
        """Return the tuple capacity ``c`` for a given per-interval budget."""
        if budget_per_interval < 0:
            raise ValueError(
                f"budget_per_interval must be non-negative, got {budget_per_interval}"
            )
        cost = self.cost_per_tuple()
        estimate = int(budget_per_interval / cost)
        return max(self.config.min_capacity, estimate)

    @property
    def observations(self) -> int:
        """Number of cost samples currently in the moving-average window."""
        return len(self._samples)

    @property
    def lifetime_tuples(self) -> int:
        """Total tuples observed over the model's lifetime."""
        return self._total_tuples

    @property
    def lifetime_cost(self) -> float:
        """Total cost observed over the model's lifetime."""
        return self._total_cost
