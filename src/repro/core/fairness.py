"""Fairness metrics.

The BALANCE-SIC policy aims to equalise the result SIC values of all queries.
The paper quantifies how well the values are balanced with Jain's Fairness
Index (§7.2); this module implements that index together with small summary
helpers used throughout the evaluation harness.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Sequence

from .columns import seq_sum

try:  # Guarded: the fairness metrics work without NumPy installed.
    import numpy as np
except ImportError:  # pragma: no cover - exercised only on stripped installs
    np = None

__all__ = [
    "jains_index",
    "FairnessSummary",
    "summarize_fairness",
    "relative_spread",
    "summary_moments",
]

# Below this many samples the ndarray round-trip costs more than it saves;
# both branches are bit-identical (sequential-order sums via
# repro.core.columns.seq_sum), so the cut-over is a pure perf knob.
_VECTORIZE_MIN = 32


def summary_moments(values: List[float]) -> "tuple[float, float, float, float]":
    """``(mean, variance, min, max)`` of a non-empty float sample.

    The one shared implementation behind :func:`summarize_fairness` and
    :class:`repro.metrics.collectors.SummaryStats`: vectorized with
    sequential-order sums above the cut-over, the exact scalar loops below
    it — bit-identical either way.
    """
    if np is not None and len(values) >= _VECTORIZE_MIN:
        arr = np.asarray(values)
        mean = seq_sum(arr) / len(values)
        deviations = arr - mean
        variance = seq_sum(deviations * deviations) / len(values)
        return mean, variance, float(arr.min()), float(arr.max())
    mean = sum(values) / len(values)
    variance = sum((v - mean) ** 2 for v in values) / len(values)
    return mean, variance, min(values), max(values)


def jains_index(values: Iterable[float]) -> float:
    """Return Jain's Fairness Index of ``values``.

    ``J(x) = (sum x_i)^2 / (n * sum x_i^2)``.  The index ranges from ``1/n``
    (maximally unfair: a single query receives everything) to ``1`` (all
    queries have the same value).  By convention an empty input or an
    all-zero input yields ``1.0`` — a system that gives nothing to anybody is
    (vacuously) balanced, and this matches how the paper reports fully
    overloaded configurations.
    """
    xs = [float(v) for v in values]
    if not xs:
        return 1.0
    if np is not None and len(xs) >= _VECTORIZE_MIN:
        arr = np.asarray(xs)
        total = seq_sum(arr)
        squares = seq_sum(arr * arr)
    else:
        total = sum(xs)
        squares = sum(x * x for x in xs)
    if squares == 0.0:
        return 1.0
    return (total * total) / (len(xs) * squares)


def relative_spread(values: Sequence[float]) -> float:
    """Return ``(max - min) / mean`` of ``values`` (0 when degenerate)."""
    xs = [float(v) for v in values]
    if not xs:
        return 0.0
    if np is not None and len(xs) >= _VECTORIZE_MIN:
        arr = np.asarray(xs)
        mean = seq_sum(arr) / len(xs)
        if mean == 0.0:
            return 0.0
        return float(arr.max() - arr.min()) / mean
    mean = sum(xs) / len(xs)
    if mean == 0.0:
        return 0.0
    return (max(xs) - min(xs)) / mean


@dataclass
class FairnessSummary:
    """Summary statistics over a set of per-query SIC values."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    jains_index: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "max": self.maximum,
            "jains_index": self.jains_index,
        }


def summarize_fairness(per_query_sic: Mapping[str, float]) -> FairnessSummary:
    """Summarise per-query SIC values into a :class:`FairnessSummary`."""
    values: List[float] = [float(v) for v in per_query_sic.values()]
    if not values:
        return FairnessSummary(0, 0.0, 0.0, 0.0, 0.0, 1.0)
    mean, variance, minimum, maximum = summary_moments(values)
    return FairnessSummary(
        count=len(values),
        mean=mean,
        std=math.sqrt(variance),
        minimum=minimum,
        maximum=maximum,
        jains_index=jains_index(values),
    )
