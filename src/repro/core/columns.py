"""Columnar tuple storage: parallel arrays instead of ``Tuple`` objects.

The per-tuple data model (:class:`repro.core.tuples.Tuple`) allocates one
dataclass instance plus one payload dict per stream item.  Under the
millions-of-tuples workloads of the scalability experiments that object churn
dominates end-to-end simulation time, so the hot pipeline — source generation,
SIC assignment, shedding and window bucketing — exchanges
:class:`ColumnBlock`s instead: a timestamp column, a SIC column and one column
per payload field, all of the same length.

Backends (columnar v2)
----------------------

A block's columns are stored in one of two representations:

* ``"numpy"`` (default when NumPy is importable) — ``timestamps`` and
  ``sics`` are contiguous ``float64`` ndarrays; payload columns are
  ``float64`` ndarrays when every value is a Python float and ``object``
  ndarrays otherwise.  Slicing is an O(1) zero-copy view, concatenation is
  one ``np.concatenate`` per column, and every kernel that consumes blocks
  (SIC stamping, batch splitting, window bucketing, aggregation) runs as
  element-wise array ops.
* ``"list"`` — plain Python lists, byte-for-byte the pre-v2 implementation,
  kept as the equivalence oracle and as the fallback when NumPy is absent.

**Determinism rule:** every reduction over columns goes through
*sequential-order* primitives — :func:`seq_sum` folds left-to-right via
``np.cumsum`` (whose last element reproduces the exact additions of a Python
``for`` loop), never ``np.sum`` (pairwise summation, different rounding).
Stable orderings use ``np.argsort(kind="stable")``.  Seeded runs are therefore
**bit-exact result-identical** across the two backends and against the seed
per-tuple pipeline (the differential suites assert it).

The active backend is a process-wide setting (``set_default_backend`` /
``use_backend``); :class:`repro.simulation.config.SimulationConfig` exposes it
as ``columnar_backend`` and the simulator scopes it around each run.  The
``REPRO_COLUMNAR_BACKEND`` environment variable overrides the import-time
default (used by the CI leg that runs the whole suite list-backed).

A block is *lazily* convertible to the per-tuple representation
(:meth:`ColumnBlock.to_tuples`), which is the compatibility surface for
operators and tests that have not been vectorized.  Conversions are exact:
``to_tuples`` reproduces the tuples the seed per-tuple code paths would have
built — same timestamps, same SIC values, same payload dicts in the same field
order (array values convert back to the identical Python scalars) — so seeded
columnar runs are result-identical to tuple-at-a-time runs.  Full-block
materializations are memoized (rebinding any column invalidates the cache), so
repeated compatibility fallbacks stop rebuilding the dict list from scratch;
like the seed per-tuple pipeline, which shares tuple objects between a window
pane and its consumers, materialized tuples must be treated as read-only.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence

from .tuples import SMALL_COLUMN, Tuple, seq_sum

try:  # NumPy is an install requirement, but the list backend works without it.
    import numpy as np
except ImportError:  # pragma: no cover - exercised only on stripped installs
    np = None

__all__ = [
    "ColumnBlock",
    "ColumnAppender",
    "BACKENDS",
    "get_default_backend",
    "set_default_backend",
    "use_backend",
    "seq_sum",
    "SMALL_COLUMN",
    "to_pylist",
]

BACKENDS = ("numpy", "list")

# Materialization accounting: every `_build_tuples` call bumps the default
# perf registry's `columns.materializations` / `columns.materialized_rows`
# counters, so the microbench (and ad-hoc profiling) can quantify how much
# of a run still falls back to per-tuple objects.  Imported lazily to keep
# `repro.core` free of an import-time dependency on `repro.perf`.
_materialization_registry = None


def _count_materialization(rows: int) -> None:
    global _materialization_registry
    registry = _materialization_registry
    if registry is None:
        from ..perf.stopwatch import default_registry

        registry = _materialization_registry = default_registry()
    registry.incr("columns.materializations")
    registry.incr("columns.materialized_rows", rows)

_backend = os.environ.get(
    "REPRO_COLUMNAR_BACKEND", "numpy" if np is not None else "list"
)
if _backend not in BACKENDS:  # pragma: no cover - defensive env handling
    raise ValueError(
        f"REPRO_COLUMNAR_BACKEND must be one of {BACKENDS}, got {_backend!r}"
    )
if _backend == "numpy" and np is None:  # pragma: no cover - stripped installs
    raise RuntimeError(
        "REPRO_COLUMNAR_BACKEND=numpy but numpy is not importable; "
        "unset it or use REPRO_COLUMNAR_BACKEND=list"
    )


def get_default_backend() -> str:
    """Return the process-wide columnar backend (``"numpy"`` or ``"list"``)."""
    return _backend


def set_default_backend(name: str) -> None:
    """Set the process-wide columnar backend for newly-built blocks."""
    global _backend
    if name not in BACKENDS:
        raise ValueError(f"backend must be one of {BACKENDS}, got {name!r}")
    if name == "numpy" and np is None:
        raise RuntimeError("numpy backend requested but numpy is not importable")
    _backend = name


@contextmanager
def use_backend(name: str) -> Iterator[None]:
    """Scope the columnar backend to a ``with`` block (run isolation)."""
    previous = get_default_backend()
    set_default_backend(name)
    try:
        yield
    finally:
        set_default_backend(previous)


def to_pylist(column) -> List[Any]:
    """Column as a plain list of Python scalars (exact for ``float64``).

    The row-building discipline for operators whose outputs carry payload
    *values* taken from columns: convert the column once so emitted payload
    dicts hold the identical Python objects on both backends (reading rows
    straight off an ndarray would leak ``np.float64`` scalars into results).
    """
    if np is not None and isinstance(column, np.ndarray):
        return column.tolist()
    return list(column)


_tolist = to_pylist


def _float_column(column):
    """Normalize a timestamp/SIC column to the active backend."""
    if _backend == "numpy":
        if isinstance(column, np.ndarray):
            return column if column.dtype == np.float64 else column.astype(np.float64)
        return np.asarray(column, dtype=np.float64)
    if np is not None and isinstance(column, np.ndarray):
        return column.tolist()
    return column


def _payload_column(column):
    """Normalize one payload column to the active backend.

    Under the numpy backend a column whose values are all Python floats
    becomes a ``float64`` array (exact: float64 round-trips the values bit
    for bit); anything else — identifiers, mixed types, ints (kept as ints),
    nested structures — becomes an ``object`` array holding the original
    Python objects, so ``to_tuples`` reproduces them identically.
    """
    if _backend == "numpy":
        if isinstance(column, np.ndarray):
            return column
        if not isinstance(column, list):
            column = list(column)
        if column and all(type(v) is float for v in column):
            return np.asarray(column, dtype=np.float64)
        arr = np.empty(len(column), dtype=object)
        for i, value in enumerate(column):
            arr[i] = value
        return arr
    if np is not None and isinstance(column, np.ndarray):
        return column.tolist()
    return column


class ColumnBlock:
    """A group of stream tuples stored as parallel columns.

    Attributes:
        timestamps: per-tuple logical creation times (``float64`` array on
            the numpy backend, list on the list backend).
        sics: per-tuple source information content values (same container
            kind as ``timestamps``).
        values: payload columns keyed by field name; every column has the
            same length as ``timestamps``.  Field order is the payload dict
            order of the equivalent per-tuple representation.
        source_id: originating source shared by *all* tuples of the block
            (``None`` for derived blocks).  Source blocks are per-source by
            construction, which is what lets the routing and SIC-assignment
            fast paths treat the block as one unit.

    Columns are rebind-only: kernels replace a column wholesale (which
    invalidates the memoized tuple materialization) and never mutate one in
    place — that is what makes zero-copy views safe to share.
    """

    __slots__ = ("_timestamps", "_sics", "_values", "source_id", "_tuple_cache")

    def __init__(
        self,
        timestamps: Sequence[float],
        sics: Optional[Sequence[float]] = None,
        values: Optional[Dict[str, Sequence[Any]]] = None,
        source_id: Optional[str] = None,
    ) -> None:
        self._timestamps = _float_column(timestamps)
        n = len(self._timestamps)
        if sics is None:
            self._sics = (
                np.zeros(n) if _backend == "numpy" else [0.0] * n
            )
        else:
            self._sics = _float_column(sics)
        self._values = (
            {f: _payload_column(col) for f, col in values.items()}
            if values
            else {}
        )
        self.source_id = source_id
        self._tuple_cache: Optional[List[Tuple]] = None
        if len(self._sics) != n:
            raise ValueError(
                f"sics column length {len(self._sics)} != {n} timestamps"
            )
        for field, column in self._values.items():
            if len(column) != n:
                raise ValueError(
                    f"column {field!r} length {len(column)} != {n} timestamps"
                )

    # ---------------------------------------------------------------- columns
    @property
    def timestamps(self):
        return self._timestamps

    @timestamps.setter
    def timestamps(self, column) -> None:
        self._timestamps = column
        self._tuple_cache = None

    @property
    def sics(self):
        return self._sics

    @sics.setter
    def sics(self, column) -> None:
        self._sics = column
        self._tuple_cache = None

    @property
    def values(self):
        return self._values

    @values.setter
    def values(self, columns) -> None:
        self._values = columns
        self._tuple_cache = None

    @property
    def is_array_backed(self) -> bool:
        """True when this block's columns are NumPy arrays."""
        return np is not None and isinstance(self._timestamps, np.ndarray)

    def constant_sics(self, value: float):
        """A constant SIC column matching this block's backing and length."""
        if self.is_array_backed:
            return np.full(len(self._timestamps), value)
        return [value] * len(self._timestamps)

    # ------------------------------------------------------------- inspection
    def __len__(self) -> int:
        return len(self._timestamps)

    def __bool__(self) -> bool:
        return len(self._timestamps) > 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ColumnBlock(len={len(self._timestamps)}, "
            f"fields={list(self._values)}, source={self.source_id!r})"
        )

    @property
    def num_fields(self) -> int:
        return len(self._values)

    def sic_total(self) -> float:
        """Summed SIC of the block (left-to-right, like ``sum`` over tuples)."""
        if self.is_array_backed:
            return seq_sum(self._sics)
        return sum(self._sics)

    @classmethod
    def _unchecked(
        cls,
        timestamps,
        sics,
        values: Dict[str, Any],
        source_id: Optional[str],
    ) -> "ColumnBlock":
        """Internal constructor skipping validation *and* normalization.

        Used where the lengths are equal by construction and the columns are
        already in a consistent representation (slices of a validated block)
        — slicing sits on the shedding hot path.
        """
        block = cls.__new__(cls)
        block._timestamps = timestamps
        block._sics = sics
        block._values = values
        block.source_id = source_id
        block._tuple_cache = None
        return block

    def shallow_copy(self) -> "ColumnBlock":
        """A new block sharing this block's column containers.

        Operators that pass a block through (receivers, filters) return a
        shallow copy: the SIC-propagation step *rebinds* the copy's ``sics``
        attribute with the derived shares, which must not alias the pane's
        (or the upstream batch's) storage.  Columns are never mutated in
        place, so sharing the containers themselves is safe.
        """
        return ColumnBlock._unchecked(
            self._timestamps, self._sics, self._values, self.source_id
        )

    # ------------------------------------------------------------ conversions
    def slice(self, start: int, stop: int) -> "ColumnBlock":
        """Return a new block over rows ``start:stop``.

        On the numpy backend the piece's columns are O(1) zero-copy *views*
        of this block's arrays (safe because columns are rebind-only); on the
        list backend they are copied slices, exactly as before v2.
        """
        return ColumnBlock._unchecked(
            self._timestamps[start:stop],
            self._sics[start:stop],
            {f: col[start:stop] for f, col in self._values.items()},
            self.source_id,
        )

    def to_tuples(
        self, start: int = 0, stop: Optional[int] = None, fresh: bool = False
    ) -> List[Tuple]:
        """Materialize rows ``start:stop`` as per-tuple objects, exactly as
        the seed paths built them.

        Array columns convert through ``ndarray.tolist()``, which yields the
        identical Python scalars the list backend carries.  Full-block
        materializations are memoized (and invalidated when a column is
        rebound); ranges of a memoized block slice the cache.  Tuples may
        therefore be shared between repeated materializations — callers must
        treat them as read-only, matching the seed pipeline where window
        panes and operators share the very same tuple objects.  Callers that
        hand out *mutable* tuples (``Batch.tuples``, whose seed contract
        allows in-place SIC rewrites) pass ``fresh=True`` to build brand-new
        tuples that bypass and never touch the cache.
        """
        if fresh:
            return self._build_tuples(start, stop)
        n = len(self._timestamps)
        full = start == 0 and (stop is None or stop == n)
        cache = self._tuple_cache
        if cache is not None:
            if full:
                return cache[:]
            return cache[start:stop]
        tuples = self._build_tuples(start, stop)
        if full:
            self._tuple_cache = tuples
            return tuples[:]
        return tuples

    def _build_tuples(self, start: int, stop: Optional[int]) -> List[Tuple]:
        source_id = self.source_id
        timestamps = self._timestamps
        sics = self._sics
        ranged = start != 0 or stop is not None
        if ranged:
            timestamps = timestamps[start:stop]
            sics = sics[start:stop]
        timestamps = _tolist(timestamps)
        sics = _tolist(sics)
        _count_materialization(len(timestamps))
        fields = list(self._values)
        if not fields:
            return [
                Tuple(timestamp=t, sic=s, values={}, source_id=source_id)
                for t, s in zip(timestamps, sics)
            ]
        if len(fields) == 1:
            name = fields[0]
            column = self._values[name]
            if ranged:
                column = column[start:stop]
            column = _tolist(column)
            return [
                Tuple(timestamp=t, sic=s, values={name: v}, source_id=source_id)
                for t, s, v in zip(timestamps, sics, column)
            ]
        columns = [
            _tolist(
                self._values[name][start:stop] if ranged else self._values[name]
            )
            for name in fields
        ]
        return [
            Tuple(
                timestamp=t,
                sic=s,
                values=dict(zip(fields, row)),
                source_id=source_id,
            )
            for t, s, row in zip(timestamps, sics, zip(*columns))
        ]

    @classmethod
    def from_tuples(
        cls, tuples: Sequence[Tuple], source_id: Optional[str] = None
    ) -> "ColumnBlock":
        """Build a block from per-tuple objects (test/bridge helper).

        Field set is taken from the first tuple; all tuples must share it.
        When ``source_id`` is omitted, the tuples' (shared) source id is used.
        """
        if not tuples:
            return cls([], [], {}, source_id)
        fields = list(tuples[0].values)
        values: Dict[str, List[Any]] = {f: [] for f in fields}
        timestamps: List[float] = []
        sics: List[float] = []
        block_source = source_id if source_id is not None else tuples[0].source_id
        for t in tuples:
            timestamps.append(t.timestamp)
            sics.append(t.sic)
            if list(t.values) != fields:
                raise ValueError(
                    "from_tuples requires a uniform payload schema; "
                    f"got {list(t.values)!r} vs {fields!r}"
                )
            for f in fields:
                values[f].append(t.values[f])
            if t.source_id != block_source:
                raise ValueError(
                    "from_tuples requires a single shared source id; "
                    f"got {t.source_id!r} vs {block_source!r}"
                )
        return cls(timestamps, sics, values, block_source)

    @staticmethod
    def concat_ranges(
        ranges: Sequence["tuple[ColumnBlock, int, int]"],
    ) -> "ColumnBlock":
        """Concatenate ``(block, start, stop)`` ranges with one column copy.

        This is the pane-close path: ranges routed into a window pane are
        merged directly from their source blocks, so a tuple's columns are
        copied exactly once between source generation and the operator.  On
        the numpy backend the merge is one ``np.concatenate`` per column.
        Uniform field sets required; ``source_id`` survives only when shared.
        """
        if len(ranges) == 1:
            block, start, stop = ranges[0]
            if start == 0 and stop == len(block):
                return block
            return block.slice(start, stop)
        first_block = ranges[0][0]
        fields = list(first_block._values)
        for block, _, _ in ranges[1:]:
            if list(block._values) != fields:
                raise ValueError(
                    f"cannot concat ranges with fields {list(block._values)!r} "
                    f"and {fields!r}"
                )
        source_ids = {block.source_id for block, _, _ in ranges}
        source_id = source_ids.pop() if len(source_ids) == 1 else None
        if np is not None and all(b.is_array_backed for b, _, _ in ranges):
            timestamps = np.concatenate(
                [b._timestamps[lo:hi] for b, lo, hi in ranges]
            )
            sics = np.concatenate([b._sics[lo:hi] for b, lo, hi in ranges])
            values = {
                f: np.concatenate([b._values[f][lo:hi] for b, lo, hi in ranges])
                for f in fields
            }
            return ColumnBlock._unchecked(timestamps, sics, values, source_id)
        timestamps: List[float] = []
        sics: List[float] = []
        values: Dict[str, List[Any]] = {f: [] for f in fields}
        for block, start, stop in ranges:
            timestamps.extend(_tolist(block._timestamps[start:stop]))
            sics.extend(_tolist(block._sics[start:stop]))
            block_values = block._values
            for f in fields:
                values[f].extend(_tolist(block_values[f][start:stop]))
        return ColumnBlock._unchecked(timestamps, sics, values, source_id)

    @staticmethod
    def concat(blocks: Iterable["ColumnBlock"]) -> "ColumnBlock":
        """Concatenate blocks in order (uniform field sets required).

        The result's ``source_id`` is kept only when all inputs share it.
        """
        blocks = list(blocks)
        if not blocks:
            return ColumnBlock([], [], {})
        if len(blocks) == 1:
            b = blocks[0]
            if b.is_array_backed:
                return ColumnBlock._unchecked(
                    b._timestamps.copy(),
                    b._sics.copy(),
                    {f: col.copy() for f, col in b._values.items()},
                    b.source_id,
                )
            return ColumnBlock(
                timestamps=list(b._timestamps),
                sics=list(b._sics),
                values={f: list(col) for f, col in b._values.items()},
                source_id=b.source_id,
            )
        return ColumnBlock.concat_ranges([(b, 0, len(b)) for b in blocks])


class ColumnAppender:
    """Amortized column builder for the pane-merge path.

    :meth:`ColumnBlock.concat_ranges` merges a pane by building a per-column
    list of slices and handing each to ``np.concatenate`` — one slice-list
    walk and one concatenate call per column per merge, over and over for
    sliding panes.  The appender instead streams the ranges once, in order,
    into preallocated buffers that **double on overflow**, and the merge
    trims views in O(columns).  It is built fresh at merge time (pane
    ``column()``/``tuples`` access, or the fused drain), so panes whose
    columns are never materialized — the common case, since the pane SIC is
    maintained incrementally — pay nothing.

    Exactness: rows are copied verbatim in insertion order, so the built
    block is element-identical to the ``concat_ranges`` merge of the same
    ranges, and the pane SIC stays the accumulator's sequential-order sum
    (the appender never touches it).  The first range is held lazily so the
    ubiquitous one-block pane keeps the zero-copy view fast path.

    Only uniform array-backed input is supported: :meth:`append_range`
    returns ``False`` — and the caller must abandon the appender, falling
    back to the legacy merge — when NumPy is absent, a block is
    list-backed, or a range changes the field set or a column dtype.
    """

    __slots__ = (
        "_first",
        "_fields",
        "_keys",
        "_source_id",
        "_timestamps",
        "_sics",
        "_values",
        "_len",
        "_cap",
    )

    def __init__(self) -> None:
        self._first: Optional[tuple] = None
        self._fields: Optional[List[str]] = None
        self._len = 0
        self._cap = 0

    def __len__(self) -> int:
        if self._first is not None:
            _, lo, hi = self._first
            return hi - lo
        return self._len

    def append_range(self, block: ColumnBlock, lo: int, hi: int) -> bool:
        if np is None or not block.is_array_backed:
            return False
        if self._fields is None and self._first is None:
            self._first = (block, lo, hi)
            return True
        if self._first is not None:
            held, held_lo, held_hi = self._first
            if not self._start_buffers(held, held_lo, held_hi, hi - lo):
                return False
            self._first = None
        values = block._values
        # Ordered comparison, like concat_ranges' uniformity check: a pane
        # whose sources disagree on field order is heterogeneous and takes
        # the per-tuple path, exactly as it did before the appender.
        if tuple(values) != self._keys:
            return False
        timestamps = self._timestamps
        sics = self._sics
        mine = self._values
        block_ts = block._timestamps
        block_sics = block._sics
        # `is not` first: NumPy interns builtin dtypes, so the identity test
        # settles the hot path; the `!=` fallback keeps exotic equal-but-
        # distinct dtype instances on the fast path too (a false mismatch
        # would only abandon the appender, never corrupt it).
        if block_ts.dtype is not timestamps.dtype and block_ts.dtype != timestamps.dtype:
            return False
        if block_sics.dtype is not sics.dtype and block_sics.dtype != sics.dtype:
            return False
        for f in self._fields:
            col, own = values[f], mine[f]
            if col.dtype is not own.dtype and col.dtype != own.dtype:
                return False
        if block.source_id != self._source_id:
            # concat_ranges keeps a source id only when every range shares it.
            self._source_id = None
        n = hi - lo
        start = self._len
        end = start + n
        if end > self._cap:
            self._reserve(end)
        self._timestamps[start:end] = block_ts[lo:hi]
        self._sics[start:end] = block_sics[lo:hi]
        mine = self._values
        for f in self._fields:
            mine[f][start:end] = values[f][lo:hi]
        self._len = end
        return True

    def _start_buffers(
        self, block: ColumnBlock, lo: int, hi: int, upcoming: int
    ) -> bool:
        if not block.is_array_backed:
            return False
        self._fields = list(block._values)
        self._keys = tuple(self._fields)
        self._source_id = block.source_id
        n = hi - lo
        # One doubling of headroom beyond the two ranges in hand: a pane of
        # similar-sized ranges then merges without ever paying a regrow, and
        # the fill factor stays above one quarter (above one half as soon as
        # a third such range lands).
        cap = 16
        while cap < (n + upcoming) * 2:
            cap *= 2
        self._timestamps = np.empty(cap, dtype=block._timestamps.dtype)
        self._sics = np.empty(cap, dtype=block._sics.dtype)
        self._values = {
            f: np.empty(cap, dtype=col.dtype) for f, col in block._values.items()
        }
        self._cap = cap
        self._timestamps[:n] = block._timestamps[lo:hi]
        self._sics[:n] = block._sics[lo:hi]
        for f in self._fields:
            self._values[f][:n] = block._values[f][lo:hi]
        self._len = n
        return True

    def _reserve(self, need: int) -> None:
        if need <= self._cap:
            return
        cap = self._cap
        while cap < need:
            cap *= 2
        filled = self._len

        def grown(buf):
            fresh = np.empty(cap, dtype=buf.dtype)
            fresh[:filled] = buf[:filled]
            return fresh

        self._timestamps = grown(self._timestamps)
        self._sics = grown(self._sics)
        self._values = {f: grown(col) for f, col in self._values.items()}
        self._cap = cap

    def build(self) -> ColumnBlock:
        """The accumulated rows as one block (trimmed views of the buffers).

        Single-shot: call at pane close and append nothing afterwards — the
        returned block's columns alias the internal buffers.
        """
        if self._first is not None:
            return ColumnBlock.concat_ranges([self._first])
        if self._fields is None:
            return ColumnBlock([], [], {})
        n = self._len
        return ColumnBlock._unchecked(
            self._timestamps[:n],
            self._sics[:n],
            {f: col[:n] for f, col in self._values.items()},
            self._source_id,
        )
