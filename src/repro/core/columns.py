"""Columnar tuple storage: parallel arrays instead of ``Tuple`` objects.

The per-tuple data model (:class:`repro.core.tuples.Tuple`) allocates one
dataclass instance plus one payload dict per stream item.  Under the
millions-of-tuples workloads of the scalability experiments that object churn
dominates end-to-end simulation time, so the hot pipeline — source generation,
SIC assignment, shedding and window bucketing — exchanges
:class:`ColumnBlock`s instead: a timestamp column, a SIC column and one column
per payload field, all plain Python lists of the same length.

A block is *lazily* convertible to the per-tuple representation
(:meth:`ColumnBlock.to_tuples`), which is the compatibility surface for
operators and tests that have not been vectorized.  Conversions are exact:
``to_tuples`` reproduces the tuples the seed per-tuple code paths would have
built — same timestamps, same SIC values, same payload dicts in the same field
order — so seeded columnar runs are result-identical to tuple-at-a-time runs.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence

from .tuples import Tuple

__all__ = ["ColumnBlock"]


class ColumnBlock:
    """A group of stream tuples stored as parallel columns.

    Attributes:
        timestamps: per-tuple logical creation times.
        sics: per-tuple source information content values.
        values: payload columns keyed by field name; every column has the
            same length as ``timestamps``.  Field order is the payload dict
            order of the equivalent per-tuple representation.
        source_id: originating source shared by *all* tuples of the block
            (``None`` for derived blocks).  Source blocks are per-source by
            construction, which is what lets the routing and SIC-assignment
            fast paths treat the block as one unit.
    """

    __slots__ = ("timestamps", "sics", "values", "source_id")

    def __init__(
        self,
        timestamps: List[float],
        sics: Optional[List[float]] = None,
        values: Optional[Dict[str, List[Any]]] = None,
        source_id: Optional[str] = None,
    ) -> None:
        self.timestamps = timestamps
        self.sics = sics if sics is not None else [0.0] * len(timestamps)
        self.values = values if values is not None else {}
        self.source_id = source_id
        if len(self.sics) != len(self.timestamps):
            raise ValueError(
                f"sics column length {len(self.sics)} != "
                f"{len(self.timestamps)} timestamps"
            )
        for field, column in self.values.items():
            if len(column) != len(self.timestamps):
                raise ValueError(
                    f"column {field!r} length {len(column)} != "
                    f"{len(self.timestamps)} timestamps"
                )

    # ------------------------------------------------------------- inspection
    def __len__(self) -> int:
        return len(self.timestamps)

    def __bool__(self) -> bool:
        return bool(self.timestamps)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ColumnBlock(len={len(self.timestamps)}, "
            f"fields={list(self.values)}, source={self.source_id!r})"
        )

    @property
    def num_fields(self) -> int:
        return len(self.values)

    def sic_total(self) -> float:
        """Summed SIC of the block (left-to-right, like ``sum`` over tuples)."""
        return sum(self.sics)

    @classmethod
    def _unchecked(
        cls,
        timestamps: List[float],
        sics: List[float],
        values: Dict[str, List[Any]],
        source_id: Optional[str],
    ) -> "ColumnBlock":
        """Internal constructor skipping the column-length validation.

        Used where the lengths are equal by construction (slices of a
        validated block) — slicing sits on the shedding hot path.
        """
        block = cls.__new__(cls)
        block.timestamps = timestamps
        block.sics = sics
        block.values = values
        block.source_id = source_id
        return block

    def shallow_copy(self) -> "ColumnBlock":
        """A new block sharing this block's column lists.

        Operators that pass a block through (receivers, filters) return a
        shallow copy: the SIC-propagation step *rebinds* the copy's ``sics``
        attribute with the derived shares, which must not alias the pane's
        (or the upstream batch's) storage.  Columns are never mutated in
        place, so sharing the lists themselves is safe.
        """
        return ColumnBlock._unchecked(
            self.timestamps, self.sics, self.values, self.source_id
        )

    # ------------------------------------------------------------ conversions
    def slice(self, start: int, stop: int) -> "ColumnBlock":
        """Return a new block over rows ``start:stop`` (columns are copied
        slices, so the piece is independent of the parent)."""
        return ColumnBlock._unchecked(
            self.timestamps[start:stop],
            self.sics[start:stop],
            {f: col[start:stop] for f, col in self.values.items()},
            self.source_id,
        )

    def to_tuples(
        self, start: int = 0, stop: Optional[int] = None
    ) -> List[Tuple]:
        """Materialize rows ``start:stop`` as per-tuple objects, exactly as
        the seed paths built them.

        Each tuple receives a *fresh* payload dict (matching the seed, where
        every ``payload_builder()`` call allocated its own dict), so mutating
        a materialized tuple never aliases block columns or sibling tuples.
        """
        source_id = self.source_id
        timestamps = self.timestamps
        sics = self.sics
        if start != 0 or stop is not None:
            timestamps = timestamps[start:stop]
            sics = sics[start:stop]
        fields = list(self.values)
        if not fields:
            return [
                Tuple(timestamp=t, sic=s, values={}, source_id=source_id)
                for t, s in zip(timestamps, sics)
            ]
        if len(fields) == 1:
            name = fields[0]
            column = self.values[name]
            if start != 0 or stop is not None:
                column = column[start:stop]
            return [
                Tuple(timestamp=t, sic=s, values={name: v}, source_id=source_id)
                for t, s, v in zip(timestamps, sics, column)
            ]
        columns = [
            self.values[name][start:stop]
            if (start != 0 or stop is not None)
            else self.values[name]
            for name in fields
        ]
        return [
            Tuple(
                timestamp=t,
                sic=s,
                values=dict(zip(fields, row)),
                source_id=source_id,
            )
            for t, s, row in zip(timestamps, sics, zip(*columns))
        ]

    @classmethod
    def from_tuples(
        cls, tuples: Sequence[Tuple], source_id: Optional[str] = None
    ) -> "ColumnBlock":
        """Build a block from per-tuple objects (test/bridge helper).

        Field set is taken from the first tuple; all tuples must share it.
        When ``source_id`` is omitted, the tuples' (shared) source id is used.
        """
        if not tuples:
            return cls([], [], {}, source_id)
        fields = list(tuples[0].values)
        values: Dict[str, List[Any]] = {f: [] for f in fields}
        timestamps: List[float] = []
        sics: List[float] = []
        block_source = source_id if source_id is not None else tuples[0].source_id
        for t in tuples:
            timestamps.append(t.timestamp)
            sics.append(t.sic)
            if list(t.values) != fields:
                raise ValueError(
                    "from_tuples requires a uniform payload schema; "
                    f"got {list(t.values)!r} vs {fields!r}"
                )
            for f in fields:
                values[f].append(t.values[f])
            if t.source_id != block_source:
                raise ValueError(
                    "from_tuples requires a single shared source id; "
                    f"got {t.source_id!r} vs {block_source!r}"
                )
        return cls(timestamps, sics, values, block_source)

    @staticmethod
    def concat_ranges(
        ranges: Sequence["tuple[ColumnBlock, int, int]"],
    ) -> "ColumnBlock":
        """Concatenate ``(block, start, stop)`` ranges with one column copy.

        This is the pane-close path: ranges routed into a window pane are
        merged directly from their source blocks, so a tuple's columns are
        copied exactly once between source generation and the operator.
        Uniform field sets required; ``source_id`` survives only when shared.
        """
        if len(ranges) == 1:
            block, start, stop = ranges[0]
            if start == 0 and stop == len(block):
                return block
            return block.slice(start, stop)
        first_block = ranges[0][0]
        fields = list(first_block.values)
        timestamps: List[float] = []
        sics: List[float] = []
        values: Dict[str, List[Any]] = {f: [] for f in fields}
        source_ids = set()
        for block, start, stop in ranges:
            if list(block.values) != fields:
                raise ValueError(
                    f"cannot concat ranges with fields {list(block.values)!r} "
                    f"and {fields!r}"
                )
            source_ids.add(block.source_id)
            timestamps.extend(block.timestamps[start:stop])
            sics.extend(block.sics[start:stop])
            block_values = block.values
            for f in fields:
                values[f].extend(block_values[f][start:stop])
        source_id = source_ids.pop() if len(source_ids) == 1 else None
        return ColumnBlock._unchecked(timestamps, sics, values, source_id)

    @staticmethod
    def concat(blocks: Iterable["ColumnBlock"]) -> "ColumnBlock":
        """Concatenate blocks in order (uniform field sets required).

        The result's ``source_id`` is kept only when all inputs share it.
        """
        blocks = list(blocks)
        if not blocks:
            return ColumnBlock([], [], {})
        if len(blocks) == 1:
            b = blocks[0]
            return ColumnBlock(
                timestamps=list(b.timestamps),
                sics=list(b.sics),
                values={f: list(col) for f, col in b.values.items()},
                source_id=b.source_id,
            )
        fields = list(blocks[0].values)
        timestamps: List[float] = []
        sics: List[float] = []
        values: Dict[str, List[Any]] = {f: [] for f in fields}
        source_ids = {b.source_id for b in blocks}
        for b in blocks:
            if list(b.values) != fields:
                raise ValueError(
                    f"cannot concat blocks with fields {list(b.values)!r} "
                    f"and {fields!r}"
                )
            timestamps.extend(b.timestamps)
            sics.extend(b.sics)
            for f in fields:
                values[f].extend(b.values[f])
        source_id = source_ids.pop() if len(source_ids) == 1 else None
        return ColumnBlock(timestamps, sics, values, source_id)
