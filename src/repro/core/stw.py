"""Source time window (STW) accounting (§4, §6).

The STW is the period over which source tuples are related to result tuples:
a source tuple and a result tuple belong to the same processing "round" if
their timestamps fall within a common STW.  THEMIS approximates the STW with a
sliding window whose slide equals the shedding interval; the result SIC of a
query at time ``t`` is the sum of the SIC of result tuples generated in
``(t - STW, t]``, normalised so that perfect processing yields 1.

:class:`ResultSicTracker` performs that accounting for a single query and
:class:`StwRegistry` keeps one tracker per query for a whole deployment.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple as PyTuple

from .tuples import Batch

__all__ = ["StwConfig", "ResultSicTracker", "StwRegistry"]


@dataclass(frozen=True)
class StwConfig:
    """Configuration of the sliding STW approximation.

    Attributes:
        stw_seconds: duration of the source time window.  The paper sets it to
            an order of magnitude above the end-to-end latency (10 s in §7).
        slide_seconds: slide of the window; equals the shedding interval
            (250 ms in §7).
    """

    stw_seconds: float = 10.0
    slide_seconds: float = 0.25

    def __post_init__(self) -> None:
        if self.stw_seconds <= 0:
            raise ValueError(f"stw_seconds must be positive, got {self.stw_seconds}")
        if self.slide_seconds <= 0:
            raise ValueError(
                f"slide_seconds must be positive, got {self.slide_seconds}"
            )
        if self.slide_seconds > self.stw_seconds:
            raise ValueError("slide_seconds cannot exceed stw_seconds")


class ResultSicTracker:
    """Tracks the result SIC of one query over a sliding STW.

    The tracker receives the SIC carried by result tuples as they are emitted
    at the query sink and answers "what is the query's result SIC right now?"
    — the sum of SIC received during the last STW, normalised by the fraction
    of the STW observed so far (so a freshly deployed query is not reported as
    fully degraded before a full STW has elapsed).
    """

    def __init__(self, query_id: str, config: StwConfig) -> None:
        self.query_id = query_id
        self.config = config
        self._events: Deque[PyTuple[float, float]] = deque()
        self._first_event_time: Optional[float] = None
        self._history: List[PyTuple[float, float]] = []

    def record_result(self, timestamp: float, sic: float) -> None:
        """Record ``sic`` worth of result tuples emitted at ``timestamp``."""
        if sic < 0:
            raise ValueError(f"sic must be non-negative, got {sic}")
        if self._first_event_time is None:
            self._first_event_time = timestamp
        self._events.append((timestamp, sic))

    def record_batch(self, batch: Batch) -> None:
        """Record all tuples of a result batch."""
        for t in batch:
            self.record_result(t.timestamp, t.sic)

    def current_sic(self, now: float) -> float:
        """Return the query result SIC over the STW ending at ``now``."""
        self._expire(now)
        total = sum(sic for _, sic in self._events)
        coverage = self._coverage(now)
        if coverage <= 0.0:
            return 0.0
        return total / coverage

    def snapshot(self, now: float) -> float:
        """Record the current SIC in the history and return it."""
        value = self.current_sic(now)
        self._history.append((now, value))
        return value

    @property
    def history(self) -> List[PyTuple[float, float]]:
        """Time series of snapshots taken via :meth:`snapshot`."""
        return list(self._history)

    def window_event_count(self) -> int:
        """Unexpired events in the sliding window (memwatch probe)."""
        return len(self._events)

    def history_size(self) -> int:
        """Snapshot samples retained so far (memwatch probe; grows linearly
        with simulated time by design — one sample per shedding interval)."""
        return len(self._history)

    def mean_sic(self, skip_initial: int = 0) -> float:
        """Mean of the snapshot history (optionally skipping warm-up samples)."""
        samples = [v for _, v in self._history[skip_initial:]]
        if not samples:
            return 0.0
        return sum(samples) / len(samples)

    def _coverage(self, now: float) -> float:
        """Fraction of a full STW for which the query has been observed."""
        if self._first_event_time is None:
            return 0.0
        observed = now - self._first_event_time + self.config.slide_seconds
        if observed <= 0:
            return 0.0
        return min(1.0, observed / self.config.stw_seconds)

    def expire(self, now: float) -> None:
        """Drop events that left the sliding window.

        :meth:`current_sic` expires lazily, but a tracker whose value is
        never read (e.g. a node-local tracker shadowed by coordinator
        ``updateSIC`` reports) would otherwise accumulate events without
        bound; hosts call this once per round to keep the window flat.
        Expiry never changes a later reading — expired events contribute
        nothing to any sum taken at or after ``now``.
        """
        self._expire(now)

    def _expire(self, now: float) -> None:
        horizon = now - self.config.stw_seconds
        while self._events and self._events[0][0] <= horizon:
            self._events.popleft()

    # ------------------------------------------------------ checkpoint/restore
    def snapshot_state(self) -> Dict[str, object]:
        """Serialise the tracker: unexpired events, first-event anchor, history."""
        return {
            "query_id": self.query_id,
            "events": [list(event) for event in self._events],
            "first_event_time": self._first_event_time,
            "history": [list(sample) for sample in self._history],
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        """Rebuild the tracker from :meth:`snapshot_state` output."""
        if state["query_id"] != self.query_id:
            raise ValueError(
                f"tracker checkpoint for query {state['query_id']!r} does not "
                f"match {self.query_id!r}"
            )
        self._events = deque((t, sic) for t, sic in state["events"])
        self._first_event_time = state["first_event_time"]
        self._history = [(t, value) for t, value in state["history"]]


class StwRegistry:
    """One :class:`ResultSicTracker` per query."""

    def __init__(self, config: StwConfig) -> None:
        self.config = config
        self._trackers: Dict[str, ResultSicTracker] = {}

    def tracker(self, query_id: str) -> ResultSicTracker:
        """Return (creating if needed) the tracker for ``query_id``."""
        if query_id not in self._trackers:
            self._trackers[query_id] = ResultSicTracker(query_id, self.config)
        return self._trackers[query_id]

    def record_batch(self, batch: Batch) -> None:
        self.tracker(batch.query_id).record_batch(batch)

    def current_sic_values(self, now: float) -> Dict[str, float]:
        """Current result SIC per query."""
        return {qid: t.current_sic(now) for qid, t in self._trackers.items()}

    def snapshot_all(self, now: float) -> Dict[str, float]:
        return {qid: t.snapshot(now) for qid, t in self._trackers.items()}

    def mean_sic_per_query(self, skip_initial: int = 0) -> Dict[str, float]:
        return {
            qid: t.mean_sic(skip_initial=skip_initial)
            for qid, t in self._trackers.items()
        }

    def query_ids(self) -> List[str]:
        return list(self._trackers)

    def __contains__(self, query_id: str) -> bool:
        return query_id in self._trackers

    def __len__(self) -> int:
        return len(self._trackers)
