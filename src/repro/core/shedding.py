"""Tuple shedders (§6, "Tuple shedder" and the random-shedding baseline).

A shedder is invoked by a node's overload detector once per shedding interval
with the batches currently waiting in the input buffer, the node capacity and
the latest per-query result SIC values.  It returns a :class:`ShedDecision`
naming the batches to keep and the batches to discard.

Implementations:

* :class:`BalanceSicShedder` — the THEMIS fair shedder (Algorithm 1).
* :class:`RandomShedder` — the baseline used throughout §7: keeps uniformly
  random batches until the capacity is filled.
* :class:`TailDropShedder` — keeps the oldest batches and drops the tail of
  the buffer (classic queue overflow behaviour; useful as a second baseline).
* :class:`NoShedder` — keeps everything (perfect processing reference).
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Mapping, Optional, Sequence

from .balance_sic import BalanceSicConfig, BalanceSicPolicy, ShedDecision
from .tuples import Batch

__all__ = [
    "Shedder",
    "BalanceSicShedder",
    "RandomShedder",
    "TailDropShedder",
    "NoShedder",
    "make_shedder",
]


class Shedder(ABC):
    """Interface shared by all shedders."""

    name: str = "abstract"

    @abstractmethod
    def shed(
        self,
        batches: Sequence[Batch],
        capacity: int,
        reported_sic: Mapping[str, float],
    ) -> ShedDecision:
        """Decide which batches to keep given the node capacity."""

    # Helper shared by the non-SIC-aware shedders.
    @staticmethod
    def _keep_prefix(
        ordered: Sequence[Batch],
        capacity: int,
        allow_splitting: bool = True,
    ) -> ShedDecision:
        decision = ShedDecision()
        remaining = capacity
        kept_ids = set()
        for batch in ordered:
            if remaining <= 0:
                break
            if len(batch) <= remaining:
                decision.kept.append(batch)
                kept_ids.add(batch.batch_id)
                decision.kept_tuples += len(batch)
                remaining -= len(batch)
            elif allow_splitting:
                kept_part = Batch(
                    batch.query_id,
                    batch.tuples[:remaining],
                    created_at=batch.created_at,
                    fragment_id=batch.fragment_id,
                    origin_fragment_id=batch.origin_fragment_id,
                )
                decision.kept.append(kept_part)
                decision.kept_tuples += len(kept_part)
                # The original batch is recorded as shed: routing keeps the
                # kept part, so no tuples are lost or duplicated.
                remaining = 0
            else:
                break
        for batch in ordered:
            if batch.batch_id not in kept_ids:
                decision.shed.append(batch)
                decision.shed_tuples += len(batch)
        # Splitting counts the dropped remainder of a split batch as shed.
        decision.shed_tuples = max(
            0,
            sum(len(b) for b in ordered) - decision.kept_tuples,
        )
        return decision


class BalanceSicShedder(Shedder):
    """The THEMIS fair shedder: wraps :class:`BalanceSicPolicy`."""

    name = "balance-sic"

    def __init__(
        self,
        config: Optional[BalanceSicConfig] = None,
        seed: Optional[int] = 0,
    ) -> None:
        self.policy = BalanceSicPolicy(config=config, rng=random.Random(seed))

    def shed(
        self,
        batches: Sequence[Batch],
        capacity: int,
        reported_sic: Mapping[str, float],
    ) -> ShedDecision:
        return self.policy.select(batches, capacity, reported_sic)


class RandomShedder(Shedder):
    """Baseline: keep uniformly random batches up to the capacity."""

    name = "random"

    def __init__(self, seed: Optional[int] = 0, allow_splitting: bool = True) -> None:
        self.rng = random.Random(seed)
        self.allow_splitting = allow_splitting

    def shed(
        self,
        batches: Sequence[Batch],
        capacity: int,
        reported_sic: Mapping[str, float],
    ) -> ShedDecision:
        total = sum(len(b) for b in batches)
        if total <= capacity:
            decision = ShedDecision()
            decision.kept = list(batches)
            decision.kept_tuples = total
            return decision
        shuffled = list(batches)
        self.rng.shuffle(shuffled)
        return self._keep_prefix(shuffled, capacity, self.allow_splitting)


class TailDropShedder(Shedder):
    """Keep the oldest batches and drop the newest ones beyond capacity."""

    name = "tail-drop"

    def __init__(self, allow_splitting: bool = True) -> None:
        self.allow_splitting = allow_splitting

    def shed(
        self,
        batches: Sequence[Batch],
        capacity: int,
        reported_sic: Mapping[str, float],
    ) -> ShedDecision:
        ordered = sorted(batches, key=lambda b: b.created_at)
        return self._keep_prefix(ordered, capacity, self.allow_splitting)


class NoShedder(Shedder):
    """Never sheds; used as the perfect-processing reference."""

    name = "none"

    def shed(
        self,
        batches: Sequence[Batch],
        capacity: int,
        reported_sic: Mapping[str, float],
    ) -> ShedDecision:
        decision = ShedDecision()
        decision.kept = list(batches)
        decision.kept_tuples = sum(len(b) for b in batches)
        return decision


def make_shedder(name: str, seed: Optional[int] = 0, **kwargs) -> Shedder:
    """Factory used by simulation configs and the experiment CLI.

    Args:
        name: one of ``"balance-sic"``, ``"random"``, ``"tail-drop"``,
            ``"none"``.
        seed: RNG seed for the stochastic shedders.
        **kwargs: forwarded to the shedder constructor (e.g. a
            :class:`BalanceSicConfig` via ``config=``).
    """
    normalized = name.strip().lower().replace("_", "-")
    if normalized in ("balance-sic", "balancesic", "fair", "themis"):
        return BalanceSicShedder(seed=seed, **kwargs)
    if normalized == "random":
        return RandomShedder(seed=seed, **kwargs)
    if normalized in ("tail-drop", "taildrop", "fifo"):
        return TailDropShedder(**kwargs)
    if normalized in ("none", "no-shedding", "perfect"):
        return NoShedder()
    raise ValueError(f"unknown shedder {name!r}")
