"""Tuple shedders (§6, "Tuple shedder" and the random-shedding baseline).

A shedder is invoked by a node's overload detector once per shedding interval
with the batches currently waiting in the input buffer, the node capacity and
the latest per-query result SIC values.  It returns a :class:`ShedDecision`
naming the batches to keep and the batches to discard.

Implementations:

* :class:`BalanceSicShedder` — the THEMIS fair shedder (Algorithm 1).
* :class:`RandomShedder` — the baseline used throughout §7: keeps uniformly
  random batches until the capacity is filled.
* :class:`TailDropShedder` — keeps the oldest batches and drops the tail of
  the buffer (classic queue overflow behaviour; useful as a second baseline).
* :class:`NoShedder` — keeps everything (perfect processing reference).
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Mapping, Optional, Sequence

from .balance_sic import (
    BalanceSicConfig,
    BalanceSicPolicy,
    ShedDecision,
    keep_all_decision,
)
from .tuples import Batch, total_tuples as _total_tuples

__all__ = [
    "Shedder",
    "BalanceSicShedder",
    "RandomShedder",
    "TailDropShedder",
    "NoShedder",
    "make_shedder",
]


class Shedder(ABC):
    """Interface shared by all shedders."""

    name: str = "abstract"

    @abstractmethod
    def shed(
        self,
        batches: Sequence[Batch],
        capacity: int,
        reported_sic: Mapping[str, float],
        total_tuples: Optional[int] = None,
    ) -> ShedDecision:
        """Decide which batches to keep given the node capacity.

        ``total_tuples`` optionally carries the caller's incrementally-tracked
        tuple count for ``batches`` so shedders need not re-scan the buffer.
        """

    # Shared "not overloaded, keep all" early-exit for every shedder.
    _keep_all = staticmethod(keep_all_decision)

    # ------------------------------------------------------ checkpoint/restore
    def snapshot(self) -> dict:
        """Serialise the shedder's durable state.

        The built-in shedders are stateless apart from their RNG; the
        stochastic ones override this to carry the RNG state so a restored
        shedder replays the exact decision sequence the original would have
        made.
        """
        return {"name": self.name}

    def restore(self, state: dict) -> None:
        """Rebuild the shedder's durable state from :meth:`snapshot` output."""
        if state.get("name") != self.name:
            raise ValueError(
                f"shedder checkpoint for {state.get('name')!r} does not match "
                f"{self.name!r}"
            )

    # Helper shared by the non-SIC-aware shedders.
    @staticmethod
    def _keep_prefix(
        ordered: Sequence[Batch],
        capacity: int,
        allow_splitting: bool = True,
    ) -> ShedDecision:
        decision = ShedDecision()
        remaining = capacity
        shed_start = len(ordered)
        for index, batch in enumerate(ordered):
            if remaining <= 0:
                shed_start = index
                break
            size = len(batch)
            if size <= remaining:
                decision.kept.append(batch)
                decision.kept_tuples += size
                remaining -= size
            elif allow_splitting:
                # Keep the head of the batch and shed only the dropped
                # remainder (mirrors BalanceSicPolicy's split handling); the
                # split reuses the batch's cumulative-SIC prefix array so the
                # headers stay consistent without re-summing tuples.
                kept_part, rest = batch.split(remaining)
                decision.kept.append(kept_part)
                decision.kept_tuples += len(kept_part)
                decision.shed.append(rest)
                decision.shed_tuples += len(rest)
                remaining = 0
                shed_start = index + 1
                break
            else:
                # Without splitting the prefix stops at the first batch that
                # does not fit; it and everything after it are shed.
                shed_start = index
                break
        for batch in ordered[shed_start:]:
            decision.shed.append(batch)
            decision.shed_tuples += len(batch)
        return decision


class BalanceSicShedder(Shedder):
    """The THEMIS fair shedder: wraps :class:`BalanceSicPolicy`."""

    name = "balance-sic"

    def __init__(
        self,
        config: Optional[BalanceSicConfig] = None,
        seed: Optional[int] = 0,
    ) -> None:
        self.policy = BalanceSicPolicy(config=config, rng=random.Random(seed))

    def shed(
        self,
        batches: Sequence[Batch],
        capacity: int,
        reported_sic: Mapping[str, float],
        total_tuples: Optional[int] = None,
    ) -> ShedDecision:
        return self.policy.select(
            batches, capacity, reported_sic, total_tuples=total_tuples
        )

    def snapshot(self) -> dict:
        state = super().snapshot()
        state["rng_state"] = self.policy.rng.getstate()
        return state

    def restore(self, state: dict) -> None:
        super().restore(state)
        self.policy.rng.setstate(state["rng_state"])


class RandomShedder(Shedder):
    """Baseline: keep uniformly random batches up to the capacity."""

    name = "random"

    def __init__(self, seed: Optional[int] = 0, allow_splitting: bool = True) -> None:
        self.rng = random.Random(seed)
        self.allow_splitting = allow_splitting

    def shed(
        self,
        batches: Sequence[Batch],
        capacity: int,
        reported_sic: Mapping[str, float],
        total_tuples: Optional[int] = None,
    ) -> ShedDecision:
        if total_tuples is None:
            total_tuples = _total_tuples(batches)
        if total_tuples <= capacity:
            return self._keep_all(batches, total_tuples)
        shuffled = list(batches)
        self.rng.shuffle(shuffled)
        return self._keep_prefix(shuffled, capacity, self.allow_splitting)

    def snapshot(self) -> dict:
        state = super().snapshot()
        state["rng_state"] = self.rng.getstate()
        return state

    def restore(self, state: dict) -> None:
        super().restore(state)
        self.rng.setstate(state["rng_state"])


class TailDropShedder(Shedder):
    """Keep the oldest batches and drop the newest ones beyond capacity."""

    name = "tail-drop"

    def __init__(self, allow_splitting: bool = True) -> None:
        self.allow_splitting = allow_splitting

    def shed(
        self,
        batches: Sequence[Batch],
        capacity: int,
        reported_sic: Mapping[str, float],
        total_tuples: Optional[int] = None,
    ) -> ShedDecision:
        # No underload early-exit here: the kept order is part of this
        # shedder's contract (oldest first), so the sort must always run.
        ordered = sorted(batches, key=lambda b: b.created_at)
        return self._keep_prefix(ordered, capacity, self.allow_splitting)


class NoShedder(Shedder):
    """Never sheds; used as the perfect-processing reference."""

    name = "none"

    def shed(
        self,
        batches: Sequence[Batch],
        capacity: int,
        reported_sic: Mapping[str, float],
        total_tuples: Optional[int] = None,
    ) -> ShedDecision:
        return self._keep_all(batches, total_tuples)


def make_shedder(name: str, seed: Optional[int] = 0, **kwargs) -> Shedder:
    """Factory used by simulation configs and the experiment CLI.

    Args:
        name: one of ``"balance-sic"``, ``"random"``, ``"tail-drop"``,
            ``"none"``.
        seed: RNG seed for the stochastic shedders.
        **kwargs: forwarded to the shedder constructor (e.g. a
            :class:`BalanceSicConfig` via ``config=``).
    """
    normalized = name.strip().lower().replace("_", "-")
    if normalized in ("balance-sic", "balancesic", "fair", "themis"):
        return BalanceSicShedder(seed=seed, **kwargs)
    if normalized == "random":
        return RandomShedder(seed=seed, **kwargs)
    if normalized in ("tail-drop", "taildrop", "fifo"):
        return TailDropShedder(**kwargs)
    if normalized in ("none", "no-shedding", "perfect"):
        return NoShedder()
    raise ValueError(f"unknown shedder {name!r}")
