"""Core THEMIS contribution: the SIC metric and BALANCE-SIC fair shedding."""

from .balance_sic import (
    BalanceSicConfig,
    BalanceSicPolicy,
    SelectionStrategy,
    ShedDecision,
    keep_all_decision,
)
from .cost_model import CostModel, CostModelConfig
from .fairness import FairnessSummary, jains_index, relative_spread, summarize_fairness
from .shedding import (
    BalanceSicShedder,
    NoShedder,
    RandomShedder,
    Shedder,
    TailDropShedder,
    make_shedder,
)
from .sic import (
    SicAssigner,
    SourceRateEstimator,
    propagate_sic,
    query_result_sic,
    source_tuple_sic,
)
from .bounded import BoundedLog
from .columns import ColumnBlock
from .stw import ResultSicTracker, StwConfig, StwRegistry
from .tuples import Batch, BatchHeader, Tuple, merge_batches, total_tuples

__all__ = [
    "BalanceSicConfig",
    "BalanceSicPolicy",
    "SelectionStrategy",
    "ShedDecision",
    "keep_all_decision",
    "CostModel",
    "CostModelConfig",
    "FairnessSummary",
    "jains_index",
    "relative_spread",
    "summarize_fairness",
    "BalanceSicShedder",
    "NoShedder",
    "RandomShedder",
    "Shedder",
    "TailDropShedder",
    "make_shedder",
    "SicAssigner",
    "SourceRateEstimator",
    "propagate_sic",
    "query_result_sic",
    "source_tuple_sic",
    "ResultSicTracker",
    "StwConfig",
    "StwRegistry",
    "Batch",
    "BoundedLog",
    "BatchHeader",
    "ColumnBlock",
    "Tuple",
    "merge_batches",
    "total_tuples",
]
