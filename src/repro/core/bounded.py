"""Bounded append-only event logs.

Long soak runs (repeated crash/rejoin cycles over simulated hours) append to
diagnostic event lists — the fault injector's crash/repair timeline, the
failure detector's per-incident records — that would otherwise grow without
bound.  :class:`BoundedLog` mirrors the ``max_retained_results`` pattern of
the query coordinator: keep the most recent ``maxlen`` entries, count the
rest, so summaries still report the true event count while memory stays
flat.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator, TypeVar

__all__ = ["BoundedLog"]

T = TypeVar("T")


class BoundedLog:
    """Append-only log retaining only the most recent ``maxlen`` entries.

    Iteration, ``len()`` and indexing cover the *retained* entries (oldest
    first); ``dropped`` counts evicted ones and ``total`` the lifetime
    append count.  Intended as a drop-in replacement for plain list
    accumulators that are only ever appended to and read back.
    """

    __slots__ = ("_entries", "dropped")

    def __init__(self, maxlen: int = 256) -> None:
        if maxlen <= 0:
            raise ValueError(f"maxlen must be positive, got {maxlen}")
        self._entries: deque = deque(maxlen=maxlen)
        #: Number of entries evicted to honour the bound.
        self.dropped = 0

    @property
    def maxlen(self) -> int:
        return self._entries.maxlen  # type: ignore[return-value]

    @property
    def total(self) -> int:
        """Lifetime number of appended entries (retained + dropped)."""
        return len(self._entries) + self.dropped

    def append(self, entry: T) -> None:
        if len(self._entries) == self._entries.maxlen:
            self.dropped += 1
        self._entries.append(entry)

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def __iter__(self) -> Iterator:
        return iter(self._entries)

    def __getitem__(self, index):
        return self._entries[index]

    def __repr__(self) -> str:
        return (
            f"BoundedLog(len={len(self._entries)}, dropped={self.dropped}, "
            f"maxlen={self._entries.maxlen})"
        )
