"""Reference (pre-optimisation) implementations of the shedding hot paths.

This module preserves the original O(iterations × queries) BALANCE-SIC
selection loop and the original per-tuple timestamp-deque rate estimator,
exactly as they shipped in the seed.  They exist for two reasons:

* **Correctness oracle** — the optimised :class:`repro.core.balance_sic.
  BalanceSicPolicy` must produce byte-identical :class:`ShedDecision`s for any
  input and seed; ``tests/core/test_perf_equivalence.py`` checks the fast path
  against this reference on randomised inputs.
* **Perf baseline** — ``benchmarks/test_bench_micro.py`` and
  ``scripts/bench_report.py`` time the fast path against this reference so the
  recorded speedups in ``BENCH_shedding.json`` are reproducible on any
  machine, not only relative to a number measured on ours.

The only change from the seed code is that batch splitting delegates to
:meth:`repro.core.tuples.Batch.split` so both implementations share the exact
same floating-point arithmetic for split SIC values; the control flow (the
part being optimised) is untouched.  Do not "improve" this module — its
slowness is the point.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, List, Mapping, Optional, Sequence

from .balance_sic import BalanceSicConfig, SelectionStrategy, ShedDecision
from .sic import source_tuple_sic
from .tuples import Batch, Tuple

__all__ = [
    "ReferenceBalanceSicPolicy",
    "ReferenceSourceRateEstimator",
    "ReferenceSicAssigner",
]


@dataclass
class _QueryState:
    """Per-query working state during one selection round."""

    query_id: str
    working_sic: float
    pending: List[Batch]


class ReferenceBalanceSicPolicy:
    """The seed's ``selectTuplesToKeep``: linear rescans every iteration."""

    def __init__(
        self,
        config: Optional[BalanceSicConfig] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.config = config or BalanceSicConfig()
        self.rng = rng or random.Random(0)

    # ------------------------------------------------------------------ public
    def select(
        self,
        batches: Sequence[Batch],
        capacity: int,
        reported_sic: Mapping[str, float],
    ) -> ShedDecision:
        if capacity < 0:
            raise ValueError(f"capacity must be non-negative, got {capacity}")

        decision = ShedDecision()
        states = self._initial_states(batches, reported_sic)
        if not states:
            return decision

        total_tuples = sum(len(b) for b in batches)
        if total_tuples <= capacity:
            decision.kept = list(batches)
            decision.kept_tuples = total_tuples
            decision.projected_sic = {
                s.query_id: s.working_sic + sum(b.sic for b in s.pending)
                for s in states.values()
            }
            return decision

        remaining = capacity

        while remaining > 0:
            candidates = [s for s in states.values() if s.pending]
            if not candidates:
                break
            decision.iterations += 1

            q_prime = self._argmin_query(candidates)
            target = self._next_distinct_sic(states.values(), q_prime.working_sic)

            accepted_any = False
            while q_prime.pending and remaining > 0:
                if target is not None and (
                    q_prime.working_sic >= target - self.config.epsilon
                ):
                    break
                batch = q_prime.pending[0]
                if (
                    target is not None
                    and self.config.allow_batch_splitting
                    and len(batch) > 1
                    and batch.sic > 0
                ):
                    deficit = target - q_prime.working_sic
                    per_tuple = batch.sic / len(batch)
                    needed = int(-(-deficit // per_tuple)) if per_tuple > 0 else len(batch)
                    if 0 < needed < len(batch):
                        head, tail = batch.split(needed)
                        q_prime.pending[0] = head
                        q_prime.pending.insert(1, tail)
                        batch = head
                if len(batch) <= remaining:
                    q_prime.pending.pop(0)
                    decision.kept.append(batch)
                    decision.kept_tuples += len(batch)
                    remaining -= len(batch)
                    q_prime.working_sic += batch.sic
                    accepted_any = True
                elif self.config.allow_batch_splitting and remaining > 0:
                    kept_part, rest = batch.split(remaining)
                    q_prime.pending[0] = rest
                    decision.kept.append(kept_part)
                    decision.kept_tuples += len(kept_part)
                    remaining = 0
                    q_prime.working_sic += kept_part.sic
                    accepted_any = True
                else:
                    remaining = 0
                    break
                if target is None and accepted_any:
                    break

            if not accepted_any:
                decision.shed.extend(q_prime.pending)
                decision.shed_tuples += sum(len(b) for b in q_prime.pending)
                q_prime.pending = []

        for state in states.values():
            for batch in state.pending:
                decision.shed.append(batch)
                decision.shed_tuples += len(batch)
        decision.projected_sic = {
            s.query_id: s.working_sic for s in states.values()
        }
        return decision

    # ----------------------------------------------------------------- helpers
    def _initial_states(
        self,
        batches: Sequence[Batch],
        reported_sic: Mapping[str, float],
    ) -> Dict[str, _QueryState]:
        per_query: Dict[str, List[Batch]] = {}
        for batch in batches:
            per_query.setdefault(batch.query_id, []).append(batch)

        states: Dict[str, _QueryState] = {}
        for query_id, pending in per_query.items():
            self._order_pending(pending)
            reported = float(reported_sic.get(query_id, 0.0))
            if self.config.use_projection:
                buffered = sum(b.sic for b in pending)
                working = max(0.0, reported - buffered)
            else:
                working = reported
            states[query_id] = _QueryState(
                query_id=query_id, working_sic=working, pending=pending
            )
        for query_id, value in reported_sic.items():
            if query_id not in states:
                states[query_id] = _QueryState(
                    query_id=query_id, working_sic=float(value), pending=[]
                )
        return states

    def _order_pending(self, pending: List[Batch]) -> None:
        strategy = self.config.selection_strategy
        if strategy == SelectionStrategy.HIGHEST_SIC:
            pending.sort(key=lambda b: b.sic, reverse=True)
        elif strategy == SelectionStrategy.LOWEST_SIC:
            pending.sort(key=lambda b: b.sic)
        else:
            self.rng.shuffle(pending)

    def _argmin_query(self, candidates: Sequence[_QueryState]) -> _QueryState:
        minimum = min(s.working_sic for s in candidates)
        tied = [
            s
            for s in candidates
            if s.working_sic <= minimum + self.config.epsilon
        ]
        if len(tied) == 1:
            return tied[0]
        return self.rng.choice(tied)

    def _next_distinct_sic(
        self, states: Iterable[_QueryState], reference: float
    ) -> Optional[float]:
        higher = [
            s.working_sic
            for s in states
            if s.working_sic > reference + self.config.epsilon
        ]
        if not higher:
            return None
        return min(higher)


@dataclass
class _SourceWindow:
    """Arrival bookkeeping for one source over a sliding STW."""

    timestamps: Deque[float]
    last_estimate: float
    seeded: Optional[float] = None


class ReferenceSourceRateEstimator:
    """The seed's estimator: one deque entry per arrival, O(k) ``observe``."""

    def __init__(self, stw_seconds: float, min_count: float = 1.0) -> None:
        if stw_seconds <= 0:
            raise ValueError(f"stw_seconds must be positive, got {stw_seconds}")
        self.stw_seconds = float(stw_seconds)
        self.min_count = float(min_count)
        self._windows: Dict[str, _SourceWindow] = {}

    def seed_rate(self, source_id: str, tuples_per_second: float) -> None:
        estimate = max(self.min_count, tuples_per_second * self.stw_seconds)
        window = self._windows.setdefault(
            source_id, _SourceWindow(timestamps=deque(), last_estimate=estimate)
        )
        window.last_estimate = estimate
        window.seeded = estimate

    def observe(self, source_id: str, timestamp: float, count: int = 1) -> None:
        window = self._windows.setdefault(
            source_id,
            _SourceWindow(timestamps=deque(), last_estimate=self.min_count),
        )
        for _ in range(count):
            window.timestamps.append(timestamp)
        self._expire(window, timestamp)
        window.last_estimate = self._estimate(window)

    def _estimate(self, window: _SourceWindow) -> float:
        timestamps = window.timestamps
        observed = float(len(timestamps))
        if observed == 0:
            if window.seeded is not None:
                return window.seeded
            return self.min_count
        span = timestamps[-1] - timestamps[0]
        if observed >= 2 and span > 0:
            scale = self.stw_seconds / min(self.stw_seconds, span * observed / (observed - 1))
            estimate = observed * max(1.0, scale)
        elif window.seeded is not None:
            estimate = window.seeded
        else:
            estimate = observed
        return max(self.min_count, estimate)

    def tuples_per_stw(self, source_id: str) -> float:
        window = self._windows.get(source_id)
        if window is None:
            return self.min_count
        return window.last_estimate

    def known_sources(self) -> List[str]:
        return list(self._windows)

    def _expire(self, window: _SourceWindow, now: float) -> None:
        horizon = now - self.stw_seconds
        timestamps = window.timestamps
        while timestamps and timestamps[0] < horizon:
            timestamps.popleft()


class ReferenceSicAssigner:
    """The seed's SIC assigner: per-tuple ``observe`` and per-tuple stamping.

    Preserved verbatim (on top of :class:`ReferenceSourceRateEstimator`) as
    the per-tuple baseline for the source-generation + SIC-assignment
    benchmark and as the oracle for ``SicAssigner.assign_block`` equivalence
    tests: for identical inputs both must produce identical SIC values.
    """

    def __init__(
        self,
        query_id: str,
        num_sources: int,
        stw_seconds: float,
        nominal_rates: Optional[Dict[str, float]] = None,
    ) -> None:
        if num_sources <= 0:
            raise ValueError(f"num_sources must be positive, got {num_sources}")
        self.query_id = query_id
        self.num_sources = int(num_sources)
        self.estimator = ReferenceSourceRateEstimator(stw_seconds)
        for source_id, rate in (nominal_rates or {}).items():
            self.estimator.seed_rate(source_id, rate)

    def assign(self, tuples: Sequence[Tuple]) -> List[Tuple]:
        for t in tuples:
            source = t.source_id or "__anonymous__"
            self.estimator.observe(source, t.timestamp)
        for t in tuples:
            source = t.source_id or "__anonymous__"
            per_stw = self.estimator.tuples_per_stw(source)
            t.sic = source_tuple_sic(per_stw, self.num_sources)
        return list(tuples)
