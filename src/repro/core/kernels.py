"""Fused NumPy kernels shared by the fragment plan compiler.

These helpers assemble :class:`~repro.core.columns.ColumnBlock` instances via
the ``_unchecked`` constructor: every array they produce is float64 by
construction (``np.arange``/``np.zeros``/``np.full`` arithmetic, or boolean
fancy-indexing of columns that were float64 already), so re-validating and
re-normalising each column — the per-block cost the fused path exists to
remove — would be pure overhead.

Bit-exactness notes
-------------------
* ``build_source_block`` computes timestamps as
  ``start + (arange(count) + 0.5) * step`` — the same vectorised expression
  :meth:`StreamSource.generate_block` uses, so fused source generation is
  bit-identical to staged generation.
* ``constant_sic_block``/``apply_mask`` never touch payload values: columns
  are rebound (never mutated), matching the rebind-only discipline of the
  staged operators.

This module is only imported by the fused execution path, which is gated on
the ``numpy`` columnar backend; it therefore assumes NumPy is importable.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from .columns import ColumnBlock

__all__ = ["build_source_block", "constant_sic_block", "apply_mask"]

# Memoized `arange(count) + 0.5` base for the timestamp kernel: generation
# ticks produce runs of equally-sized blocks (rate × interval, ±1 for the
# fractional carry), so one cached entry per recent size avoids re-building
# the index ramp every tick.  The cached array is never handed out — only
# read by the `base * step + start` expression below.
_TS_BASE_CACHE: Dict[int, "np.ndarray"] = {}


def _timestamp_base(count: int) -> "np.ndarray":
    base = _TS_BASE_CACHE.get(count)
    if base is None:
        if len(_TS_BASE_CACHE) > 64:  # defensive bound; sizes cluster tightly
            _TS_BASE_CACHE.clear()
        base = _TS_BASE_CACHE[count] = np.arange(count) + 0.5
    return base


def build_source_block(
    source_id: Optional[str],
    start: float,
    step: float,
    count: int,
    columns: Dict[str, "np.ndarray"],
) -> ColumnBlock:
    """Assemble a freshly generated source block in one pass.

    ``columns`` must map field names to float64 arrays of length ``count``
    (the caller — :meth:`StreamSource.generate_block_fused` — verifies this
    before taking the fast path).
    """
    timestamps = start + _timestamp_base(count) * step
    return ColumnBlock._unchecked(timestamps, np.zeros(count), columns, source_id)


def constant_sic_block(block: ColumnBlock, sics: "np.ndarray") -> ColumnBlock:
    """Rebind ``block`` with a precomputed SIC column, sharing payload arrays."""
    return ColumnBlock._unchecked(block.timestamps, sics, block.values, block.source_id)


def apply_mask(
    block: ColumnBlock, mask: "np.ndarray", sics: "np.ndarray"
) -> ColumnBlock:
    """Gather the surviving rows of ``block`` under a fused boolean mask.

    The mask is the AND-combination of every filter in the fused chain, so
    the gather happens once no matter how many filters were fused.
    """
    values = {field: column[mask] for field, column in block.values.items()}
    return ColumnBlock._unchecked(block.timestamps[mask], sics, values, block.source_id)
