"""Tuple and batch data model.

THEMIS associates every stream data item with *source information content*
(SIC) meta-data.  A tuple is the triple ``(timestamp, sic, values)`` (§3 of the
paper) and operators exchange *batches*: groups of tuples emitted atomically,
preceded by a header carrying the SIC value, the query identifier and the
creation timestamp (§6, "SIC maintenance").
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple as PyTuple,
)

__all__ = ["Tuple", "Batch", "BatchHeader", "merge_batches", "total_tuples"]

_batch_ids = itertools.count()


@dataclass
class Tuple:
    """A single stream tuple.

    Attributes:
        timestamp: logical creation time in seconds (source time for source
            tuples, generation time for derived tuples).
        sic: the source information content carried by this tuple.
        values: payload values keyed by field name.
        source_id: identifier of the originating source for source tuples,
            ``None`` for derived tuples.
    """

    timestamp: float
    sic: float
    values: Dict[str, Any] = field(default_factory=dict)
    source_id: Optional[str] = None

    def value(self, name: str, default: Any = None) -> Any:
        """Return a payload field, or ``default`` when absent."""
        return self.values.get(name, default)

    def with_sic(self, sic: float) -> "Tuple":
        """Return a copy of this tuple carrying a different SIC value."""
        return Tuple(
            timestamp=self.timestamp,
            sic=sic,
            values=dict(self.values),
            source_id=self.source_id,
        )

    def copy(self) -> "Tuple":
        """Return a shallow copy (payload dict is copied)."""
        return Tuple(
            timestamp=self.timestamp,
            sic=self.sic,
            values=dict(self.values),
            source_id=self.source_id,
        )


@dataclass
class BatchHeader:
    """Header prepended to every batch (§6).

    Attributes:
        query_id: identifier of the query the tuples belong to.
        sic: aggregate SIC value of the batch (sum over its tuples).
        created_at: creation timestamp of the batch.
        fragment_id: identifier of the fragment that produced or will consume
            the batch; used by nodes to route tuples to the right fragment.
    """

    query_id: str
    sic: float
    created_at: float
    fragment_id: Optional[str] = None


class Batch:
    """A sequence of tuples emitted atomically, with a SIC header.

    Batches are the unit of transfer between sources, operators, fragments and
    nodes, and the unit of shedding at a node's input buffer.
    """

    __slots__ = (
        "batch_id",
        "header",
        "tuples",
        "origin_fragment_id",
        "_sic_prefix",
        "_prefix_start",
    )

    def __init__(
        self,
        query_id: str,
        tuples: Sequence[Tuple],
        created_at: Optional[float] = None,
        fragment_id: Optional[str] = None,
        origin_fragment_id: Optional[str] = None,
    ) -> None:
        self.batch_id: int = next(_batch_ids)
        self.tuples: List[Tuple] = list(tuples)
        # Which fragment produced this batch (None for source batches); nodes
        # use it to route the batch to the right entry operator downstream.
        self.origin_fragment_id = origin_fragment_id
        # Cumulative-SIC prefix array, shared with batches produced by
        # ``split`` so repeated splitting never re-sums tuple SIC values.
        self._sic_prefix: Optional[List[float]] = None
        self._prefix_start: int = 0
        sic = sum(t.sic for t in self.tuples)
        if created_at is None:
            created_at = min((t.timestamp for t in self.tuples), default=0.0)
        self.header = BatchHeader(
            query_id=query_id,
            sic=sic,
            created_at=created_at,
            fragment_id=fragment_id,
        )

    # -- convenience accessors -------------------------------------------------
    @property
    def query_id(self) -> str:
        return self.header.query_id

    @property
    def fragment_id(self) -> Optional[str]:
        return self.header.fragment_id

    @property
    def sic(self) -> float:
        return self.header.sic

    @property
    def created_at(self) -> float:
        return self.header.created_at

    def __len__(self) -> int:
        return len(self.tuples)

    def __iter__(self) -> Iterator[Tuple]:
        return iter(self.tuples)

    def __bool__(self) -> bool:
        return bool(self.tuples)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Batch(id={self.batch_id}, query={self.query_id!r}, "
            f"tuples={len(self.tuples)}, sic={self.sic:.6f})"
        )

    def refresh_sic(self) -> float:
        """Recompute the header SIC from the tuples and return it."""
        # Tuple SIC values may have been rewritten in place, so any cached
        # prefix array is stale and must be rebuilt on the next split.
        self._sic_prefix = None
        self._prefix_start = 0
        self.header.sic = sum(t.sic for t in self.tuples)
        return self.header.sic

    # -- fast splitting --------------------------------------------------------
    def sic_prefix(self) -> List[float]:
        """Cumulative SIC sums over this batch's tuples (length ``len + 1``).

        The array is computed lazily on first use and shared with the batches
        produced by :meth:`split`, so a chain of splits performs a single O(n)
        pass over the tuples no matter how many times the pieces are re-split.
        ``sic_prefix()[i] - sic_prefix()[j]`` is the summed SIC of tuples
        ``j..i-1`` relative to ``_prefix_start``.
        """
        if self._sic_prefix is None:
            prefix = [0.0] * (len(self.tuples) + 1)
            running = 0.0
            for i, t in enumerate(self.tuples):
                running += t.sic
                prefix[i + 1] = running
            self._sic_prefix = prefix
            self._prefix_start = 0
        return self._sic_prefix

    def split(self, keep_tuples: int) -> "PyTuple[Batch, Batch]":
        """Split into a head of ``keep_tuples`` tuples and the remaining tail.

        Both halves keep this batch's header fields (query, creation time,
        fragment routing) and their ``header.sic`` is derived incrementally
        from the shared cumulative-SIC prefix array — no tuple re-summing.

        Raises:
            ValueError: unless ``0 < keep_tuples < len(self)``.
        """
        n = len(self.tuples)
        if not 0 < keep_tuples < n:
            raise ValueError(
                f"keep_tuples must be in (0, {n}), got {keep_tuples}"
            )
        prefix = self.sic_prefix()
        start = self._prefix_start
        if prefix[start + n] - prefix[start] != self.header.sic:
            # The shared prefix array no longer matches this batch's header —
            # a sibling's tuples were mutated and refreshed through another
            # batch.  Rebuild our own prefix from our own tuples.
            self._sic_prefix = None
            self._prefix_start = 0
            prefix = self.sic_prefix()
            start = 0
        cut = start + keep_tuples
        head_sic = prefix[cut] - prefix[start]
        tail_sic = prefix[start + n] - prefix[cut]
        head = self._derived(self.tuples[:keep_tuples], head_sic, prefix, start)
        tail = self._derived(self.tuples[keep_tuples:], tail_sic, prefix, cut)
        return head, tail

    def _derived(
        self,
        tuples: List[Tuple],
        sic: float,
        prefix: List[float],
        prefix_start: int,
    ) -> "Batch":
        """Build a split piece without re-summing tuple SIC values."""
        piece = Batch.__new__(Batch)
        piece.batch_id = next(_batch_ids)
        piece.tuples = tuples
        piece.origin_fragment_id = self.origin_fragment_id
        piece._sic_prefix = prefix
        piece._prefix_start = prefix_start
        piece.header = BatchHeader(
            query_id=self.header.query_id,
            sic=sic,
            created_at=self.header.created_at,
            fragment_id=self.header.fragment_id,
        )
        return piece

    def meta_data_bytes(self) -> int:
        """Size of the SIC meta-data attached to this batch.

        The prototype in the paper stores 10 bytes for the SIC value plus a
        query identifier and a timestamp per batch header (§7.6).  We report
        the same accounting so the overhead experiment can reproduce the
        "meta-data bytes" figure.
        """
        sic_bytes = 10
        query_id_bytes = 16
        timestamp_bytes = 8
        return sic_bytes + query_id_bytes + timestamp_bytes


def total_tuples(batches: Iterable[Batch]) -> int:
    """Total tuple count across ``batches`` (one pass over batch lengths)."""
    return sum(len(b) for b in batches)


def merge_batches(batches: Iterable[Batch]) -> Dict[str, List[Batch]]:
    """Group batches by query identifier, preserving arrival order."""
    grouped: Dict[str, List[Batch]] = {}
    for batch in batches:
        grouped.setdefault(batch.query_id, []).append(batch)
    return grouped
