"""Tuple and batch data model.

THEMIS associates every stream data item with *source information content*
(SIC) meta-data.  A tuple is the triple ``(timestamp, sic, values)`` (§3 of the
paper) and operators exchange *batches*: groups of tuples emitted atomically,
preceded by a header carrying the SIC value, the query identifier and the
creation timestamp (§6, "SIC maintenance").
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence

try:  # Guarded so the per-tuple data model works without NumPy installed.
    import numpy as np
except ImportError:  # pragma: no cover - exercised only on stripped installs
    np = None

__all__ = [
    "Tuple",
    "Batch",
    "BatchHeader",
    "merge_batches",
    "total_tuples",
    "seq_sum",
    "SMALL_COLUMN",
]


# Below this length the ufunc dispatch overhead exceeds builtin sum() over
# ``tolist()`` — both give bit-identical results, so the cut-over is a pure
# perf knob (split-fragmented shedding batches are often a handful of rows).
# Canonical home of the sequential-sum primitive (re-exported by
# repro.core.columns, which imports this module).
SMALL_COLUMN = 64


def seq_sum(column, initial: float = 0.0) -> float:
    """Sequential left-to-right sum of ``column`` starting from ``initial``.

    Bit-equal to ``total = initial; for v in column: total += v`` — on array
    columns the fold is ``np.add.accumulate``'s last element (accumulation is
    strictly left to right), *never* ``np.sum`` (pairwise summation rounds
    differently); short arrays and plain lists fold through the builtin
    ``sum(column, initial)``, which performs the identical additions at C
    speed.  This is the one reduction primitive every columnar kernel must
    use so numpy-, list- and tuple-backed runs stay result-identical.
    """
    if np is not None and isinstance(column, np.ndarray):
        n = len(column)
        if n == 0:
            return float(initial)
        if n > SMALL_COLUMN:
            if initial == 0.0:
                # ``0.0 + v0 == v0`` exactly: the leading fold is elidable.
                return float(np.add.accumulate(column)[-1])
            return float(
                np.add.accumulate(
                    np.concatenate((np.asarray([initial]), column))
                )[-1]
            )
        column = column.tolist()
    return float(sum(column, initial))

_batch_ids = itertools.count()


@dataclass
class Tuple:
    """A single stream tuple.

    Attributes:
        timestamp: logical creation time in seconds (source time for source
            tuples, generation time for derived tuples).
        sic: the source information content carried by this tuple.
        values: payload values keyed by field name.
        source_id: identifier of the originating source for source tuples,
            ``None`` for derived tuples.
    """

    timestamp: float
    sic: float
    values: Dict[str, Any] = field(default_factory=dict)
    source_id: Optional[str] = None

    def value(self, name: str, default: Any = None) -> Any:
        """Return a payload field, or ``default`` when absent."""
        return self.values.get(name, default)

    def with_sic(self, sic: float) -> "Tuple":
        """Return a copy of this tuple carrying a different SIC value."""
        return Tuple(
            timestamp=self.timestamp,
            sic=sic,
            values=dict(self.values),
            source_id=self.source_id,
        )

    def copy(self) -> "Tuple":
        """Return a shallow copy (payload dict is copied)."""
        return Tuple(
            timestamp=self.timestamp,
            sic=self.sic,
            values=dict(self.values),
            source_id=self.source_id,
        )


@dataclass
class BatchHeader:
    """Header prepended to every batch (§6).

    Attributes:
        query_id: identifier of the query the tuples belong to.
        sic: aggregate SIC value of the batch (sum over its tuples).
        created_at: creation timestamp of the batch.
        fragment_id: identifier of the fragment that produced or will consume
            the batch; used by nodes to route tuples to the right fragment.
    """

    query_id: str
    sic: float
    created_at: float
    fragment_id: Optional[str] = None


class Batch:
    """A sequence of tuples emitted atomically, with a SIC header.

    Batches are the unit of transfer between sources, operators, fragments and
    nodes, and the unit of shedding at a node's input buffer.

    A batch is backed either by a list of :class:`Tuple` objects (the seed
    representation) or, on the columnar fast path, by a
    :class:`repro.core.columns.ColumnBlock` of parallel arrays
    (:meth:`from_block`).  The per-tuple view stays the compatibility
    surface: accessing :attr:`tuples` on a columnar batch materializes the
    tuple objects lazily (and exactly — same timestamps, SIC values and
    payload dicts the per-tuple path would have produced).  The shedding hot
    paths only need ``len``, ``header.sic`` and :meth:`split`, all of which
    work directly on the columns without materializing anything.
    """

    __slots__ = (
        "batch_id",
        "header",
        "origin_fragment_id",
        "origin_epoch",
        "origin_seq",
        "_tuples",
        "_block",
        "_block_start",
        "_block_stop",
        "_sic_prefix",
        "_prefix_start",
    )

    def __init__(
        self,
        query_id: str,
        tuples: Sequence[Tuple],
        created_at: Optional[float] = None,
        fragment_id: Optional[str] = None,
        origin_fragment_id: Optional[str] = None,
    ) -> None:
        self.batch_id: int = next(_batch_ids)
        self._tuples: Optional[List[Tuple]] = list(tuples)
        self._block = None
        self._block_start = 0
        self._block_stop = 0
        # Which fragment produced this batch (None for source batches); nodes
        # use it to route the batch to the right entry operator downstream.
        self.origin_fragment_id = origin_fragment_id
        # Exactly-once output watermark: root fragments stamp their emitted
        # result batches with their (epoch, seq) counters so the coordinator
        # can deduplicate crash-replayed output.  ``None`` everywhere else.
        self.origin_epoch: Optional[int] = None
        self.origin_seq: Optional[int] = None
        # Cumulative-SIC prefix array, shared with batches produced by
        # ``split`` so repeated splitting never re-sums tuple SIC values.
        self._sic_prefix: Optional[List[float]] = None
        self._prefix_start: int = 0
        sic = sum(t.sic for t in self._tuples)
        if created_at is None:
            created_at = min((t.timestamp for t in self._tuples), default=0.0)
        self.header = BatchHeader(
            query_id=query_id,
            sic=sic,
            created_at=created_at,
            fragment_id=fragment_id,
        )

    @classmethod
    def from_block(
        cls,
        query_id: str,
        block,
        created_at: Optional[float] = None,
        fragment_id: Optional[str] = None,
        origin_fragment_id: Optional[str] = None,
    ) -> "Batch":
        """Build a columnar batch around a ``ColumnBlock`` (no Tuple objects).

        The header SIC is the left-to-right sum over the block's SIC column —
        the exact arithmetic ``__init__`` performs over tuple objects.
        """
        batch = cls.__new__(cls)
        batch.batch_id = next(_batch_ids)
        batch._tuples = None
        batch._block = block
        batch._block_start = 0
        batch._block_stop = len(block)
        batch.origin_fragment_id = origin_fragment_id
        batch.origin_epoch = None
        batch.origin_seq = None
        batch._sic_prefix = None
        batch._prefix_start = 0
        sic = seq_sum(block.sics)
        if created_at is None:
            timestamps = block.timestamps
            if np is not None and isinstance(timestamps, np.ndarray):
                created_at = float(timestamps.min()) if len(timestamps) else 0.0
            else:
                created_at = min(timestamps, default=0.0)
        batch.header = BatchHeader(
            query_id=query_id,
            sic=sic,
            created_at=created_at,
            fragment_id=fragment_id,
        )
        return batch

    # -- representation access -------------------------------------------------
    @property
    def tuples(self) -> List[Tuple]:
        """Per-tuple view; materializes (and caches) for columnar batches."""
        if self._tuples is None:
            # Materialize straight from the (possibly shared) block's
            # sub-range — one copy, no intermediate sliced block.  Fresh
            # tuples (cache bypassed): this property hands out *mutable*
            # tuples, which must not alias the block's memoized read-only
            # materialization shared with window panes and sibling batches.
            self._tuples = self._block.to_tuples(
                self._block_start, self._block_stop, fresh=True
            )
            # The materialized tuples become the single source of truth:
            # callers may mutate them (e.g. SIC rewrites), which the columns
            # would not reflect.
            self._block = None
        return self._tuples

    @tuples.setter
    def tuples(self, value: Sequence[Tuple]) -> None:
        self._tuples = list(value)
        self._block = None
        self._sic_prefix = None
        self._prefix_start = 0

    @property
    def block(self):
        """The backing ``ColumnBlock``, or ``None`` once materialized.

        Batches produced by :meth:`split` reference a sub-range of their
        parent's block (splitting is O(1) — pure offset bookkeeping); the
        range is materialized into its own block on first access here, so
        shed batches that nobody reads again never pay for column copies.
        """
        block = self._block
        if block is None:
            return None
        start = self._block_start
        stop = self._block_stop
        if start != 0 or stop != len(block):
            block = block.slice(start, stop)
            self._block = block
            self._block_start = 0
            self._block_stop = stop - start
        return block

    def block_view(self):
        """``(block, start, stop)`` without materializing a sub-range block.

        ``None`` when the batch is tuple-backed.  Consumers that can work on
        ranges (window bucketing) use this to defer column copies all the way
        to pane close; ``block`` materializes instead.
        """
        if self._block is None:
            return None
        return self._block, self._block_start, self._block_stop

    @property
    def is_columnar(self) -> bool:
        return self._tuples is None

    # -- convenience accessors -------------------------------------------------
    @property
    def query_id(self) -> str:
        return self.header.query_id

    @property
    def fragment_id(self) -> Optional[str]:
        return self.header.fragment_id

    @property
    def sic(self) -> float:
        return self.header.sic

    @property
    def created_at(self) -> float:
        return self.header.created_at

    def __len__(self) -> int:
        if self._tuples is None:
            return self._block_stop - self._block_start
        return len(self._tuples)

    def __iter__(self) -> Iterator[Tuple]:
        return iter(self.tuples)

    def __bool__(self) -> bool:
        return len(self) > 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Batch(id={self.batch_id}, query={self.query_id!r}, "
            f"tuples={len(self)}, sic={self.sic:.6f})"
        )

    def refresh_sic(self) -> float:
        """Recompute the header SIC from the tuples and return it."""
        # Tuple SIC values may have been rewritten in place, so any cached
        # prefix array is stale and must be rebuilt on the next split.
        self._sic_prefix = None
        self._prefix_start = 0
        if self._tuples is None:
            self.header.sic = seq_sum(
                self._block.sics[self._block_start:self._block_stop]
            )
        else:
            self.header.sic = sum(t.sic for t in self._tuples)
        return self.header.sic

    def payload_bytes(self, bytes_per_field: int = 8) -> int:
        """Payload size accounting (fields × ``bytes_per_field``).

        Equals ``sum(len(t.values) * bytes_per_field for t in batch.tuples)``
        but is O(1) for columnar batches (uniform schema by construction).
        """
        if self._tuples is None:
            return len(self) * self._block.num_fields * bytes_per_field
        return sum(len(t.values) * bytes_per_field for t in self._tuples)

    # -- fast splitting --------------------------------------------------------
    def sic_prefix(self) -> List[float]:
        """Cumulative SIC sums over this batch's tuples (length ``len + 1``).

        The array is computed lazily on first use and shared with the batches
        produced by :meth:`split`, so a chain of splits performs a single O(n)
        pass over the tuples no matter how many times the pieces are re-split.
        ``sic_prefix()[i] - sic_prefix()[j]`` is the summed SIC of tuples
        ``j..i-1`` relative to ``_prefix_start``.
        """
        if self._sic_prefix is None:
            if self._tuples is None:
                sics = self._block.sics[self._block_start:self._block_stop]
            else:
                sics = [t.sic for t in self._tuples]
            if np is not None and isinstance(sics, np.ndarray):
                if len(sics) > SMALL_COLUMN:
                    # One vectorized pass; accumulate folds left to right, so
                    # every prefix entry matches the Python loop bit for bit.
                    prefix = np.empty(len(sics) + 1)
                    prefix[0] = 0.0
                    np.add.accumulate(sics, out=prefix[1:])
                    self._sic_prefix = prefix
                    self._prefix_start = 0
                    return prefix
                sics = sics.tolist()
            prefix = [0.0] * (len(sics) + 1)
            running = 0.0
            for i, s in enumerate(sics):
                running += s
                prefix[i + 1] = running
            self._sic_prefix = prefix
            self._prefix_start = 0
        return self._sic_prefix

    def split(self, keep_tuples: int) -> "PyTuple[Batch, Batch]":
        """Split into a head of ``keep_tuples`` tuples and the remaining tail.

        Both halves keep this batch's header fields (query, creation time,
        fragment routing) and their ``header.sic`` is derived incrementally
        from the shared cumulative-SIC prefix array — no tuple re-summing.

        Raises:
            ValueError: unless ``0 < keep_tuples < len(self)``.
        """
        n = len(self)
        if not 0 < keep_tuples < n:
            raise ValueError(
                f"keep_tuples must be in (0, {n}), got {keep_tuples}"
            )
        prefix = self.sic_prefix()
        start = self._prefix_start
        if prefix[start + n] - prefix[start] != self.header.sic:
            # The shared prefix array no longer matches this batch's header —
            # a sibling's tuples were mutated and refreshed through another
            # batch.  Rebuild our own prefix from our own tuples.
            self._sic_prefix = None
            self._prefix_start = 0
            prefix = self.sic_prefix()
            start = 0
        cut = start + keep_tuples
        # float() keeps headers Python scalars even off an ndarray prefix.
        head_sic = float(prefix[cut] - prefix[start])
        tail_sic = float(prefix[start + n] - prefix[cut])
        if self._tuples is None:
            # Columnar split is O(1): both pieces reference sub-ranges of the
            # shared block; columns are only copied if a piece's block is
            # actually read again (see the ``block`` property).
            block_start = self._block_start
            head = self._derived(
                None,
                block_start,
                block_start + keep_tuples,
                head_sic,
                prefix,
                start,
            )
            tail = self._derived(
                None,
                block_start + keep_tuples,
                block_start + n,
                tail_sic,
                prefix,
                cut,
            )
        else:
            head = self._derived(
                self._tuples[:keep_tuples], 0, 0, head_sic, prefix, start
            )
            tail = self._derived(
                self._tuples[keep_tuples:], 0, 0, tail_sic, prefix, cut
            )
        return head, tail

    def _derived(
        self,
        tuples: Optional[List[Tuple]],
        block_start: int,
        block_stop: int,
        sic: float,
        prefix: List[float],
        prefix_start: int,
    ) -> "Batch":
        """Build a split piece without re-summing tuple SIC values."""
        piece = Batch.__new__(Batch)
        piece.batch_id = next(_batch_ids)
        piece._tuples = tuples
        piece._block = self._block if tuples is None else None
        piece._block_start = block_start
        piece._block_stop = block_stop
        piece.origin_fragment_id = self.origin_fragment_id
        # Split pieces never inherit the output watermark: a stamp names one
        # emitted batch exactly, and two halves sharing it would double-count.
        piece.origin_epoch = None
        piece.origin_seq = None
        piece._sic_prefix = prefix
        piece._prefix_start = prefix_start
        piece.header = BatchHeader(
            query_id=self.header.query_id,
            sic=sic,
            created_at=self.header.created_at,
            fragment_id=self.header.fragment_id,
        )
        return piece

    def meta_data_bytes(self) -> int:
        """Size of the SIC meta-data attached to this batch.

        The prototype in the paper stores 10 bytes for the SIC value plus a
        query identifier and a timestamp per batch header (§7.6).  We report
        the same accounting so the overhead experiment can reproduce the
        "meta-data bytes" figure.
        """
        sic_bytes = 10
        query_id_bytes = 16
        timestamp_bytes = 8
        return sic_bytes + query_id_bytes + timestamp_bytes


def total_tuples(batches: Iterable[Batch]) -> int:
    """Total tuple count across ``batches`` (one pass over batch lengths)."""
    return sum(len(b) for b in batches)


def merge_batches(batches: Iterable[Batch]) -> Dict[str, List[Batch]]:
    """Group batches by query identifier, preserving arrival order."""
    grouped: Dict[str, List[Batch]] = {}
    for batch in batches:
        grouped.setdefault(batch.query_id, []).append(batch)
    return grouped
