"""BALANCE-SIC fair tuple selection — Algorithm 1 of the paper (§5).

Each overloaded node runs the same procedure once per shedding interval: given
the batches waiting in its input buffer, the node capacity ``c`` (tuples it can
process during the interval) and the latest known result SIC value of every
locally hosted query, it selects which batches to keep so that the result SIC
values of all queries converge towards the same value, and sheds the rest.

The implementation follows the paper's gradient-ascent structure:

* iteratively pick the query ``q'`` with the minimum (projected) result SIC
  that still has pending tuples;
* find ``q''``, the next-lowest *distinct* SIC value among the other queries;
* accept tuples from ``q'`` — highest SIC value first (``max(x_SIC)`` in
  line 16), which maximises the SIC gain per accepted tuple and therefore uses
  the node's capacity efficiently — until ``q'`` catches up with ``q''`` or
  capacity runs out;
* when all queries are tied, accept one more batch from a randomly chosen
  query so the node's remaining capacity is not wasted.

The per-node projection heuristic of §6 is also implemented here: before the
selection starts, each query's reported result SIC is reduced by the total SIC
currently sitting in the input buffer for that query, i.e. the node plans as if
it shed everything and then "earns back" SIC for every batch it accepts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple as PyTuple

from .tuples import Batch, Tuple

__all__ = [
    "SelectionStrategy",
    "BalanceSicConfig",
    "ShedDecision",
    "BalanceSicPolicy",
]


class SelectionStrategy:
    """How tuples are ordered *within* the selected query.

    ``HIGHEST_SIC`` is the paper's choice (line 16, ``max(x_SIC)``); the other
    two exist for the ablation benchmarks.
    """

    HIGHEST_SIC = "highest_sic"
    LOWEST_SIC = "lowest_sic"
    RANDOM = "random"

    ALL = (HIGHEST_SIC, LOWEST_SIC, RANDOM)


@dataclass(frozen=True)
class BalanceSicConfig:
    """Tunables of the BALANCE-SIC selection procedure.

    Attributes:
        selection_strategy: ordering of batches within the selected query.
        allow_batch_splitting: when the remaining capacity is smaller than the
            next batch, split the batch instead of leaving capacity unused.
        use_projection: apply the §6 heuristic that subtracts the SIC of
            buffered batches from the reported result SIC before selecting.
        epsilon: numerical tolerance when comparing SIC values for equality.
    """

    selection_strategy: str = SelectionStrategy.HIGHEST_SIC
    allow_batch_splitting: bool = True
    use_projection: bool = True
    epsilon: float = 1e-12

    def __post_init__(self) -> None:
        if self.selection_strategy not in SelectionStrategy.ALL:
            raise ValueError(
                f"unknown selection strategy {self.selection_strategy!r}; "
                f"expected one of {SelectionStrategy.ALL}"
            )
        if self.epsilon < 0:
            raise ValueError(f"epsilon must be non-negative, got {self.epsilon}")


@dataclass
class ShedDecision:
    """Outcome of one shedding round.

    Attributes:
        kept: batches selected for processing, in selection order.
        shed: batches to discard.
        kept_tuples: total number of tuples kept.
        shed_tuples: total number of tuples shed.
        iterations: number of iterations of the selection loop.
        projected_sic: the per-query SIC values the node projects after this
            round (its own local view; the coordinator later reconciles it).
    """

    kept: List[Batch] = field(default_factory=list)
    shed: List[Batch] = field(default_factory=list)
    kept_tuples: int = 0
    shed_tuples: int = 0
    iterations: int = 0
    projected_sic: Dict[str, float] = field(default_factory=dict)

    @property
    def total_tuples(self) -> int:
        return self.kept_tuples + self.shed_tuples

    def kept_sic_per_query(self) -> Dict[str, float]:
        """Sum of the SIC values of kept batches, per query."""
        totals: Dict[str, float] = {}
        for batch in self.kept:
            totals[batch.query_id] = totals.get(batch.query_id, 0.0) + batch.sic
        return totals


@dataclass
class _QueryState:
    """Per-query working state during one selection round."""

    query_id: str
    working_sic: float
    pending: List[Batch]


class BalanceSicPolicy:
    """Implementation of Algorithm 1's ``selectTuplesToKeep`` procedure."""

    def __init__(
        self,
        config: Optional[BalanceSicConfig] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.config = config or BalanceSicConfig()
        self.rng = rng or random.Random(0)

    # ------------------------------------------------------------------ public
    def select(
        self,
        batches: Sequence[Batch],
        capacity: int,
        reported_sic: Mapping[str, float],
    ) -> ShedDecision:
        """Select which batches to keep given capacity ``c``.

        Args:
            batches: the content of the node's input buffer for this interval.
            capacity: the number of tuples the node can process (``c``).
            reported_sic: last known result SIC per query, as disseminated by
                the query coordinators (``updateSIC``).  Queries that have
                batches in the buffer but no reported value default to 0.

        Returns:
            A :class:`ShedDecision` with the kept and shed batches.
        """
        if capacity < 0:
            raise ValueError(f"capacity must be non-negative, got {capacity}")

        decision = ShedDecision()
        states = self._initial_states(batches, reported_sic)
        if not states:
            return decision

        total_tuples = sum(len(b) for b in batches)
        if total_tuples <= capacity:
            # Not overloaded: keep everything (the node only sheds when the
            # buffer exceeds its capacity, §6 "Overload detection").
            decision.kept = list(batches)
            decision.kept_tuples = total_tuples
            decision.projected_sic = {
                s.query_id: s.working_sic + sum(b.sic for b in s.pending)
                for s in states.values()
            }
            return decision

        remaining = capacity
        kept_ids = set()

        while remaining > 0:
            candidates = [s for s in states.values() if s.pending]
            if not candidates:
                break
            decision.iterations += 1

            q_prime = self._argmin_query(candidates)
            target = self._next_distinct_sic(states.values(), q_prime.working_sic)

            accepted_any = False
            while q_prime.pending and remaining > 0:
                if target is not None and (
                    q_prime.working_sic >= target - self.config.epsilon
                ):
                    break
                batch = q_prime.pending[0]
                # Take only as many tuples as needed to reach the target
                # (line 15-16 of Algorithm 1): if accepting the whole batch
                # would overshoot q'', split it at the required tuple count.
                if (
                    target is not None
                    and self.config.allow_batch_splitting
                    and len(batch) > 1
                    and batch.sic > 0
                ):
                    deficit = target - q_prime.working_sic
                    per_tuple = batch.sic / len(batch)
                    needed = int(-(-deficit // per_tuple)) if per_tuple > 0 else len(batch)
                    if 0 < needed < len(batch):
                        head, tail = self._split_batch(batch, needed)
                        q_prime.pending[0] = head
                        q_prime.pending.insert(1, tail)
                        batch = head
                if len(batch) <= remaining:
                    q_prime.pending.pop(0)
                    decision.kept.append(batch)
                    kept_ids.add(batch.batch_id)
                    decision.kept_tuples += len(batch)
                    remaining -= len(batch)
                    q_prime.working_sic += batch.sic
                    accepted_any = True
                elif self.config.allow_batch_splitting and remaining > 0:
                    kept_part, rest = self._split_batch(batch, remaining)
                    q_prime.pending[0] = rest
                    decision.kept.append(kept_part)
                    kept_ids.add(kept_part.batch_id)
                    decision.kept_tuples += len(kept_part)
                    remaining = 0
                    q_prime.working_sic += kept_part.sic
                    accepted_any = True
                else:
                    remaining = 0
                    break
                if target is None and accepted_any:
                    # All queries tied: accept a single batch then re-evaluate,
                    # matching iteration 5 of the paper's Figure 3 example.
                    break

            if not accepted_any:
                # The minimum-SIC query could not accept anything (e.g. its
                # next batch does not fit and splitting is disabled); drop its
                # pending tuples into the shed set to guarantee progress.
                decision.shed.extend(q_prime.pending)
                decision.shed_tuples += sum(len(b) for b in q_prime.pending)
                q_prime.pending = []

        # Whatever was not selected is shed (Algorithm 1, line 7).  Batches
        # split along the way leave their unkept remainder in the pending
        # lists, so the pending lists are exactly the shed set.
        for state in states.values():
            for batch in state.pending:
                decision.shed.append(batch)
                decision.shed_tuples += len(batch)
        decision.projected_sic = {
            s.query_id: s.working_sic for s in states.values()
        }
        return decision

    # ----------------------------------------------------------------- helpers
    def _initial_states(
        self,
        batches: Sequence[Batch],
        reported_sic: Mapping[str, float],
    ) -> Dict[str, _QueryState]:
        per_query: Dict[str, List[Batch]] = {}
        for batch in batches:
            per_query.setdefault(batch.query_id, []).append(batch)

        states: Dict[str, _QueryState] = {}
        for query_id, pending in per_query.items():
            self._order_pending(pending)
            reported = float(reported_sic.get(query_id, 0.0))
            if self.config.use_projection:
                buffered = sum(b.sic for b in pending)
                working = max(0.0, reported - buffered)
            else:
                working = reported
            states[query_id] = _QueryState(
                query_id=query_id, working_sic=working, pending=pending
            )
        # Queries known to the node (via the coordinator) but without buffered
        # tuples still participate as comparison points for q''.
        for query_id, value in reported_sic.items():
            if query_id not in states:
                states[query_id] = _QueryState(
                    query_id=query_id, working_sic=float(value), pending=[]
                )
        return states

    def _order_pending(self, pending: List[Batch]) -> None:
        strategy = self.config.selection_strategy
        if strategy == SelectionStrategy.HIGHEST_SIC:
            pending.sort(key=lambda b: b.sic, reverse=True)
        elif strategy == SelectionStrategy.LOWEST_SIC:
            pending.sort(key=lambda b: b.sic)
        else:
            self.rng.shuffle(pending)

    def _argmin_query(self, candidates: Sequence[_QueryState]) -> _QueryState:
        minimum = min(s.working_sic for s in candidates)
        tied = [
            s
            for s in candidates
            if s.working_sic <= minimum + self.config.epsilon
        ]
        if len(tied) == 1:
            return tied[0]
        return self.rng.choice(tied)

    def _next_distinct_sic(
        self, states: Iterable[_QueryState], reference: float
    ) -> Optional[float]:
        higher = [
            s.working_sic
            for s in states
            if s.working_sic > reference + self.config.epsilon
        ]
        if not higher:
            return None
        return min(higher)

    def _split_batch(self, batch: Batch, keep_tuples: int) -> PyTuple[Batch, Batch]:
        """Split ``batch`` into a kept part of ``keep_tuples`` tuples and a rest."""
        kept_tuples = batch.tuples[:keep_tuples]
        rest_tuples = batch.tuples[keep_tuples:]
        kept = Batch(
            batch.query_id,
            kept_tuples,
            created_at=batch.created_at,
            fragment_id=batch.fragment_id,
            origin_fragment_id=batch.origin_fragment_id,
        )
        rest = Batch(
            batch.query_id,
            rest_tuples,
            created_at=batch.created_at,
            fragment_id=batch.fragment_id,
            origin_fragment_id=batch.origin_fragment_id,
        )
        return kept, rest
