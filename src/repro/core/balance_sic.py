"""BALANCE-SIC fair tuple selection — Algorithm 1 of the paper (§5).

Each overloaded node runs the same procedure once per shedding interval: given
the batches waiting in its input buffer, the node capacity ``c`` (tuples it can
process during the interval) and the latest known result SIC value of every
locally hosted query, it selects which batches to keep so that the result SIC
values of all queries converge towards the same value, and sheds the rest.

The implementation follows the paper's gradient-ascent structure:

* iteratively pick the query ``q'`` with the minimum (projected) result SIC
  that still has pending tuples;
* find ``q''``, the next-lowest *distinct* SIC value among the other queries;
* accept tuples from ``q'`` — highest SIC value first (``max(x_SIC)`` in
  line 16), which maximises the SIC gain per accepted tuple and therefore uses
  the node's capacity efficiently — until ``q'`` catches up with ``q''`` or
  capacity runs out;
* when all queries are tied, accept one more batch from a randomly chosen
  query so the node's remaining capacity is not wasted.

The per-node projection heuristic of §6 is also implemented here: before the
selection starts, each query's reported result SIC is reduced by the total SIC
currently sitting in the input buffer for that query, i.e. the node plans as if
it shed everything and then "earns back" SIC for every batch it accepts.

Selection is implemented with two lazily-invalidated min-heaps keyed by the
queries' working SIC values — one over queries with pending batches (for
``q'``) and one over all queries (for ``q''``) — so a selection round costs
O((B + I) log Q) instead of the O(I × Q) linear rescans of the straightforward
implementation (kept in :mod:`repro.core._reference` as the equivalence oracle
and perf baseline).  Pending lists are stored back-to-front so the per-query
cursor advances with O(1) ``pop()``s, and batch splits go through
:meth:`repro.core.tuples.Batch.split`, which derives the split SIC values from
a shared cumulative-SIC prefix array instead of re-summing tuples.

The heap path replays the exact same RNG call sequence (tie-break ``choice``
over the tied queries in buffer order, per-query ``shuffle`` for the RANDOM
strategy) and the exact same floating-point arithmetic as the reference, so
seeded runs produce identical :class:`ShedDecision`s.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple as PyTuple

from .tuples import Batch, total_tuples as _total_tuples

__all__ = [
    "SelectionStrategy",
    "BalanceSicConfig",
    "ShedDecision",
    "BalanceSicPolicy",
    "keep_all_decision",
]


class SelectionStrategy:
    """How tuples are ordered *within* the selected query.

    ``HIGHEST_SIC`` is the paper's choice (line 16, ``max(x_SIC)``); the other
    two exist for the ablation benchmarks.
    """

    HIGHEST_SIC = "highest_sic"
    LOWEST_SIC = "lowest_sic"
    RANDOM = "random"

    ALL = (HIGHEST_SIC, LOWEST_SIC, RANDOM)


@dataclass(frozen=True)
class BalanceSicConfig:
    """Tunables of the BALANCE-SIC selection procedure.

    Attributes:
        selection_strategy: ordering of batches within the selected query.
        allow_batch_splitting: when the remaining capacity is smaller than the
            next batch, split the batch instead of leaving capacity unused.
        use_projection: apply the §6 heuristic that subtracts the SIC of
            buffered batches from the reported result SIC before selecting.
        epsilon: numerical tolerance when comparing SIC values for equality.
    """

    selection_strategy: str = SelectionStrategy.HIGHEST_SIC
    allow_batch_splitting: bool = True
    use_projection: bool = True
    epsilon: float = 1e-12

    def __post_init__(self) -> None:
        if self.selection_strategy not in SelectionStrategy.ALL:
            raise ValueError(
                f"unknown selection strategy {self.selection_strategy!r}; "
                f"expected one of {SelectionStrategy.ALL}"
            )
        if self.epsilon < 0:
            raise ValueError(f"epsilon must be non-negative, got {self.epsilon}")


@dataclass
class ShedDecision:
    """Outcome of one shedding round.

    Attributes:
        kept: batches selected for processing, in selection order.
        shed: batches to discard.
        kept_tuples: total number of tuples kept.
        shed_tuples: total number of tuples shed.
        iterations: number of iterations of the selection loop.
        projected_sic: the per-query SIC values the node projects after this
            round (its own local view; the coordinator later reconciles it).
    """

    kept: List[Batch] = field(default_factory=list)
    shed: List[Batch] = field(default_factory=list)
    kept_tuples: int = 0
    shed_tuples: int = 0
    iterations: int = 0
    projected_sic: Dict[str, float] = field(default_factory=dict)

    @property
    def total_tuples(self) -> int:
        return self.kept_tuples + self.shed_tuples

    def kept_sic_per_query(self) -> Dict[str, float]:
        """Sum of the SIC values of kept batches, per query."""
        totals: Dict[str, float] = {}
        for batch in self.kept:
            totals[batch.query_id] = totals.get(batch.query_id, 0.0) + batch.sic
        return totals


def keep_all_decision(
    batches: Sequence[Batch], total_tuples: Optional[int] = None
) -> ShedDecision:
    """Build the "not overloaded: keep everything" decision.

    Shared by every shedder's underload early-exit.  ``total_tuples`` lets
    callers that already track the buffered tuple count (e.g.
    :class:`repro.federation.node.FspsNode`) skip the per-batch length sweep.
    """
    decision = ShedDecision()
    decision.kept = list(batches)
    if total_tuples is None:
        total_tuples = _total_tuples(batches)
    decision.kept_tuples = total_tuples
    return decision


@dataclass
class _QueryState:
    """Per-query working state during one selection round.

    ``pending`` is stored back-to-front (the next batch to consider is
    ``pending[-1]``) so consuming the head is an O(1) ``pop()``.  ``order`` is
    the query's insertion position, used to reproduce the buffer-order
    tie-breaking of the reference implementation; ``version`` invalidates
    stale heap entries after ``working_sic`` changes.
    """

    query_id: str
    working_sic: float
    pending: List[Batch]
    pending_sic: float = 0.0
    pending_tuples: int = 0
    order: int = 0
    version: int = 0


# Heap entries are ``(working_sic, order, version, state)``; ``order`` is
# unique per state so the comparison never reaches the state object.
_HeapEntry = PyTuple[float, int, int, _QueryState]


class BalanceSicPolicy:
    """Implementation of Algorithm 1's ``selectTuplesToKeep`` procedure."""

    def __init__(
        self,
        config: Optional[BalanceSicConfig] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.config = config or BalanceSicConfig()
        self.rng = rng or random.Random(0)

    # ------------------------------------------------------------------ public
    def select(
        self,
        batches: Sequence[Batch],
        capacity: int,
        reported_sic: Mapping[str, float],
        total_tuples: Optional[int] = None,
    ) -> ShedDecision:
        """Select which batches to keep given capacity ``c``.

        Args:
            batches: the content of the node's input buffer for this interval.
            capacity: the number of tuples the node can process (``c``).
            reported_sic: last known result SIC per query, as disseminated by
                the query coordinators (``updateSIC``).  Queries that have
                batches in the buffer but no reported value default to 0.
            total_tuples: optional precomputed total tuple count of
                ``batches`` (nodes track it incrementally); computed here when
                omitted.

        Returns:
            A :class:`ShedDecision` with the kept and shed batches.
        """
        if capacity < 0:
            raise ValueError(f"capacity must be non-negative, got {capacity}")

        decision = ShedDecision()
        states = self._initial_states(batches, reported_sic)
        if not states:
            return decision

        if total_tuples is None:
            total_tuples = _total_tuples(batches)
        if total_tuples <= capacity:
            # Not overloaded: keep everything (the node only sheds when the
            # buffer exceeds its capacity, §6 "Overload detection").
            decision = keep_all_decision(batches, total_tuples)
            decision.projected_sic = {
                s.query_id: s.working_sic + s.pending_sic
                for s in states.values()
            }
            return decision

        eps = self.config.epsilon
        allow_split = self.config.allow_batch_splitting
        remaining = capacity

        pending_heap: List[_HeapEntry] = []
        target_heap: List[_HeapEntry] = []
        for s in states.values():
            entry = (s.working_sic, s.order, s.version, s)
            target_heap.append(entry)
            if s.pending:
                pending_heap.append(entry)
        heapq.heapify(pending_heap)
        heapq.heapify(target_heap)
        # Entries whose SIC sits within epsilon of the current reference: they
        # are no target now but could become one if the reference dips (tied
        # picks can lower it by up to epsilon), so they are parked instead of
        # dropped and re-inserted on the rare reference decrease.
        parked: List[_HeapEntry] = []
        last_ref: Optional[float] = None

        while remaining > 0:
            q_prime = self._pop_min_pending(pending_heap)
            if q_prime is None:
                break
            decision.iterations += 1

            ref = q_prime.working_sic
            if last_ref is not None and ref < last_ref and parked:
                for entry in parked:
                    heapq.heappush(target_heap, entry)
                parked.clear()
            last_ref = ref
            target = self._peek_target(target_heap, parked, ref)

            pending = q_prime.pending
            accepted_any = False
            while pending and remaining > 0:
                working = q_prime.working_sic
                if target is not None and working >= target - eps:
                    break
                batch = pending[-1]
                # Take only as many tuples as needed to reach the target
                # (line 15-16 of Algorithm 1): if accepting the whole batch
                # would overshoot q'', split it at the required tuple count.
                if (
                    target is not None
                    and allow_split
                    and len(batch) > 1
                    and batch.sic > 0
                ):
                    deficit = target - working
                    per_tuple = batch.sic / len(batch)
                    needed = (
                        int(-(-deficit // per_tuple))
                        if per_tuple > 0
                        else len(batch)
                    )
                    if 0 < needed < len(batch):
                        head, tail = batch.split(needed)
                        pending[-1] = tail
                        pending.append(head)
                        batch = head
                size = len(batch)
                if size <= remaining:
                    pending.pop()
                    decision.kept.append(batch)
                    decision.kept_tuples += size
                    remaining -= size
                    q_prime.working_sic += batch.sic
                    q_prime.pending_tuples -= size
                    accepted_any = True
                elif allow_split and remaining > 0:
                    kept_part, rest = batch.split(remaining)
                    pending[-1] = rest
                    decision.kept.append(kept_part)
                    decision.kept_tuples += len(kept_part)
                    q_prime.working_sic += kept_part.sic
                    q_prime.pending_tuples -= len(kept_part)
                    remaining = 0
                    accepted_any = True
                else:
                    remaining = 0
                    break
                if target is None and accepted_any:
                    # All queries tied: accept a single batch then re-evaluate,
                    # matching iteration 5 of the paper's Figure 3 example.
                    break

            if not accepted_any:
                # The minimum-SIC query could not accept anything (e.g. its
                # next batch does not fit and splitting is disabled); drop its
                # pending tuples into the shed set to guarantee progress.
                pending.reverse()
                decision.shed.extend(pending)
                decision.shed_tuples += q_prime.pending_tuples
                q_prime.pending = []
                q_prime.pending_tuples = 0
            else:
                q_prime.version += 1
                entry = (
                    q_prime.working_sic,
                    q_prime.order,
                    q_prime.version,
                    q_prime,
                )
                heapq.heappush(target_heap, entry)
                if q_prime.pending:
                    heapq.heappush(pending_heap, entry)

        # Whatever was not selected is shed (Algorithm 1, line 7).  Batches
        # split along the way leave their unkept remainder in the pending
        # lists, so the pending lists are exactly the shed set.
        for state in states.values():
            if state.pending:
                state.pending.reverse()
                decision.shed.extend(state.pending)
                decision.shed_tuples += state.pending_tuples
        decision.projected_sic = {
            s.query_id: s.working_sic for s in states.values()
        }
        return decision

    # ----------------------------------------------------------------- helpers
    def _initial_states(
        self,
        batches: Sequence[Batch],
        reported_sic: Mapping[str, float],
    ) -> Dict[str, _QueryState]:
        per_query: Dict[str, List[Batch]] = {}
        for batch in batches:
            per_query.setdefault(batch.query_id, []).append(batch)

        states: Dict[str, _QueryState] = {}
        order = 0
        use_projection = self.config.use_projection
        for query_id, pending in per_query.items():
            self._order_pending(pending)
            pending_sic = 0.0
            pending_tuples = 0
            for b in pending:
                pending_sic += b.sic
                pending_tuples += len(b)
            reported = float(reported_sic.get(query_id, 0.0))
            if use_projection:
                working = max(0.0, reported - pending_sic)
            else:
                working = reported
            pending.reverse()
            states[query_id] = _QueryState(
                query_id=query_id,
                working_sic=working,
                pending=pending,
                pending_sic=pending_sic,
                pending_tuples=pending_tuples,
                order=order,
            )
            order += 1
        # Queries known to the node (via the coordinator) but without buffered
        # tuples still participate as comparison points for q''.
        for query_id, value in reported_sic.items():
            if query_id not in states:
                states[query_id] = _QueryState(
                    query_id=query_id,
                    working_sic=float(value),
                    pending=[],
                    order=order,
                )
                order += 1
        return states

    def _order_pending(self, pending: List[Batch]) -> None:
        strategy = self.config.selection_strategy
        if strategy == SelectionStrategy.HIGHEST_SIC:
            pending.sort(key=lambda b: b.sic, reverse=True)
        elif strategy == SelectionStrategy.LOWEST_SIC:
            pending.sort(key=lambda b: b.sic)
        else:
            self.rng.shuffle(pending)

    def _pop_min_pending(
        self, pending_heap: List[_HeapEntry]
    ) -> Optional[_QueryState]:
        """Pop the minimum-SIC query with pending batches (``q'``).

        Queries whose working SIC is within epsilon of the minimum are tied;
        the winner is drawn with the same ``rng.choice`` over the tied queries
        in buffer order as the reference implementation, and the losers are
        pushed back.
        """
        eps = self.config.epsilon
        while pending_heap:
            sic, _order, version, state = pending_heap[0]
            if version != state.version or not state.pending:
                heapq.heappop(pending_heap)
                continue
            break
        if not pending_heap:
            return None
        minimum = pending_heap[0][0]
        tied: List[_HeapEntry] = [heapq.heappop(pending_heap)]
        while pending_heap:
            sic, _order, version, state = pending_heap[0]
            if version != state.version or not state.pending:
                heapq.heappop(pending_heap)
                continue
            if sic <= minimum + eps:
                tied.append(heapq.heappop(pending_heap))
            else:
                break
        if len(tied) == 1:
            return tied[0][3]
        tied.sort(key=lambda e: e[1])
        chosen = self.rng.choice(tied)
        for entry in tied:
            if entry is not chosen:
                heapq.heappush(pending_heap, entry)
        return chosen[3]

    def _peek_target(
        self,
        target_heap: List[_HeapEntry],
        parked: List[_HeapEntry],
        reference: float,
    ) -> Optional[float]:
        """The next-lowest SIC value strictly above ``reference`` (``q''``).

        Entries at or below the reference can never become targets again
        (the reference never decreases by more than epsilon between
        iterations, because ties span at most epsilon), so they are popped
        for good; entries within ``(reference, reference + epsilon]`` are
        parked and restored by the caller if the reference ever dips.
        """
        eps = self.config.epsilon
        threshold = reference + eps
        while target_heap:
            sic, _order, version, state = target_heap[0]
            if version != state.version:
                heapq.heappop(target_heap)
                continue
            if sic > threshold:
                return sic
            entry = heapq.heappop(target_heap)
            if sic > reference:
                parked.append(entry)
        return None
