"""Source information content (SIC) assignment and propagation (§4).

The SIC metric quantifies, in a query-independent way, how much of the source
data actually contributed to a query result:

* Equation (1): a source tuple from source ``s`` is worth
  ``1 / (|T_s^S| * |S|)`` where ``|T_s^S|`` is the number of tuples the source
  produces during a source time window (STW) and ``|S|`` is the number of
  sources feeding the query.
* Equation (3): an operator that atomically consumes a set of input tuples and
  emits ``k`` output tuples divides the summed input SIC equally across the
  ``k`` outputs.
* Equations (2)/(4): the query result SIC over a STW is the sum of the SIC
  values of the result tuples emitted during that STW; it is 1 for perfect
  processing and falls towards 0 as tuples are shed.

Source rates are generally unknown and time-varying, so THEMIS estimates
``|T_s^S|`` online from the observed arrivals over a sliding STW
(Assumption 2, §6).  :class:`SourceRateEstimator` implements that estimation
and :class:`SicAssigner` stamps source tuples accordingly.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, List, Optional, Sequence

from .tuples import Tuple

try:  # Guarded: the SIC model works without NumPy (list columnar backend).
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only on stripped installs
    _np = None

__all__ = [
    "source_tuple_sic",
    "propagate_sic",
    "query_result_sic",
    "SourceRateEstimator",
    "SicAssigner",
]


def source_tuple_sic(tuples_per_stw: float, num_sources: int) -> float:
    """Return the SIC value of one source tuple (Equation 1).

    Args:
        tuples_per_stw: number of tuples the source emits during one STW
            (``|T_s^S|``).  Fractional values are accepted because the online
            estimator works with average rates.
        num_sources: number of sources feeding the query (``|S|``).

    Raises:
        ValueError: if either argument is not positive.
    """
    if tuples_per_stw <= 0:
        raise ValueError(f"tuples_per_stw must be positive, got {tuples_per_stw}")
    if num_sources <= 0:
        raise ValueError(f"num_sources must be positive, got {num_sources}")
    return 1.0 / (tuples_per_stw * num_sources)


def propagate_sic(input_sics: Sequence[float], num_outputs: int) -> List[float]:
    """Distribute input SIC across operator outputs (Equation 3).

    The summed SIC of the atomically-processed input set is divided equally
    over the ``num_outputs`` derived tuples.  When an operator emits no tuples
    (e.g. a filter discarding its whole window) the SIC is lost, exactly as in
    the paper's model, and an empty list is returned.
    """
    if num_outputs < 0:
        raise ValueError(f"num_outputs must be non-negative, got {num_outputs}")
    if num_outputs == 0:
        return []
    total = float(sum(input_sics))
    share = total / num_outputs
    return [share] * num_outputs


def query_result_sic(result_tuple_sics: Iterable[float]) -> float:
    """Return the query result SIC over one STW (Equation 4)."""
    return float(sum(result_tuple_sics))


class _RunBucket:
    """A nondecreasing run of single-tuple arrivals, held as one array.

    Equivalent to the ``[t, 1]`` pair buckets rows ``lo:hi`` of
    ``timestamps`` would expand to — the estimate reads only the window
    edges and the total, and expiry advances ``lo`` (one ``np.searchsorted``
    instead of per-pair pops).  The array is the source block's timestamp
    column, shared zero-copy: columns are rebind-only, so holding the
    reference is safe.
    """

    __slots__ = ("timestamps", "lo", "hi")

    def __init__(self, timestamps, lo: int, hi: int) -> None:
        self.timestamps = timestamps
        self.lo = lo
        self.hi = hi


@dataclass
class _SourceWindow:
    """Arrival bookkeeping for one source over a sliding STW.

    Arrivals are aggregated into ``[timestamp, count]`` buckets (one bucket
    per distinct timestamp) instead of one deque entry per tuple, with the
    total count maintained alongside, so recording ``count=k`` arrivals and
    expiring old ones are O(1) amortized regardless of ``k``.  Array-backed
    runs enter as :class:`_RunBucket` entries — one deque slot per source
    block instead of one per tuple.
    """

    buckets: Deque[object]
    total: int
    last_estimate: float
    seeded: Optional[float] = None


class SourceRateEstimator:
    """Online estimator of per-source tuple counts over a sliding STW.

    THEMIS does not assume source rates are known a-priori; it observes
    arrivals and estimates ``|T_s^S|`` per source over the last STW seconds.
    Until a full STW of history has accumulated, the observed count is scaled
    up by ``STW / observed-span`` so the estimate converges to the true
    per-STW count from the very first batches (otherwise early tuples would be
    grossly over-valued and the result SIC would transiently exceed 1).  The
    estimator can also be *seeded* with a nominal rate, used while no arrivals
    at all have been observed.

    The estimate only depends on the arrival count and the first/last
    timestamps inside the window, both of which the aggregated buckets
    preserve exactly, so the bucketed bookkeeping returns bit-identical
    estimates to the per-tuple deque of
    :class:`repro.core._reference.ReferenceSourceRateEstimator`.
    """

    def __init__(self, stw_seconds: float, min_count: float = 1.0) -> None:
        if stw_seconds <= 0:
            raise ValueError(f"stw_seconds must be positive, got {stw_seconds}")
        self.stw_seconds = float(stw_seconds)
        self.min_count = float(min_count)
        self._windows: Dict[str, _SourceWindow] = {}

    def _window(self, source_id: str) -> _SourceWindow:
        window = self._windows.get(source_id)
        if window is None:
            window = _SourceWindow(
                buckets=deque(), total=0, last_estimate=self.min_count
            )
            self._windows[source_id] = window
        return window

    def seed_rate(self, source_id: str, tuples_per_second: float) -> None:
        """Seed the estimate for a source from a nominal per-second rate."""
        estimate = max(self.min_count, tuples_per_second * self.stw_seconds)
        window = self._window(source_id)
        window.last_estimate = estimate
        window.seeded = estimate

    def observe(self, source_id: str, timestamp: float, count: int = 1) -> None:
        """Record ``count`` arrivals from ``source_id`` at ``timestamp``.

        O(1) amortized in ``count``: arrivals sharing a timestamp merge into
        one bucket, expiry pops whole buckets (advancing run buckets in
        place), and the estimate refresh reads only the running total and the
        window edges — this is the hottest per-arrival path in the system.
        """
        window = self._windows.get(source_id)
        if window is None:
            window = _SourceWindow(
                buckets=deque(), total=0, last_estimate=self.min_count
            )
            self._windows[source_id] = window
        if count <= 0:
            # Nothing arrives, but (matching the reference estimator) the
            # window still expires against this timestamp and the estimate
            # refreshes; no bucket may be appended or the phantom timestamp
            # would stretch the observed span.
            self._expire_horizon(window, timestamp - self.stw_seconds)
            window.last_estimate = self._estimate(window)
            return
        buckets = window.buckets
        tail = buckets[-1] if buckets else None
        if tail is not None and type(tail) is list and tail[0] == timestamp:
            # Run buckets never merge: a same-timestamp arrival lands in its
            # own pair bucket, which (see observe_run) changes neither the
            # total nor the window edges nor any future expiry.
            tail[1] += count
        else:
            buckets.append([timestamp, count])
        total = window.total + count
        horizon = timestamp - self.stw_seconds
        head = buckets[0]
        if type(head) is not list:
            # Array-backed run buckets in the window: the general expiry
            # advances their cursors; off the inlined hot path.
            window.total = total
            self._expire_horizon(window, horizon)
            window.last_estimate = self._estimate(window)
            return
        # The bucket just touched carries `timestamp`, so the deque can never
        # empty inside this loop.
        while head[0] < horizon:
            total -= head[1]
            buckets.popleft()
            head = buckets[0]
            if type(head) is not list:
                window.total = total
                self._expire_horizon(window, horizon)
                window.last_estimate = self._estimate(window)
                return
        window.total = total

        # Estimate arithmetic inlined from :meth:`_estimate` — this is the
        # hottest per-arrival path in the system (head and the just-touched
        # tail are both pair buckets here).
        observed = float(total)
        span = buckets[-1][0] - head[0]
        if observed >= 2.0 and span > 0:
            stw = self.stw_seconds
            scale = stw / min(stw, span * observed / (observed - 1.0))
            estimate = observed * (scale if scale > 1.0 else 1.0)
        elif window.seeded is not None:
            estimate = window.seeded
        else:
            estimate = observed
        min_count = self.min_count
        window.last_estimate = estimate if estimate > min_count else min_count

    def observe_run(self, source_id: str, timestamps: Sequence[float]) -> None:
        """Record a *nondecreasing* run of single-tuple arrivals in one shot.

        Produces the same estimates as :meth:`observe_many` — now and on
        every future call — but appends the whole run with one ``extend``
        and expires the window once against the final horizon:

        * expiring per arrival (``observe_many``) pops only buckets below
          ``ts_i - stw``; with nondecreasing timestamps every intermediate
          horizon is ``<=`` the final one, so the surviving buckets and the
          running total after the run are identical either way;
        * equal consecutive timestamps end up in separate ``[t, 1]`` buckets
          instead of one merged ``[t, k]`` bucket, which changes neither the
          total nor the window edges (the only inputs to ``_estimate``) nor
          any future expiry (whole-bucket pops keyed on the timestamp).

        Array-backed runs (the columnar v2 fast path) are O(1): the run
        enters the window as one :class:`_RunBucket` sharing the block's
        timestamp array zero-copy — behaviourally identical to the expanded
        ``[t, 1]`` pairs, which only ever influence the estimate through the
        total and the window edges — with elements already past the run's own
        horizon trimmed up front by one ``np.searchsorted`` (they would be
        appended and immediately popped by the expiry loop).

        This is the source-batch fast path: generated timestamps are strictly
        increasing within a batch and across batches of one source.
        """
        if _np is not None and isinstance(timestamps, _np.ndarray):
            n = len(timestamps)
            if n == 0:
                return
            window = self._window(source_id)
            horizon = float(timestamps[-1]) - self.stw_seconds
            keep_from = int(_np.searchsorted(timestamps, horizon, side="left"))
            window.buckets.append(_RunBucket(timestamps, keep_from, n))
            window.total += n - keep_from
            self._expire_horizon(window, horizon)
            window.last_estimate = self._estimate(window)
            return
        if not timestamps:
            return
        window = self._window(source_id)
        window.buckets.extend([t, 1] for t in timestamps)
        window.total += len(timestamps)
        self._expire_horizon(window, timestamps[-1] - self.stw_seconds)
        window.last_estimate = self._estimate(window)

    def observe_many(self, source_id: str, timestamps: Iterable[float]) -> None:
        """Record one arrival per timestamp, re-estimating once at the end.

        Equivalent to calling :meth:`observe` for each timestamp in order —
        buckets are appended and expired per arrival so out-of-order
        timestamps behave identically — but with the per-call overhead
        (window lookup, estimate refresh) paid once per batch.
        """
        window = self._window(source_id)
        buckets = window.buckets
        horizon_gap = self.stw_seconds
        for timestamp in timestamps:
            tail = buckets[-1] if buckets else None
            if tail is not None and type(tail) is list and tail[0] == timestamp:
                tail[1] += 1
            else:
                buckets.append([timestamp, 1])
            window.total += 1
            self._expire_horizon(window, timestamp - horizon_gap)
        window.last_estimate = self._estimate(window)

    def _estimate(self, window: _SourceWindow) -> float:
        observed = float(window.total)
        if observed == 0:
            if window.seeded is not None:
                return window.seeded
            return self.min_count
        buckets = window.buckets
        head = buckets[0]
        tail = buckets[-1]
        head_t = head.timestamps[head.lo] if type(head) is _RunBucket else head[0]
        tail_t = tail.timestamps[tail.hi - 1] if type(tail) is _RunBucket else tail[0]
        span = tail_t - head_t
        if observed >= 2 and span > 0:
            # Scale the partially observed window up to a full STW; once a
            # full STW of history exists the scale factor tends to 1.
            scale = self.stw_seconds / min(self.stw_seconds, span * observed / (observed - 1))
            estimate = observed * max(1.0, scale)
        elif window.seeded is not None:
            estimate = window.seeded
        else:
            estimate = observed
        return float(max(self.min_count, estimate))

    def tuples_per_stw(self, source_id: str) -> float:
        """Return the current estimate of ``|T_s^S|`` for ``source_id``."""
        window = self._windows.get(source_id)
        if window is None:
            return self.min_count
        return window.last_estimate

    # ------------------------------------------------------ checkpoint/restore
    def snapshot(self) -> Dict[str, object]:
        """Serialise the per-source arrival windows and estimates.

        The bucket contents, running totals and last estimates are recorded
        verbatim, so a restored estimator returns bit-identical estimates —
        now and after any future arrivals — to the original.  Run buckets
        expand into the ``[t, 1]`` pairs they stand for (the two forms are
        behaviourally identical), keeping the checkpoint layout stable.
        """
        return {
            "stw_seconds": self.stw_seconds,
            "min_count": self.min_count,
            "windows": {
                source_id: {
                    "buckets": [
                        pair
                        for bucket in window.buckets
                        for pair in (
                            [
                                [t, 1]
                                for t in bucket.timestamps[
                                    bucket.lo:bucket.hi
                                ].tolist()
                            ]
                            if type(bucket) is _RunBucket
                            else [list(bucket)]
                        )
                    ],
                    "total": window.total,
                    "last_estimate": window.last_estimate,
                    "seeded": window.seeded,
                }
                for source_id, window in self._windows.items()
            },
        }

    def restore(self, state: Dict[str, object]) -> None:
        """Rebuild the estimator from :meth:`snapshot` output."""
        if (
            state["stw_seconds"] != self.stw_seconds
            or state["min_count"] != self.min_count
        ):
            raise ValueError(
                f"estimator checkpoint (stw={state['stw_seconds']}, "
                f"min={state['min_count']}) does not match estimator "
                f"(stw={self.stw_seconds}, min={self.min_count})"
            )
        self._windows = {
            source_id: _SourceWindow(
                buckets=deque([t, c] for t, c in window["buckets"]),
                total=window["total"],
                last_estimate=window["last_estimate"],
                seeded=window["seeded"],
            )
            for source_id, window in state["windows"].items()
        }

    def known_sources(self) -> List[str]:
        return list(self._windows)

    def _expire(self, window: _SourceWindow, now: float) -> None:
        self._expire_horizon(window, now - self.stw_seconds)

    @staticmethod
    def _expire_horizon(window: _SourceWindow, horizon: float) -> None:
        """Drop every arrival strictly below ``horizon`` from the front.

        Pair buckets pop whole; run buckets advance their ``lo`` cursor with
        one binary search — both remove exactly the arrivals the expanded
        per-pair deque would, in the same front-to-back order.
        """
        buckets = window.buckets
        while buckets:
            head = buckets[0]
            if type(head) is _RunBucket:
                timestamps = head.timestamps
                if timestamps[head.hi - 1] < horizon:
                    window.total -= head.hi - head.lo
                    buckets.popleft()
                    continue
                if timestamps[head.lo] < horizon:
                    new_lo = head.lo + int(
                        _np.searchsorted(
                            timestamps[head.lo:head.hi], horizon, side="left"
                        )
                    )
                    window.total -= new_lo - head.lo
                    head.lo = new_lo
                break
            if head[0] < horizon:
                window.total -= head[1]
                buckets.popleft()
                continue
            break


class SicAssigner:
    """Stamps source tuples with SIC values for one query.

    The assigner knows how many sources feed the query (``|S|`` is fixed per
    query, §6) and uses a :class:`SourceRateEstimator` to track per-source
    arrival counts over the sliding STW.
    """

    def __init__(
        self,
        query_id: str,
        num_sources: int,
        stw_seconds: float,
        nominal_rates: Optional[Dict[str, float]] = None,
    ) -> None:
        if num_sources <= 0:
            raise ValueError(f"num_sources must be positive, got {num_sources}")
        self.query_id = query_id
        self.num_sources = int(num_sources)
        self.estimator = SourceRateEstimator(stw_seconds)
        for source_id, rate in (nominal_rates or {}).items():
            self.estimator.seed_rate(source_id, rate)

    def assign(self, tuples: Sequence[Tuple]) -> List[Tuple]:
        """Assign SIC values in place and return the same tuples.

        Arrivals are first recorded so that the estimate reflects the batch
        being stamped, then every tuple receives
        ``1 / (estimate(source) * |S|)``.  Consecutive same-source runs are
        ingested with one estimator call, and the per-tuple SIC value is
        computed once per distinct source instead of once per tuple.
        """
        run_source: Optional[str] = None
        run_timestamps: List[float] = []
        for t in tuples:
            source = t.source_id or "__anonymous__"
            if source != run_source:
                if run_timestamps:
                    self.estimator.observe_many(run_source, run_timestamps)
                run_source = source
                run_timestamps = []
            run_timestamps.append(t.timestamp)
        if run_timestamps:
            self.estimator.observe_many(run_source, run_timestamps)

        sic_per_source: Dict[str, float] = {}
        for t in tuples:
            source = t.source_id or "__anonymous__"
            sic = sic_per_source.get(source)
            if sic is None:
                per_stw = self.estimator.tuples_per_stw(source)
                sic = source_tuple_sic(per_stw, self.num_sources)
                sic_per_source[source] = sic
            t.sic = sic
        return list(tuples)

    def assign_block(self, block) -> "object":
        """Columnar :meth:`assign`: stamp a single-source ``ColumnBlock``.

        Source blocks carry one source by construction, so the whole
        timestamp column is ingested as one estimator run and the SIC column
        becomes ``[1 / (estimate * |S|)] * len`` — the same values
        :meth:`assign` writes tuple-by-tuple on the materialized batch.
        """
        source = block.source_id or "__anonymous__"
        timestamps = block.timestamps
        if len(timestamps):
            self.estimator.observe_run(source, timestamps)
        per_stw = self.estimator.tuples_per_stw(source)
        sic = source_tuple_sic(per_stw, self.num_sources)
        # Constant column in the block's own backing (ndarray or list).
        block.sics = block.constant_sics(sic)
        return block

    def sic_for(self, source_id: str) -> float:
        """Return the SIC value a new tuple from ``source_id`` would receive."""
        per_stw = self.estimator.tuples_per_stw(source_id)
        return source_tuple_sic(per_stw, self.num_sources)

    # ------------------------------------------------------ checkpoint/restore
    def snapshot(self) -> Dict[str, object]:
        """Serialise the assigner: query identity plus the estimator state."""
        return {
            "query_id": self.query_id,
            "num_sources": self.num_sources,
            "estimator": self.estimator.snapshot(),
        }

    def restore(self, state: Dict[str, object]) -> None:
        """Rebuild the assigner from :meth:`snapshot` output."""
        if (
            state["query_id"] != self.query_id
            or state["num_sources"] != self.num_sources
        ):
            raise ValueError(
                f"assigner checkpoint for {state['query_id']!r} "
                f"({state['num_sources']} sources) does not match "
                f"{self.query_id!r} ({self.num_sources} sources)"
            )
        self.estimator.restore(state["estimator"])
