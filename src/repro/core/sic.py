"""Source information content (SIC) assignment and propagation (§4).

The SIC metric quantifies, in a query-independent way, how much of the source
data actually contributed to a query result:

* Equation (1): a source tuple from source ``s`` is worth
  ``1 / (|T_s^S| * |S|)`` where ``|T_s^S|`` is the number of tuples the source
  produces during a source time window (STW) and ``|S|`` is the number of
  sources feeding the query.
* Equation (3): an operator that atomically consumes a set of input tuples and
  emits ``k`` output tuples divides the summed input SIC equally across the
  ``k`` outputs.
* Equations (2)/(4): the query result SIC over a STW is the sum of the SIC
  values of the result tuples emitted during that STW; it is 1 for perfect
  processing and falls towards 0 as tuples are shed.

Source rates are generally unknown and time-varying, so THEMIS estimates
``|T_s^S|`` online from the observed arrivals over a sliding STW
(Assumption 2, §6).  :class:`SourceRateEstimator` implements that estimation
and :class:`SicAssigner` stamps source tuples accordingly.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, List, Optional, Sequence, Tuple as PyTuple

from .tuples import Tuple

__all__ = [
    "source_tuple_sic",
    "propagate_sic",
    "query_result_sic",
    "SourceRateEstimator",
    "SicAssigner",
]


def source_tuple_sic(tuples_per_stw: float, num_sources: int) -> float:
    """Return the SIC value of one source tuple (Equation 1).

    Args:
        tuples_per_stw: number of tuples the source emits during one STW
            (``|T_s^S|``).  Fractional values are accepted because the online
            estimator works with average rates.
        num_sources: number of sources feeding the query (``|S|``).

    Raises:
        ValueError: if either argument is not positive.
    """
    if tuples_per_stw <= 0:
        raise ValueError(f"tuples_per_stw must be positive, got {tuples_per_stw}")
    if num_sources <= 0:
        raise ValueError(f"num_sources must be positive, got {num_sources}")
    return 1.0 / (tuples_per_stw * num_sources)


def propagate_sic(input_sics: Sequence[float], num_outputs: int) -> List[float]:
    """Distribute input SIC across operator outputs (Equation 3).

    The summed SIC of the atomically-processed input set is divided equally
    over the ``num_outputs`` derived tuples.  When an operator emits no tuples
    (e.g. a filter discarding its whole window) the SIC is lost, exactly as in
    the paper's model, and an empty list is returned.
    """
    if num_outputs < 0:
        raise ValueError(f"num_outputs must be non-negative, got {num_outputs}")
    if num_outputs == 0:
        return []
    total = float(sum(input_sics))
    share = total / num_outputs
    return [share] * num_outputs


def query_result_sic(result_tuple_sics: Iterable[float]) -> float:
    """Return the query result SIC over one STW (Equation 4)."""
    return float(sum(result_tuple_sics))


@dataclass
class _SourceWindow:
    """Arrival bookkeeping for one source over a sliding STW."""

    timestamps: Deque[float]
    last_estimate: float
    seeded: Optional[float] = None


class SourceRateEstimator:
    """Online estimator of per-source tuple counts over a sliding STW.

    THEMIS does not assume source rates are known a-priori; it observes
    arrivals and estimates ``|T_s^S|`` per source over the last STW seconds.
    Until a full STW of history has accumulated, the observed count is scaled
    up by ``STW / observed-span`` so the estimate converges to the true
    per-STW count from the very first batches (otherwise early tuples would be
    grossly over-valued and the result SIC would transiently exceed 1).  The
    estimator can also be *seeded* with a nominal rate, used while no arrivals
    at all have been observed.
    """

    def __init__(self, stw_seconds: float, min_count: float = 1.0) -> None:
        if stw_seconds <= 0:
            raise ValueError(f"stw_seconds must be positive, got {stw_seconds}")
        self.stw_seconds = float(stw_seconds)
        self.min_count = float(min_count)
        self._windows: Dict[str, _SourceWindow] = {}

    def seed_rate(self, source_id: str, tuples_per_second: float) -> None:
        """Seed the estimate for a source from a nominal per-second rate."""
        estimate = max(self.min_count, tuples_per_second * self.stw_seconds)
        window = self._windows.setdefault(
            source_id, _SourceWindow(timestamps=deque(), last_estimate=estimate)
        )
        window.last_estimate = estimate
        window.seeded = estimate

    def observe(self, source_id: str, timestamp: float, count: int = 1) -> None:
        """Record ``count`` arrivals from ``source_id`` at ``timestamp``."""
        window = self._windows.setdefault(
            source_id,
            _SourceWindow(timestamps=deque(), last_estimate=self.min_count),
        )
        for _ in range(count):
            window.timestamps.append(timestamp)
        self._expire(window, timestamp)
        window.last_estimate = self._estimate(window)

    def _estimate(self, window: _SourceWindow) -> float:
        timestamps = window.timestamps
        observed = float(len(timestamps))
        if observed == 0:
            if window.seeded is not None:
                return window.seeded
            return self.min_count
        span = timestamps[-1] - timestamps[0]
        if observed >= 2 and span > 0:
            # Scale the partially observed window up to a full STW; once a
            # full STW of history exists the scale factor tends to 1.
            scale = self.stw_seconds / min(self.stw_seconds, span * observed / (observed - 1))
            estimate = observed * max(1.0, scale)
        elif window.seeded is not None:
            estimate = window.seeded
        else:
            estimate = observed
        return max(self.min_count, estimate)

    def tuples_per_stw(self, source_id: str) -> float:
        """Return the current estimate of ``|T_s^S|`` for ``source_id``."""
        window = self._windows.get(source_id)
        if window is None:
            return self.min_count
        return window.last_estimate

    def known_sources(self) -> List[str]:
        return list(self._windows)

    def _expire(self, window: _SourceWindow, now: float) -> None:
        horizon = now - self.stw_seconds
        timestamps = window.timestamps
        while timestamps and timestamps[0] < horizon:
            timestamps.popleft()


class SicAssigner:
    """Stamps source tuples with SIC values for one query.

    The assigner knows how many sources feed the query (``|S|`` is fixed per
    query, §6) and uses a :class:`SourceRateEstimator` to track per-source
    arrival counts over the sliding STW.
    """

    def __init__(
        self,
        query_id: str,
        num_sources: int,
        stw_seconds: float,
        nominal_rates: Optional[Dict[str, float]] = None,
    ) -> None:
        if num_sources <= 0:
            raise ValueError(f"num_sources must be positive, got {num_sources}")
        self.query_id = query_id
        self.num_sources = int(num_sources)
        self.estimator = SourceRateEstimator(stw_seconds)
        for source_id, rate in (nominal_rates or {}).items():
            self.estimator.seed_rate(source_id, rate)

    def assign(self, tuples: Sequence[Tuple]) -> List[Tuple]:
        """Assign SIC values in place and return the same tuples.

        Arrivals are first recorded so that the estimate reflects the batch
        being stamped, then every tuple receives
        ``1 / (estimate(source) * |S|)``.
        """
        for t in tuples:
            source = t.source_id or "__anonymous__"
            self.estimator.observe(source, t.timestamp)
        for t in tuples:
            source = t.source_id or "__anonymous__"
            per_stw = self.estimator.tuples_per_stw(source)
            t.sic = source_tuple_sic(per_stw, self.num_sources)
        return list(tuples)

    def sic_for(self, source_id: str) -> float:
        """Return the SIC value a new tuple from ``source_id`` would receive."""
        per_stw = self.estimator.tuples_per_stw(source_id)
        return source_tuple_sic(per_stw, self.num_sources)
