"""Inter-site network model.

FSPS sites belong to different administrative domains and are connected by a
network whose latencies matter for two things: the delivery of data batches
between fragments placed on different nodes, and the delivery of the query
coordinators' result-SIC updates (``updateSIC``).  The paper evaluates a LAN
setting (5 ms between Emulab nodes) and an emulated wide-area setting (50 ms,
§7.4); this module provides the corresponding latency models and an in-flight
message queue with deterministic delivery order.

On top of the latency model the network optionally runs a **reliable delivery
channel** for data and result messages (``ReliabilityConfig``): per-link
sequence numbers, receiver-side in-order dedup, acks travelling back through
the same lossy network, and timeout-based retransmission with exponential
backoff from a bounded per-link buffer.  ``updateSIC`` and heartbeat messages
stay best-effort fire-and-forget, matching the paper's 30-byte ``updateSIC``
semantics — under a partition nodes simply shed with stale SIC until
dissemination resumes.

Faults are injected through two transport hooks kept deliberately narrow so
the fault subsystem (:mod:`repro.faults`) stays decoupled:

* ``fault_policy(message, source, destination, sent_at, latency)`` returns
  the list of delivery times for one physical transmission — empty to drop
  it, more than one entry to duplicate it, jittered values to delay it.
* ``dead_endpoints`` — endpoints whose inbound and outbound transmissions
  are discarded (crashed processes); retransmission keeps retrying into the
  void, so a repaired endpoint receives the backlog exactly once.

With both hooks unset and reliability disabled the behaviour is identical to
the latency-only network.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple as PyTuple

from ..core.tuples import Batch

__all__ = [
    "Message",
    "DataMessage",
    "SicUpdateMessage",
    "ResultMessage",
    "HeartbeatMessage",
    "AckMessage",
    "LatencyModel",
    "UniformLatency",
    "LatencyMatrix",
    "ReliabilityConfig",
    "NetworkStats",
    "Network",
    "LAN_LATENCY_SECONDS",
    "WAN_LATENCY_SECONDS",
]

LAN_LATENCY_SECONDS = 0.005
WAN_LATENCY_SECONDS = 0.050

# A link is a directed (source endpoint, destination endpoint) pair; the
# reliable channel keeps its sequence numbers, retransmit buffers and
# receiver-side dedup state per link.
Link = PyTuple[str, str]

FaultPolicy = Callable[["Message", str, str, float, float], Sequence[float]]


@dataclass
class Message:
    """Base class of all network messages."""

    destination: str

    #: Counter key used by the per-message-type accounting.
    kind = "message"

    def size_bytes(self) -> int:
        return 0


@dataclass
class DataMessage(Message):
    """A batch of tuples travelling towards the node hosting a fragment."""

    batch: Batch = None  # type: ignore[assignment]
    target_fragment_id: str = ""

    kind = "data"

    def size_bytes(self) -> int:
        # payload_bytes is O(1) for columnar batches (uniform schema) and
        # equals the per-tuple sum(len(t.values) * 8) accounting exactly.
        return self.batch.payload_bytes() + self.batch.meta_data_bytes()


@dataclass
class ResultMessage(Message):
    """Result batch travelling from a root fragment to its query coordinator."""

    batch: Batch = None  # type: ignore[assignment]

    kind = "result"

    def size_bytes(self) -> int:
        return self.batch.payload_bytes() + self.batch.meta_data_bytes()


@dataclass
class SicUpdateMessage(Message):
    """``updateSIC`` message from a query coordinator to a hosting node.

    The prototype uses 30-byte messages sent every shedding interval (§7.6).
    ``sent_at`` records the dissemination instant so the dispatcher can drop
    updates from a torn-down coordinator whose query id was since reused.
    """

    query_id: str = ""
    sic_value: float = 0.0
    sent_at: float = 0.0

    kind = "sic_update"

    def size_bytes(self) -> int:
        return 30


@dataclass
class HeartbeatMessage(Message):
    """Liveness beacon a node sends to the failure detector's endpoint.

    Best-effort like ``updateSIC``: a lost heartbeat is exactly what makes
    the failure detector suspect a node, so heartbeats must be subject to
    the same loss, delay and partition faults as everything else.
    """

    node_id: str = ""
    sent_at: float = 0.0

    kind = "heartbeat"

    def size_bytes(self) -> int:
        return 16


@dataclass
class AckMessage(Message):
    """Transport-level acknowledgement of one reliable-channel sequence number.

    Consumed by the :class:`Network` itself on delivery — never dispatched to
    the application — but it crosses the same lossy network as the payload it
    acknowledges, so a lost ack produces a retransmission the receiver must
    deduplicate.
    """

    link: Link = ("", "")
    seq: int = -1

    kind = "ack"

    def size_bytes(self) -> int:
        return 20


class LatencyModel:
    """Interface of latency models between named endpoints."""

    def latency(self, source: str, destination: str) -> float:
        raise NotImplementedError

    def min_latency(self) -> float:
        """Lower bound on the latency between any pair of *distinct* endpoints.

        The sharded runtime's conservative lookahead horizon: a shard may
        safely run ``min_latency`` seconds past the last cross-shard barrier
        because no boundary message can arrive sooner.  Same-endpoint
        traffic (latency 0) never crosses shards, so it does not bound the
        window.
        """
        raise NotImplementedError


class UniformLatency(LatencyModel):
    """A single latency between every pair of distinct endpoints."""

    def __init__(self, seconds: float = LAN_LATENCY_SECONDS) -> None:
        if seconds < 0:
            raise ValueError(f"latency must be non-negative, got {seconds}")
        self.seconds = float(seconds)

    def latency(self, source: str, destination: str) -> float:
        if source == destination:
            return 0.0
        return self.seconds

    def min_latency(self) -> float:
        return self.seconds


class LatencyMatrix(LatencyModel):
    """Per-pair latencies with a default for unspecified pairs."""

    def __init__(
        self,
        default_seconds: float = LAN_LATENCY_SECONDS,
        pairs: Optional[Dict[PyTuple[str, str], float]] = None,
    ) -> None:
        self.default_seconds = float(default_seconds)
        self._pairs: Dict[PyTuple[str, str], float] = dict(pairs or {})

    def set_latency(
        self,
        source: str,
        destination: str,
        seconds: float,
        symmetric: bool = True,
    ) -> None:
        """Set the latency of a pair; ``symmetric=False`` sets one direction.

        Asymmetric pairs model real federations where the administrative
        domains' uplinks and downlinks differ (e.g. a site behind a
        long-haul uplink replying over a local peering).
        """
        self._pairs[(source, destination)] = float(seconds)
        if symmetric:
            self._pairs[(destination, source)] = float(seconds)

    def latency(self, source: str, destination: str) -> float:
        if source == destination:
            return 0.0
        return self._pairs.get((source, destination), self.default_seconds)

    def min_latency(self) -> float:
        if not self._pairs:
            return self.default_seconds
        return min(self.default_seconds, min(self._pairs.values()))


@dataclass
class ReliabilityConfig:
    """Tuning of the reliable delivery channel for data/result messages.

    The retransmission timeout of a message is
    ``max(min_rto_seconds, rto_rtt_multiplier * rtt)`` where ``rtt`` is the
    round-trip latency of its link at send time; with the multiplier above 1
    and no faults the ack always lands before the first timeout, so a
    fault-free run performs zero retransmissions.  Each retry multiplies the
    timeout by ``backoff_factor`` up to ``max_rto_seconds``; after
    ``max_retries`` unacknowledged attempts the message is *expired* —
    counted in :class:`NetworkStats`, never silently discarded.  The per-link
    retransmit buffer holds at most ``window`` unacknowledged messages;
    sends beyond it are likewise expired with accounting, so memory stays
    bounded no matter the loss rate.
    """

    window: int = 512
    min_rto_seconds: float = 0.05
    rto_rtt_multiplier: float = 2.0
    backoff_factor: float = 2.0
    max_rto_seconds: float = 2.0
    max_retries: int = 16

    def __post_init__(self) -> None:
        if self.window <= 0:
            raise ValueError(f"window must be positive, got {self.window}")
        if self.min_rto_seconds <= 0:
            raise ValueError(
                f"min_rto_seconds must be positive, got {self.min_rto_seconds}"
            )
        if self.rto_rtt_multiplier <= 1.0:
            raise ValueError(
                "rto_rtt_multiplier must exceed 1.0 so fault-free acks beat "
                f"the first timeout, got {self.rto_rtt_multiplier}"
            )
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be at least 1.0, got {self.backoff_factor}"
            )
        if self.max_rto_seconds < self.min_rto_seconds:
            raise ValueError("max_rto_seconds must be at least min_rto_seconds")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be non-negative, got {self.max_retries}")


class NetworkStats:
    """Per-message-type transport accounting.

    Every physical and logical event on the network increments exactly one
    counter, which is what makes the exactly-once ledger auditable: a sent
    message is eventually *delivered*, still *pending* (unacked or in
    flight), or *expired* — never silently lost.  Keys are message kinds
    (``"data"``, ``"result"``, ``"sic_update"``, ``"heartbeat"``, ``"ack"``).
    """

    def __init__(self) -> None:
        #: logical sends (one per ``Network.send`` call)
        self.sent: Dict[str, int] = {}
        #: unique messages handed to the application dispatcher
        self.delivered: Dict[str, int] = {}
        #: physical transmissions discarded by faults or dead endpoints
        self.dropped: Dict[str, int] = {}
        #: received copies suppressed by the reliable channel's dedup
        self.duplicates: Dict[str, int] = {}
        #: retransmission attempts performed by the reliable channel
        self.retransmits: Dict[str, int] = {}
        #: reliable messages abandoned (retries exhausted / window overflow)
        self.expired: Dict[str, int] = {}
        #: batch-tuple counts mirroring sent/delivered/expired for payloads
        self.tuples_sent: Dict[str, int] = {}
        self.tuples_delivered: Dict[str, int] = {}
        self.tuples_expired: Dict[str, int] = {}
        #: physical bytes put on the wire (includes retransmits, dups, acks)
        self.bytes_wire = 0
        #: acks emitted by receivers
        self.acks_sent = 0

    @staticmethod
    def _bump(counter: Dict[str, int], kind: str, amount: int = 1) -> None:
        counter[kind] = counter.get(kind, 0) + amount

    @staticmethod
    def _total(counter: Dict[str, int]) -> int:
        return sum(counter.values())

    def as_dict(self) -> Dict[str, object]:
        """A plain-dict summary for experiment reports and ``RunResult``."""
        return {
            "sent": dict(self.sent),
            "delivered": dict(self.delivered),
            "dropped": dict(self.dropped),
            "duplicates": dict(self.duplicates),
            "retransmits": dict(self.retransmits),
            "expired": dict(self.expired),
            "tuples_sent": dict(self.tuples_sent),
            "tuples_delivered": dict(self.tuples_delivered),
            "tuples_expired": dict(self.tuples_expired),
            "bytes_wire": self.bytes_wire,
            "acks_sent": self.acks_sent,
        }


class _PendingSend:
    """One unacknowledged reliable message in a sender's retransmit buffer."""

    __slots__ = ("message", "source", "attempts", "rto")

    def __init__(self, message: Message, source: str, rto: float) -> None:
        self.message = message
        self.source = source
        self.attempts = 0
        self.rto = rto


@dataclass(order=True)
class _InFlight:
    deliver_at: float
    # Tie-break for equal delivery times.  A plain int from the network's
    # monotonic counter by default (global transmit order); when a
    # ``sequence_hook`` is installed this is whatever the hook returns —
    # the sharded runtime supplies ``(send time, phase priority, sender
    # context rank, intra-context index)`` tuples, which encode the same
    # transmit order without depending on which shard transmitted first in
    # wall-clock terms.  A run uses one shape throughout, so comparisons
    # never mix int with tuple.
    sequence: object
    message: Optional[Message] = field(compare=False)
    # Reliable-channel routing of a payload copy (None for best-effort).
    link: Optional[Link] = field(compare=False, default=None)
    seq: Optional[int] = field(compare=False, default=None)
    # Internal control entry (retransmission timer); message is None.
    control: Optional[PyTuple[str, Link, int]] = field(compare=False, default=None)


class Network:
    """In-flight message queue with latency-based delivery times.

    Delivery is deterministic: messages are delivered ordered by delivery time
    and, for equal times, by send order.  The tie-break counter is
    per-instance, so back-to-back simulations in one process see identical
    orders regardless of how many runs executed before them.

    With ``reliability`` set, data and result messages travel over the
    reliable channel (sequence numbers, acks, retransmission, in-order
    receiver dedup); everything else stays fire-and-forget.
    """

    #: message kinds carried by the reliable channel when it is enabled
    RELIABLE_KINDS = ("data", "result")

    def __init__(
        self,
        latency_model: Optional[LatencyModel] = None,
        reliability: Optional[ReliabilityConfig] = None,
    ) -> None:
        self.latency_model = latency_model or UniformLatency()
        self.reliability = reliability
        self._queue: List[_InFlight] = []
        self._message_ids = itertools.count()
        self.sent_messages = 0
        self.delivered_messages = 0
        # Logical application payload bytes (excludes retransmissions,
        # duplicates and acks — see ``stats.bytes_wire`` for physical bytes).
        self.bytes_sent = 0
        self.bytes_delivered = 0
        self.stats = NetworkStats()
        # Optional hook invoked as ``send_listener(message, deliver_at)`` on
        # every transmission (``message`` is None for internal control
        # timers).  The discrete-event runtime uses it to schedule a delivery
        # event; the lockstep loop leaves it unset (it polls ``deliver_due``
        # at every tick instead).
        self.send_listener = None
        # Optional hook returning the ordering element used in place of the
        # monotonic transmit counter (see ``_InFlight.sequence``).  Installed
        # by the sharded runtime, which needs equal-time delivery order to be
        # a property of *what* was sent rather than of shard interleaving.
        self.sequence_hook: Optional[Callable[[], object]] = None
        # Shard-partitioned in-flight queues (see ``attach_shards``); None
        # when the network runs single-queue.
        self._shard_queues: Optional[List[List[_InFlight]]] = None
        self._shard_router: Optional[Callable[[_InFlight], int]] = None
        # Invoked as ``enqueue_listener(entry, shard)`` after an entry lands
        # on a shard queue; the sharded runtime schedules the matching
        # delivery event on the owning shard's scheduler from here.
        self.enqueue_listener: Optional[Callable[[_InFlight, int], None]] = None
        # Invoked as ``shard_sink(entry, shard)`` *before* an entry lands on
        # a shard queue; returning True consumes it (no local queue, no
        # enqueue listener).  Worker processes intercept traffic bound for
        # shards they do not own here (the boundary outbox).
        self.shard_sink: Optional[Callable[[_InFlight, int], bool]] = None
        # ``(deliver_at, sequence)`` of the in-flight entry currently being
        # processed by the delivery path, or None.  Sends performed while
        # processing a delivery (acks, placement forwards, retransmits) use
        # it as their ordering context under the sharded runtime.
        self.delivery_context: Optional[PyTuple[float, object]] = None
        # Fault hooks (see module docstring); both unset by default.
        self.fault_policy: Optional[FaultPolicy] = None
        self.dead_endpoints: Set[str] = set()
        # Reliable-channel state, all keyed per directed link.
        self._next_seq: Dict[Link, int] = {}
        self._unacked: Dict[Link, Dict[int, _PendingSend]] = {}
        self._recv_next: Dict[Link, int] = {}
        self._recv_buffer: Dict[Link, Dict[int, Message]] = {}

    # ------------------------------------------------------------------ sending
    def send(self, message: Message, sent_at: float, source: str) -> float:
        """Enqueue ``message`` and return its nominal delivery time."""
        kind = message.kind
        self.sent_messages += 1
        self.bytes_sent += message.size_bytes()
        self.stats._bump(self.stats.sent, kind)
        batch = getattr(message, "batch", None)
        if batch is not None:
            self.stats._bump(self.stats.tuples_sent, kind, len(batch))
        latency = self.latency_model.latency(source, message.destination)
        deliver_at = sent_at + latency
        if self.reliability is None or kind not in self.RELIABLE_KINDS:
            self._transmit(message, source, sent_at)
            return deliver_at
        link = (source, message.destination)
        if kind == "result":
            # Results from every query a node hosts share the coordinator
            # endpoint; giving each query its own reliable lane keeps a
            # link's in-order receive state on a single shard (deliveries of
            # result traffic drain on the query's home shard).  The real
            # endpoint names still drive latency, ack routing and
            # dead-endpoint checks.
            link = link + (message.batch.query_id,)
        pending = self._unacked.setdefault(link, {})
        if len(pending) >= self.reliability.window:
            # Bounded retransmit buffer: refuse the send with accounting —
            # a silent drop would defeat the exactly-once ledger.
            self._expire(message)
            return deliver_at
        seq = self._next_seq.get(link, 0)
        self._next_seq[link] = seq + 1
        rtt = latency + self.latency_model.latency(message.destination, source)
        rto = max(self.reliability.min_rto_seconds, rtt * self.reliability.rto_rtt_multiplier)
        pending[seq] = _PendingSend(message, source, rto)
        self._transmit(message, source, sent_at, link=link, seq=seq)
        self._push_control(("rtx", link, seq), sent_at + rto)
        return deliver_at

    def _transmit(
        self,
        message: Message,
        source: str,
        sent_at: float,
        link: Optional[Link] = None,
        seq: Optional[int] = None,
    ) -> None:
        """Put one physical copy of ``message`` on the wire (or drop it)."""
        destination = message.destination
        if source in self.dead_endpoints or destination in self.dead_endpoints:
            self.stats._bump(self.stats.dropped, message.kind)
            return
        latency = self.latency_model.latency(source, destination)
        if self.fault_policy is not None:
            times = self.fault_policy(message, source, destination, sent_at, latency)
        else:
            times = (sent_at + latency,)
        if not times:
            self.stats._bump(self.stats.dropped, message.kind)
            return
        for deliver_at in times:
            self.stats.bytes_wire += message.size_bytes()
            self._enqueue(
                _InFlight(deliver_at, self._next_sequence(), message, link, seq)
            )
            if self.send_listener is not None:
                self.send_listener(message, deliver_at)

    def _push_control(self, control: PyTuple[str, Link, int], at: float) -> None:
        self._enqueue(_InFlight(at, self._next_sequence(), None, control=control))
        if self.send_listener is not None:
            self.send_listener(None, at)

    def _next_sequence(self) -> object:
        if self.sequence_hook is not None:
            return self.sequence_hook()
        return next(self._message_ids)

    def _enqueue(self, entry: _InFlight) -> None:
        if self._shard_queues is not None:
            shard = self._shard_router(entry)
            if self.shard_sink is not None and self.shard_sink(entry, shard):
                return
            heapq.heappush(self._shard_queues[shard], entry)
            if self.enqueue_listener is not None:
                self.enqueue_listener(entry, shard)
        else:
            heapq.heappush(self._queue, entry)

    def _send_ack(self, link: Link, seq: int, now: float) -> None:
        # The ack crosses the network in the reverse direction and is subject
        # to the same faults as any other transmission.
        self.stats.acks_sent += 1
        ack = AckMessage(destination=link[0], link=link, seq=seq)
        self._transmit(ack, link[1], now)

    def _expire(self, message: Message) -> None:
        self.stats._bump(self.stats.expired, message.kind)
        batch = getattr(message, "batch", None)
        if batch is not None:
            self.stats._bump(self.stats.tuples_expired, message.kind, len(batch))

    # ------------------------------------------------------------------ sharding
    def attach_shards(
        self, num_shards: int, router: Callable[[_InFlight], int]
    ) -> None:
        """Partition the in-flight queue into per-shard FIFO heaps.

        ``router`` maps an in-flight entry to the shard that owns its
        *destination* (delivery side), so each shard drains exactly the
        traffic bound for its own endpoints via :meth:`deliver_due_shard`.
        Existing in-flight entries are re-routed into the shard queues.
        """
        if self._shard_queues is not None:
            raise RuntimeError("network already sharded")
        if num_shards <= 0:
            raise ValueError(f"num_shards must be positive, got {num_shards}")
        self._shard_router = router
        queues: List[List[_InFlight]] = [[] for _ in range(num_shards)]
        self._shard_queues = queues
        pending, self._queue = self._queue, []
        for entry in pending:
            heapq.heappush(queues[router(entry)], entry)

    def detach_shards(self) -> None:
        """Merge the shard queues back into the single global queue."""
        if self._shard_queues is None:
            return
        for queue in self._shard_queues:
            for entry in queue:
                heapq.heappush(self._queue, entry)
        self._shard_queues = None
        self._shard_router = None

    # ----------------------------------------------------------------- delivery
    def deliver_due(self, now: float) -> List[Message]:
        """Pop every entry due ``<= now``; return application-bound messages.

        Transport-internal traffic — acks, retransmission timers, duplicate
        and out-of-order copies — is consumed here and never reaches the
        dispatcher.  When the network is sharded this merges all shard
        queues back into the global ``(deliver_at, sequence)`` order (used
        by ``drain_network`` at collect time; the sharded run loop itself
        drains per shard).
        """
        due: List[Message] = []
        if self._shard_queues is None:
            self._drain_heap(self._queue, now, due)
        else:
            # Gather every due entry across shards, then process in the
            # global total order so the reliable channel and accounting see
            # the same sequence a single queue would have produced.
            ready: List[_InFlight] = []
            for queue in self._shard_queues:
                while queue and queue[0].deliver_at <= now:
                    ready.append(heapq.heappop(queue))
            ready.sort()
            for entry in ready:
                self._process_entry(entry, now, due)
        self.delivered_messages += len(due)
        return due

    def deliver_due_shard(self, shard: int, now: float) -> List[Message]:
        """Pop one shard's entries due ``<= now`` in ``(time, sequence)`` order.

        Only meaningful after :meth:`attach_shards`; sends triggered while
        processing (acks, retransmits) are routed back through ``_enqueue``
        and may land on other shards' queues.
        """
        due: List[Message] = []
        self._drain_heap(self._shard_queues[shard], now, due)
        self.delivered_messages += len(due)
        return due

    def _drain_heap(
        self, queue: List[_InFlight], now: float, due: List[Message]
    ) -> None:
        while queue and queue[0].deliver_at <= now:
            entry = heapq.heappop(queue)
            self._process_entry(entry, now, due)

    def _process_entry(self, entry: _InFlight, now: float, due: List[Message]) -> None:
        prev_ctx = self.delivery_context
        self.delivery_context = (entry.deliver_at, entry.sequence)
        try:
            if entry.control is not None:
                self._handle_control(entry.control, now)
                return
            message = entry.message
            if message.destination in self.dead_endpoints:
                self.stats._bump(self.stats.dropped, message.kind)
                return
            if isinstance(message, AckMessage):
                self._unacked.get(message.link, {}).pop(message.seq, None)
                return
            if entry.link is None:
                due.append(message)
                self._count_delivered(message)
                return
            self._receive_reliable(entry.link, entry.seq, message, now, due)
        finally:
            self.delivery_context = prev_ctx

    def _receive_reliable(
        self,
        link: Link,
        seq: int,
        message: Message,
        now: float,
        due: List[Message],
    ) -> None:
        """Ack, deduplicate and in-order-release one reliable payload copy."""
        expected = self._recv_next.get(link, 0)
        # Always ack what arrived — a duplicate usually means the previous
        # ack was lost, so the sender still needs one.
        self._send_ack(link, seq, now)
        if seq < expected:
            self.stats._bump(self.stats.duplicates, message.kind)
            return
        if seq > expected:
            buffer = self._recv_buffer.setdefault(link, {})
            if seq in buffer:
                self.stats._bump(self.stats.duplicates, message.kind)
            else:
                buffer[seq] = message
            return
        # seq == expected: release it plus any contiguous buffered run.
        due.append(message)
        self._count_delivered(message)
        nxt = expected + 1
        buffer = self._recv_buffer.get(link)
        if buffer:
            while nxt in buffer:
                held = buffer.pop(nxt)
                due.append(held)
                self._count_delivered(held)
                nxt += 1
        self._recv_next[link] = nxt

    def _handle_control(self, control: PyTuple[str, Link, int], now: float) -> None:
        _, link, seq = control
        pending = self._unacked.get(link, {}).get(seq)
        if pending is None:
            return  # acked in the meantime; timer is stale
        assert self.reliability is not None
        pending.attempts += 1
        if pending.attempts > self.reliability.max_retries:
            del self._unacked[link][seq]
            self._expire(pending.message)
            return
        self.stats._bump(self.stats.retransmits, pending.message.kind)
        self._transmit(pending.message, pending.source, now, link=link, seq=seq)
        pending.rto = min(
            self.reliability.max_rto_seconds,
            pending.rto * self.reliability.backoff_factor,
        )
        self._push_control(("rtx", link, seq), now + pending.rto)

    def _count_delivered(self, message: Message) -> None:
        kind = message.kind
        self.stats._bump(self.stats.delivered, kind)
        self.bytes_delivered += message.size_bytes()
        batch = getattr(message, "batch", None)
        if batch is not None:
            self.stats._bump(self.stats.tuples_delivered, kind, len(batch))

    # -------------------------------------------------------------- inspection
    def in_flight(self) -> int:
        total = len(self._queue)
        if self._shard_queues is not None:
            total += sum(len(queue) for queue in self._shard_queues)
        return total

    def next_delivery_time(self) -> Optional[float]:
        times = []
        if self._queue:
            times.append(self._queue[0].deliver_at)
        if self._shard_queues is not None:
            times.extend(q[0].deliver_at for q in self._shard_queues if q)
        if not times:
            return None
        return min(times)

    def reliable_pending(self) -> int:
        """Unacknowledged reliable messages across all sender buffers."""
        return sum(len(pending) for pending in self._unacked.values())

    def reorder_buffered(self) -> int:
        """Out-of-order messages held back by receivers awaiting a gap fill."""
        return sum(len(buffer) for buffer in self._recv_buffer.values())
