"""Inter-site network model.

FSPS sites belong to different administrative domains and are connected by a
network whose latencies matter for two things: the delivery of data batches
between fragments placed on different nodes, and the delivery of the query
coordinators' result-SIC updates (``updateSIC``).  The paper evaluates a LAN
setting (5 ms between Emulab nodes) and an emulated wide-area setting (50 ms,
§7.4); this module provides the corresponding latency models and an in-flight
message queue with deterministic delivery order.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple as PyTuple

from ..core.tuples import Batch

__all__ = [
    "Message",
    "DataMessage",
    "SicUpdateMessage",
    "ResultMessage",
    "LatencyModel",
    "UniformLatency",
    "LatencyMatrix",
    "Network",
    "LAN_LATENCY_SECONDS",
    "WAN_LATENCY_SECONDS",
]

LAN_LATENCY_SECONDS = 0.005
WAN_LATENCY_SECONDS = 0.050

_message_ids = itertools.count()


@dataclass
class Message:
    """Base class of all network messages."""

    destination: str

    def size_bytes(self) -> int:
        return 0


@dataclass
class DataMessage(Message):
    """A batch of tuples travelling towards the node hosting a fragment."""

    batch: Batch = None  # type: ignore[assignment]
    target_fragment_id: str = ""

    def size_bytes(self) -> int:
        # payload_bytes is O(1) for columnar batches (uniform schema) and
        # equals the per-tuple sum(len(t.values) * 8) accounting exactly.
        return self.batch.payload_bytes() + self.batch.meta_data_bytes()


@dataclass
class ResultMessage(Message):
    """Result batch travelling from a root fragment to its query coordinator."""

    batch: Batch = None  # type: ignore[assignment]

    def size_bytes(self) -> int:
        return self.batch.payload_bytes() + self.batch.meta_data_bytes()


@dataclass
class SicUpdateMessage(Message):
    """``updateSIC`` message from a query coordinator to a hosting node.

    The prototype uses 30-byte messages sent every shedding interval (§7.6).
    ``sent_at`` records the dissemination instant so the dispatcher can drop
    updates from a torn-down coordinator whose query id was since reused.
    """

    query_id: str = ""
    sic_value: float = 0.0
    sent_at: float = 0.0

    def size_bytes(self) -> int:
        return 30


class LatencyModel:
    """Interface of latency models between named endpoints."""

    def latency(self, source: str, destination: str) -> float:
        raise NotImplementedError


class UniformLatency(LatencyModel):
    """A single latency between every pair of distinct endpoints."""

    def __init__(self, seconds: float = LAN_LATENCY_SECONDS) -> None:
        if seconds < 0:
            raise ValueError(f"latency must be non-negative, got {seconds}")
        self.seconds = float(seconds)

    def latency(self, source: str, destination: str) -> float:
        if source == destination:
            return 0.0
        return self.seconds


class LatencyMatrix(LatencyModel):
    """Per-pair latencies with a default for unspecified pairs."""

    def __init__(
        self,
        default_seconds: float = LAN_LATENCY_SECONDS,
        pairs: Optional[Dict[PyTuple[str, str], float]] = None,
    ) -> None:
        self.default_seconds = float(default_seconds)
        self._pairs: Dict[PyTuple[str, str], float] = dict(pairs or {})

    def set_latency(
        self,
        source: str,
        destination: str,
        seconds: float,
        symmetric: bool = True,
    ) -> None:
        """Set the latency of a pair; ``symmetric=False`` sets one direction.

        Asymmetric pairs model real federations where the administrative
        domains' uplinks and downlinks differ (e.g. a site behind a
        long-haul uplink replying over a local peering).
        """
        self._pairs[(source, destination)] = float(seconds)
        if symmetric:
            self._pairs[(destination, source)] = float(seconds)

    def latency(self, source: str, destination: str) -> float:
        if source == destination:
            return 0.0
        return self._pairs.get((source, destination), self.default_seconds)


@dataclass(order=True)
class _InFlight:
    deliver_at: float
    sequence: int
    message: Message = field(compare=False)


class Network:
    """In-flight message queue with latency-based delivery times.

    Delivery is deterministic: messages are delivered ordered by delivery time
    and, for equal times, by send order.
    """

    def __init__(self, latency_model: Optional[LatencyModel] = None) -> None:
        self.latency_model = latency_model or UniformLatency()
        self._queue: List[_InFlight] = []
        self.sent_messages = 0
        self.delivered_messages = 0
        self.bytes_sent = 0
        # Optional hook invoked as ``send_listener(message, deliver_at)`` on
        # every send.  The discrete-event runtime uses it to schedule a
        # delivery event; the lockstep loop leaves it unset (it polls
        # ``deliver_due`` at every tick instead).
        self.send_listener = None

    def send(self, message: Message, sent_at: float, source: str) -> float:
        """Enqueue ``message`` and return its delivery time."""
        latency = self.latency_model.latency(source, message.destination)
        deliver_at = sent_at + latency
        heapq.heappush(
            self._queue, _InFlight(deliver_at, next(_message_ids), message)
        )
        self.sent_messages += 1
        self.bytes_sent += message.size_bytes()
        if self.send_listener is not None:
            self.send_listener(message, deliver_at)
        return deliver_at

    def deliver_due(self, now: float) -> List[Message]:
        """Pop and return every message whose delivery time is ``<= now``."""
        due: List[Message] = []
        while self._queue and self._queue[0].deliver_at <= now:
            due.append(heapq.heappop(self._queue).message)
        self.delivered_messages += len(due)
        return due

    def in_flight(self) -> int:
        return len(self._queue)

    def next_delivery_time(self) -> Optional[float]:
        if not self._queue:
            return None
        return self._queue[0].deliver_at
