"""Federation substrate: nodes, network, coordinators, placement, the FSPS."""

from .coordinator import CoordinatorRegistry, QueryCoordinator
from .deployment import (
    ExplicitPlacement,
    Placement,
    PlacementStrategy,
    RandomPlacement,
    RoundRobinPlacement,
    ZipfPlacement,
    make_placement_strategy,
)
from .fsps import DeployedQuery, FederatedSystem, MigrationReport, RejoinReport
from .network import (
    LAN_LATENCY_SECONDS,
    WAN_LATENCY_SECONDS,
    DataMessage,
    LatencyMatrix,
    LatencyModel,
    Message,
    Network,
    ResultMessage,
    SicUpdateMessage,
    UniformLatency,
)
from .node import FspsNode, NodeStats, NodeTickResult

__all__ = [
    "CoordinatorRegistry",
    "QueryCoordinator",
    "ExplicitPlacement",
    "Placement",
    "PlacementStrategy",
    "RandomPlacement",
    "RoundRobinPlacement",
    "ZipfPlacement",
    "make_placement_strategy",
    "DeployedQuery",
    "FederatedSystem",
    "MigrationReport",
    "RejoinReport",
    "LAN_LATENCY_SECONDS",
    "WAN_LATENCY_SECONDS",
    "DataMessage",
    "LatencyMatrix",
    "LatencyModel",
    "Message",
    "Network",
    "ResultMessage",
    "SicUpdateMessage",
    "UniformLatency",
    "FspsNode",
    "NodeStats",
    "NodeTickResult",
]
