"""The federated stream processing system (FSPS).

This module ties together the federation substrate: autonomous nodes hosting
query fragments (:mod:`repro.federation.node`), the inter-site network
(:mod:`repro.federation.network`) and the per-query coordinators
(:mod:`repro.federation.coordinator`).  A :class:`FederatedSystem` owns the
deployment state — which fragment runs where, which sources feed which query —
and exposes the per-component event handlers that advance it:

* :meth:`FederatedSystem.generate_query_sources` — one source-generation
  round for one query: tuples for the elapsed interval are generated, the SIC
  assigner stamps them (Equation 1) and the batches are sent towards the
  nodes hosting the fragments bound to those sources;
* :meth:`FederatedSystem.deliver_messages` / :meth:`FederatedSystem.dispatch`
  — due network messages enter node input buffers (data), refresh the nodes'
  view of query result SIC values (``updateSIC``), or reach the coordinators
  (results);
* :meth:`FederatedSystem.run_node_round` — one overload-detector / tuple
  shedder / fragment-processing round for one node (Algorithm 1 when the
  BALANCE-SIC shedder is configured), forwarding the outputs;
* :meth:`FederatedSystem.run_coordinator_round` — one ``updateSIC``
  dissemination round for one coordinator.

Two drivers exist.  The *lockstep* driver is :meth:`FederatedSystem.tick`,
which runs every handler for every component once per shedding interval in a
fixed phase order — it is the reproduction's original execution model and is
preserved as the equivalence oracle.  The *discrete-event* driver
(:mod:`repro.runtime`) schedules each component's rounds as independent heap
events, which allows heterogeneous per-node shedding intervals and the
mid-run lifecycle operations (:meth:`deploy_query` / :meth:`undeploy_query` /
:meth:`add_node` / :meth:`remove_node` / :meth:`fail_node`).

The FSPS is deliberately decentralised: nodes only ever see their own input
buffer and the coordinator updates, mirroring the paper's site-autonomy
constraint (C3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
)

from ..core.fairness import FairnessSummary, summarize_fairness
from ..core.sic import SicAssigner
from ..core.stw import StwConfig
from ..core.tuples import Batch, Tuple
from ..streaming.fused import fused_execution_active
from ..streaming.query import QueryFragment
from .coordinator import CoordinatorRegistry, QueryCoordinator
from .network import (
    DataMessage,
    HeartbeatMessage,
    Message,
    Network,
    ResultMessage,
    SicUpdateMessage,
    UniformLatency,
)
from .node import FspsNode, NodeTickResult

__all__ = [
    "DeployedQuery",
    "SourceRoute",
    "MigrationReport",
    "RejoinReport",
    "FederatedSystem",
]

# Endpoint name used by coordinators when exchanging messages with nodes.
COORDINATOR_ENDPOINT = "coordinator"


@dataclass
class SourceRoute:
    """Precomputed routing of one source: where its batches are sent.

    Built at deploy time so the per-round generation loop does no
    getattr/placement-dict chains.  ``fragment_id``/``node_id`` are mutable:
    a node failure unroutes the sources feeding its fragments (the source
    keeps generating — advancing its RNG/carry state and feeding the rate
    estimator — but the data is lost, like tuples sent into a dead site).
    """

    __slots__ = (
        "source_id",
        "fragment_id",
        "node_id",
        "generate",
        "generate_block",
        "generate_fused",
    )

    source_id: str
    fragment_id: Optional[str]
    node_id: Optional[str]
    generate: Callable[[float, float], List[Tuple]]
    generate_block: Optional[Callable[[float, float], object]]
    generate_fused: Optional[Callable[[float, float], object]]


@dataclass
class DeployedQuery:
    """A query deployed on the FSPS.

    Attributes:
        query_id: query identifier.
        fragments: the query's fragments, keyed by fragment id.
        sources: the source objects feeding the query.  A source must expose a
            ``source_id`` attribute, a ``rate`` attribute (tuples/second) and a
            ``generate(start, end)`` method returning payload tuples.
        sic_assigner: stamps the query's source tuples with SIC values.
        source_fragment: maps source id → fragment id of the fragment whose
            receiver is bound to that source.
        source_plan: per-source :class:`SourceRoute` entries, in source order.
        deployed_at: simulation time the query was deployed.
    """

    query_id: str
    fragments: Dict[str, QueryFragment]
    sources: List[object]
    sic_assigner: SicAssigner
    source_fragment: Dict[str, str] = field(default_factory=dict)
    source_plan: List[SourceRoute] = field(default_factory=list)
    deployed_at: float = 0.0

    @property
    def num_fragments(self) -> int:
        return len(self.fragments)


@dataclass
class MigrationReport:
    """Accounting of one live fragment migration.

    Attributes:
        fragment_id / query_id: what moved.
        source_node / target_node: from where to where.
        state_tuples / state_sic: tuples and SIC carried in the checkpoint
            (operator-window state plus drained input-buffer batches).
        replayed_batches: input-buffer batches replayed on the target.
    """

    fragment_id: str
    query_id: str
    source_node: str
    target_node: str
    state_tuples: int = 0
    state_sic: float = 0.0
    replayed_batches: int = 0


@dataclass
class RejoinReport:
    """Accounting of one node rejoin after a crash failure.

    ``restored_fragments`` were restored from a coordinator-held checkpoint;
    ``fragments_without_checkpoint`` restarted empty (disjoint sets, both
    re-placed on the rejoining node).  ``lost_tuples`` / ``lost_sic``
    quantify the state the crash destroyed: the difference between what the
    fragments held at crash time — window state plus the input-buffer
    batches that died with the node — and what the checkpoints restored
    (everything, for fragments without one).
    """

    node_id: str
    restored_fragments: List[str] = field(default_factory=list)
    skipped_fragments: List[str] = field(default_factory=list)
    fragments_without_checkpoint: List[str] = field(default_factory=list)
    lost_tuples: int = 0
    lost_sic: float = 0.0


class FederatedSystem:
    """A multi-site federated stream processing deployment."""

    def __init__(
        self,
        stw_config: Optional[StwConfig] = None,
        shedding_interval: float = 0.25,
        network: Optional[Network] = None,
        coordinator_update_interval: Optional[float] = None,
        enable_sic_updates: bool = True,
        columnar: bool = True,
        retain_results: bool = False,
        max_retained_results: Optional[int] = None,
        result_accounting: bool = True,
    ) -> None:
        if shedding_interval <= 0:
            raise ValueError(
                f"shedding_interval must be positive, got {shedding_interval}"
            )
        self.stw_config = stw_config or StwConfig(slide_seconds=shedding_interval)
        self.shedding_interval = float(shedding_interval)
        self.network = network or Network(UniformLatency())
        self.enable_sic_updates = enable_sic_updates
        # Columnar fast path: sources emit column blocks that flow through
        # SIC assignment, shedding and windowing without materializing Tuple
        # objects.  Result-identical to the per-tuple path for equal seeds;
        # disable to time (or differentially test against) the tuple path.
        self.columnar = columnar
        update_interval = coordinator_update_interval or shedding_interval
        self.coordinators = CoordinatorRegistry(
            self.stw_config,
            update_interval=update_interval,
            retain_results=retain_results,
            max_retained_results=max_retained_results,
            result_accounting=result_accounting,
        )
        self.nodes: Dict[str, FspsNode] = {}
        self.queries: Dict[str, DeployedQuery] = {}
        # fragment id -> node id
        self.placement: Dict[str, str] = {}
        # node id -> {fragment id -> lost-fragment record} of crash-failed
        # nodes: the query id plus the input-buffer tuples/SIC the crash
        # destroyed with the node, kept so a rejoining node knows which
        # fragments to restore and what the crash cost.
        self._lost_placement: Dict[str, Dict[str, Dict[str, object]]] = {}
        # Data batches delivered to a node that no longer hosts their target
        # fragment and forwarded to its current host (the migration pointer
        # the old host leaves behind).
        self.forwarded_batches = 0
        # Messages the dispatcher dropped because their component departed
        # (failed node, undeployed query, stale incarnation).  Closes the
        # exactly-once ledger: a transport-delivered message either reached
        # a component handler or is counted here.
        self.dispatch_dropped = 0
        # Heartbeat sink (see repro.runtime.heartbeat.FailureDetector);
        # heartbeats are dropped when no detector is attached.
        self.failure_detector = None
        # Exactly-once result accounting (tuple-level closure terms; see
        # :meth:`result_accounting_report`).  Every result tuple that reaches
        # dispatch is counted in ``result_tuples_arrived`` and ends up in
        # exactly one of: a live coordinator's recorded/deduplicated
        # counters, ``dropped_result_tuples`` (departed component),
        # ``result_tuples_lost_to_crash`` (coordinator failover rollback) or
        # ``result_tuples_retired`` (query undeployed) — so the identity
        # closes at *any* instant, not only after a drain.
        self.result_accounting = result_accounting
        self.result_tuples_arrived = 0
        self.dropped_result_tuples = 0
        self.result_tuples_lost_to_crash = 0
        self.result_tuples_retired = 0
        # (query_id, fragment_id, epoch) -> final emitted seq of a watermark
        # epoch closed by a blank restart; the report folds the undelivered
        # tail into lost_to_crash without perturbing live dedup lanes.
        self._epoch_tails: Dict[tuple, int] = {}
        self.now = 0.0
        self.ticks = 0

    # ------------------------------------------------------------------ set-up
    def add_node(self, node: FspsNode) -> FspsNode:
        """Register a node (valid before the run and mid-run)."""
        if node.node_id in self.nodes:
            raise ValueError(f"node {node.node_id!r} already exists")
        node.set_coordinator_updates(self.enable_sic_updates)
        self.nodes[node.node_id] = node
        return node

    def node_ids(self) -> List[str]:
        return list(self.nodes)

    def deploy_query(
        self,
        query_id: str,
        fragments: Mapping[str, QueryFragment],
        sources: Sequence[object],
        placement: Mapping[str, str],
        nominal_rates: Optional[Dict[str, float]] = None,
    ) -> DeployedQuery:
        """Deploy a fragmented query (valid before the run and mid-run).

        Args:
            query_id: the query identifier.
            fragments: fragment id → fragment.
            sources: source objects feeding the query (see
                :class:`DeployedQuery` for the expected protocol).
            placement: fragment id → node id; every fragment must be placed on
                an existing node.
            nominal_rates: optional source id → tuples/second seed for the SIC
                assigner's rate estimator.
        """
        if query_id in self.queries:
            raise ValueError(f"query {query_id!r} already deployed")
        if not fragments:
            raise ValueError("a query needs at least one fragment")
        if not sources:
            raise ValueError("a query needs at least one source")

        rates = dict(nominal_rates or {})
        for source in sources:
            rate = getattr(source, "rate", None)
            source_id = getattr(source, "source_id")
            if rate and source_id not in rates:
                rates[source_id] = float(rate)

        assigner = SicAssigner(
            query_id=query_id,
            num_sources=len(sources),
            stw_seconds=self.stw_config.stw_seconds,
            nominal_rates=rates,
        )

        source_fragment: Dict[str, str] = {}
        for fragment_id, fragment in fragments.items():
            for source_id in fragment.source_bindings:
                source_fragment[source_id] = fragment_id

        deployed = DeployedQuery(
            query_id=query_id,
            fragments=dict(fragments),
            sources=list(sources),
            sic_assigner=assigner,
            source_fragment=source_fragment,
            deployed_at=self.now,
        )

        coordinator = self.coordinators.coordinator(query_id)
        for fragment_id, fragment in fragments.items():
            node_id = placement.get(fragment_id)
            if node_id is None:
                raise ValueError(f"fragment {fragment_id!r} has no placement")
            node = self.nodes.get(node_id)
            if node is None:
                raise ValueError(f"placement targets unknown node {node_id!r}")
            node.host_fragment(fragment)
            self.placement[fragment_id] = node_id
            coordinator.register_hosting_node(node_id)

        # Precompute source -> (fragment, node) routing so the per-round
        # generation loop touches no placement dicts or getattr chains.
        # Sources without a fragment binding stay in the plan with a None
        # route: they still generate (advancing their RNG/carry state) and
        # feed the rate estimator, exactly like the unrouted tuple path.
        for source in deployed.sources:
            source_id = getattr(source, "source_id")
            fragment_id = source_fragment.get(source_id)
            node_id = self.placement.get(fragment_id) if fragment_id else None
            deployed.source_plan.append(
                SourceRoute(
                    source_id=source_id,
                    fragment_id=fragment_id,
                    node_id=node_id,
                    generate=source.generate,
                    generate_block=getattr(source, "generate_block", None),
                    generate_fused=getattr(source, "generate_block_fused", None),
                )
            )

        self.queries[query_id] = deployed
        return deployed

    def query_ids(self) -> List[str]:
        return list(self.queries)

    # --------------------------------------------------------------- lifecycle
    def undeploy_query(self, query_id: str) -> QueryCoordinator:
        """Remove a query mid-run: unhost fragments, tear down its coordinator.

        Source generation for the query stops (its source plan leaves with
        it); result or data batches still in flight are dropped on delivery.
        Returns the torn-down coordinator so callers can keep its result-SIC
        history for reporting.
        """
        query = self.queries.pop(query_id, None)
        if query is None:
            raise ValueError(f"query {query_id!r} is not deployed")
        for fragment_id in query.fragments:
            node_id = self.placement.pop(fragment_id, None)
            node = self.nodes.get(node_id) if node_id else None
            if node is not None and fragment_id in node.fragments:
                node.unhost_fragment(fragment_id)
        # A crash-failed node awaiting rejoin must not restore fragments of
        # a query that was undeployed in the meantime; node ids left with
        # nothing to restore become plain fresh ids again.
        for node_id in list(self._lost_placement):
            lost = self._lost_placement[node_id]
            for fragment_id in [
                fid
                for fid, record in lost.items()
                if record["query_id"] == query_id
            ]:
                del lost[fragment_id]
            if not lost:
                del self._lost_placement[node_id]
        coordinator = self.coordinators.get(query_id)
        if coordinator is not None and self.result_accounting:
            # The coordinator's counters leave the live sum with it; keep
            # the tuple-closure identity balanced by retiring them.
            self.result_tuples_retired += coordinator.accounted_tuples()
        self._epoch_tails = {
            key: seq for key, seq in self._epoch_tails.items()
            if key[0] != query_id
        }
        return self.coordinators.remove(query_id)

    def migrate_fragment(
        self, fragment_id: str, target_node_id: str
    ) -> MigrationReport:
        """Live-migrate a fragment: drain → checkpoint → reroute → resume.

        1. **drain + checkpoint** — the source node captures the fragment's
           operator-window state *and* the input-buffer batches waiting for
           it into a :class:`~repro.state.FragmentCheckpoint`, and the
           fragment leaves the node (``checkpoint_fragment(detach=True)``).
        2. **reroute** — the placement table and the query's source plan are
           repointed at the target, so every batch sent from this instant on
           travels to the new host.  Batches already in flight towards the
           old host are *replayed on the target* by the dispatcher: delivery
           events keep their original ``(time, priority, seq)`` order and
           :meth:`dispatch` forwards them along the placement table, so no
           tuple is lost or reordered.
        3. **resume** — the target adopts the fragment, rebuilding its state
           exclusively from the envelope's serialised form (no live
           structure is shared with the old host) and replaying the drained
           buffer batches.

        The whole protocol runs atomically at one simulation instant, which
        is what makes a seeded run with a graceful migration result-identical
        to the same run without it (``tests/integration/test_migration.py``).
        """
        fragment, checkpoint = self.extract_fragment_for_migration(
            fragment_id, target_node_id
        )
        return self.apply_fragment_migration(fragment, checkpoint, target_node_id)

    def extract_fragment_for_migration(
        self, fragment_id: str, target_node_id: str
    ):
        """Step 1 of a migration: validate, drain and detach at the source.

        Split out of :meth:`migrate_fragment` so a distributed driver (the
        multiprocess sharded runtime) can run the extraction on the replica
        that owns the source node, ship ``(fragment, checkpoint)`` over the
        wire, and apply the rest everywhere.  Returns the detached fragment
        plus its :class:`~repro.state.FragmentCheckpoint`; the placement
        table still points at the source until
        :meth:`apply_fragment_migration` runs.
        """
        source_id = self.placement.get(fragment_id)
        if source_id is None:
            raise ValueError(f"fragment {fragment_id!r} is not placed")
        if target_node_id == source_id:
            raise ValueError(
                f"fragment {fragment_id!r} is already on {target_node_id!r}"
            )
        if target_node_id not in self.nodes:
            raise ValueError(f"target node {target_node_id!r} does not exist")
        source = self.nodes[source_id]
        fragment = source.fragments.get(fragment_id)
        if fragment is None:
            raise ValueError(
                f"fragment {fragment_id!r} is not hosted on {source_id!r}"
            )
        if fragment.query_id not in self.queries:
            raise ValueError(
                f"fragment {fragment_id!r} belongs to undeployed query "
                f"{fragment.query_id!r}"
            )
        # 1. drain + checkpoint: state and buffered batches leave the source.
        checkpoint = source.checkpoint_fragment(
            fragment_id, now=self.now, detach=True
        )
        return fragment, checkpoint

    def apply_fragment_migration(
        self, fragment, checkpoint, target_node_id: str
    ) -> MigrationReport:
        """Steps 2–3 of a migration: reroute the plan and resume at the target."""
        fragment_id = fragment.fragment_id
        source_id = self.placement[fragment_id]
        source = self.nodes[source_id]
        target = self.nodes[target_node_id]
        query = self.queries[fragment.query_id]
        # 2. reroute: new sends (sources and upstream fragments) target B;
        #    in-flight messages follow the placement table on delivery.
        self.placement[fragment_id] = target_node_id
        for route in query.source_plan:
            if route.fragment_id == fragment_id:
                route.node_id = target_node_id
        # 3. resume: adopt from the envelope and replay the drained buffer.
        replayed = target.adopt_fragment(fragment, checkpoint)
        coordinator = self.coordinators.get(query.query_id)
        if coordinator is not None:
            coordinator.register_hosting_node(target_node_id)
            if not any(
                f.query_id == query.query_id for f in source.fragments.values()
            ):
                coordinator.unregister_hosting_node(source_id)
        return MigrationReport(
            fragment_id=fragment_id,
            query_id=query.query_id,
            source_node=source_id,
            target_node=target_node_id,
            state_tuples=checkpoint.pending_tuples,
            state_sic=checkpoint.pending_sic,
            replayed_batches=replayed,
        )

    def remove_node(
        self,
        node_id: str,
        migrate_to: Optional[Sequence[str]] = None,
    ) -> FspsNode:
        """Gracefully decommission a node, migrating its fragments away.

        Hosted fragments are live-migrated (checkpoint/restore, in-flight
        replay — see :meth:`migrate_fragment`) to the nodes in
        ``migrate_to`` round-robin (default: every other node, in id order).
        Refuses only when fragments are hosted and no other node exists to
        take them.
        """
        node = self.nodes.get(node_id)
        if node is None:
            raise ValueError(f"node {node_id!r} does not exist")
        if node.fragments:
            targets = list(migrate_to) if migrate_to else sorted(
                other for other in self.nodes if other != node_id
            )
            targets = [t for t in targets if t != node_id]
            if not targets:
                raise ValueError(
                    f"node {node_id!r} still hosts fragments "
                    f"{sorted(node.fragments)} and no other node exists to "
                    f"migrate them to"
                )
            # Validate every target up front so the decommission is
            # all-or-nothing: a bad id mid-list must not leave the node
            # half-drained.
            unknown = [t for t in targets if t not in self.nodes]
            if unknown:
                raise ValueError(
                    f"cannot decommission {node_id!r}: migration targets "
                    f"{unknown} do not exist"
                )
            for index, fragment_id in enumerate(sorted(node.fragments)):
                self.migrate_fragment(
                    fragment_id, targets[index % len(targets)]
                )
        return self.nodes.pop(node_id)

    def fail_node(self, node_id: str) -> FspsNode:
        """Model an abrupt node failure.

        The node disappears with its buffered data and hosted fragments;
        in-flight messages towards it are blackholed on delivery.  Sources
        feeding the lost fragments are unrouted — they keep generating (and
        keep feeding their query's rate estimator) but the data is lost, so
        the affected queries' result SIC degrades instead of the simulation
        erroring out.  Coordinators forget the node.

        What was hosted where is remembered, so the node id can later
        :meth:`rejoin_node` and restore its fragments from the last
        coordinator-held checkpoints.
        """
        node = self.nodes.pop(node_id, None)
        if node is None:
            raise ValueError(f"node {node_id!r} does not exist")
        # Record, per lost fragment, the input-buffer tuples/SIC destroyed
        # with the node: rejoin's loss accounting needs the crash-time total
        # (window + buffer) to compare like for like against the checkpoint
        # totals, and the buffer dies with this node object.
        lost: Dict[str, Dict[str, object]] = {}
        for fragment_id, fragment in node.fragments.items():
            buffered = node._buffered_for(fragment)
            lost[fragment_id] = {
                "query_id": fragment.query_id,
                "buffered_tuples": sum(len(b) for b in buffered),
                "buffered_sic": sum(b.sic for b in buffered),
            }
        for fragment_id in lost:
            self.placement.pop(fragment_id, None)
        if lost:
            self._lost_placement[node_id] = lost
        for query in self.queries.values():
            for route in query.source_plan:
                if route.node_id == node_id:
                    route.node_id = None
        for coordinator in self.coordinators.all():
            coordinator.unregister_hosting_node(node_id)
        return node

    def awaiting_rejoin(self, node_id: str) -> bool:
        """True if ``node_id`` crash-failed with hosted fragments to restore.

        Recovery managers use this to pick between :meth:`rejoin_node`
        (restore from checkpoints) and plain :meth:`add_node` — a failed
        node that hosted nothing has no lost placement to rejoin, and
        ``rejoin_node`` rejects it.
        """
        return node_id in self._lost_placement

    def rejoin_node(self, node: FspsNode) -> RejoinReport:
        """Rejoin a crash-failed node id with a fresh node instance.

        The fragments the failed node hosted are re-placed on the rejoining
        node and their state is restored from the **last coordinator-held
        checkpoint** (:meth:`checkpoint_node` / the runtime's periodic
        checkpoint rounds).  Fragments without a checkpoint restart empty —
        the crash destroyed their state.  Recovery is *at-least-once*: pane
        output emitted between the last checkpoint and the crash is re-emitted
        after the rejoin, so the result SIC can transiently overshoot by up
        to one checkpoint interval's worth of results.

        The returned :class:`RejoinReport` carries the explicit loss
        accounting: buffered tuples/SIC held at crash time that no checkpoint
        preserved.
        """
        lost = self._lost_placement.pop(node.node_id, None)
        if lost is None:
            raise ValueError(
                f"node {node.node_id!r} is not a failed node awaiting rejoin"
            )
        self.add_node(node)
        report = RejoinReport(node_id=node.node_id)
        for fragment_id in sorted(lost):
            record = lost[fragment_id]
            query = self.queries.get(record["query_id"])
            if query is None or fragment_id not in query.fragments:
                report.skipped_fragments.append(fragment_id)
                continue
            fragment = query.fragments[fragment_id]
            # Crash-time state = the fragment's window state (the object was
            # untouched while the node was down) plus the input-buffer
            # batches that died with the crashed node (recorded at failure
            # time) — the same window+buffer accounting the checkpoint's
            # pending totals use, so the subtraction is like for like.
            crash_tuples = (
                fragment.pending_tuples() + record["buffered_tuples"]
            )
            crash_sic = fragment.pending_sic() + record["buffered_sic"]
            checkpoint = self.coordinators.checkpoint_for(fragment_id)
            if checkpoint is not None:
                node.adopt_fragment(fragment, checkpoint)
                report.lost_tuples += max(
                    0, crash_tuples - checkpoint.pending_tuples
                )
                report.lost_sic += max(
                    0.0, crash_sic - checkpoint.pending_sic
                )
                report.restored_fragments.append(fragment_id)
                # The envelope is consumed: its state is live again, so the
                # held copy is stale from this instant (the next checkpoint
                # round stores a fresh one).  Dropping it keeps the store
                # bounded by the number of *currently checkpointed*
                # fragments instead of accumulating superseded snapshots.
                self.coordinators.discard_checkpoint(fragment_id)
            else:
                if fragment.is_root:
                    # Close the watermark epoch the blank restart abandons:
                    # emissions past the coordinator's acknowledged seq can
                    # only be in flight or crash-lost, and the report folds
                    # the residual into lost_to_crash once the run drains.
                    epoch, seq = fragment.output_watermark
                    if seq > 0:
                        self._epoch_tails[
                            (query.query_id, fragment.fragment_id, epoch)
                        ] = seq
                fragment.reset_state()
                node.host_fragment(fragment)
                report.fragments_without_checkpoint.append(fragment_id)
                report.lost_tuples += crash_tuples
                report.lost_sic += crash_sic
            self.placement[fragment_id] = node.node_id
            for route in query.source_plan:
                if route.fragment_id == fragment_id:
                    route.node_id = node.node_id
            coordinator = self.coordinators.get(query.query_id)
            if coordinator is not None:
                coordinator.register_hosting_node(node.node_id)
        return report

    # ------------------------------------------------------------- checkpoints
    def checkpoint_node(self, node_id: str, now: Optional[float] = None) -> int:
        """Checkpoint every fragment hosted on ``node_id`` to the coordinators.

        Pure snapshot — the node is untouched.  Returns the number of
        envelopes stored.
        """
        node = self.nodes.get(node_id)
        if node is None:
            raise ValueError(f"node {node_id!r} does not exist")
        stamp = self.now if now is None else now
        stored = 0
        for fragment_id in sorted(node.fragments):
            self.coordinators.store_checkpoint(
                node.checkpoint_fragment(fragment_id, now=stamp)
            )
            stored += 1
        return stored

    def checkpoint_all(self, now: Optional[float] = None) -> int:
        """One federation-wide checkpoint round: every node, every coordinator.

        Fragment envelopes land in the coordinator-held store (node rejoin
        restores from them); each live coordinator's standby state is
        refreshed (coordinator failover promotes from it).
        """
        stamp = self.now if now is None else now
        stored = 0
        for node_id in sorted(self.nodes):
            stored += self.checkpoint_node(node_id, now=stamp)
        for query_id in self.coordinators.query_ids():
            self.coordinators.checkpoint_coordinator(query_id, stamp)
        return stored

    def fail_coordinator(self, query_id: str) -> QueryCoordinator:
        """Crash-fail a query's coordinator and promote a standby.

        The standby restores from the last checkpointed coordinator state
        (:meth:`checkpoint_all`) — or starts blank — and its hosting-node set
        is rebuilt from the authoritative placement table, so ``updateSIC``
        dissemination resumes towards the nodes that *currently* host the
        query's fragments.  The failed coordinator is returned for loss
        accounting (e.g. result tuples recorded since the last checkpoint).
        """
        query = self.queries.get(query_id)
        if query is None:
            raise ValueError(f"query {query_id!r} is not deployed")
        failed, promoted = self.coordinators.fail_over(query_id)
        if self.result_accounting:
            # Result tuples the failed coordinator accounted beyond the
            # promoted standby's restored state died with it — the ledger
            # books them as crash loss so the tuple-closure identity keeps
            # holding against the rolled-back live counters.
            self.result_tuples_lost_to_crash += max(
                0, failed.accounted_tuples() - promoted.accounted_tuples()
            )
        promoted.hosting_nodes = {
            self.placement[fragment_id]
            for fragment_id in query.fragments
            if fragment_id in self.placement
        }
        return failed

    # --------------------------------------------------------------- main loop
    def tick(self, timer: Optional[Callable[[], float]] = None) -> None:
        """Advance the federation one shedding interval, in lockstep.

        This is the reproduction's original execution model — every
        component's handler runs once per tick in a fixed phase order — and
        the equivalence oracle for the discrete-event runtime
        (:mod:`repro.runtime`), which drives the same handlers from a heap of
        independently scheduled events.
        """
        start = self.now
        self.now = start + self.shedding_interval
        self.ticks += 1

        for query in self.queries.values():
            self.generate_query_sources(query, start, self.now)
        self.deliver_messages(self.now)
        for node in self.nodes.values():
            self.run_node_round(node, self.now, timer=timer)
        for coordinator in self.coordinators.all():
            self.run_coordinator_round(coordinator, self.now)
        # Record a snapshot of every query's result SIC for the run summary.
        for coordinator in self.coordinators.all():
            coordinator.snapshot(self.now)

    def run(
        self,
        duration_seconds: float,
        timer: Optional[Callable[[], float]] = None,
    ) -> None:
        """Run the lockstep loop for ``duration_seconds`` of simulated time."""
        if duration_seconds <= 0:
            raise ValueError(f"duration must be positive, got {duration_seconds}")
        ticks = int(round(duration_seconds / self.shedding_interval))
        for _ in range(max(1, ticks)):
            self.tick(timer=timer)

    # ----------------------------------------------------------------- results
    def mean_sic_per_query(self, skip_initial: int = 0) -> Dict[str, float]:
        return self.coordinators.mean_sic_per_query(skip_initial=skip_initial)

    def current_sic_per_query(self) -> Dict[str, float]:
        return self.coordinators.current_sic_values(self.now)

    def fairness_summary(self, skip_initial: int = 0) -> FairnessSummary:
        return summarize_fairness(self.mean_sic_per_query(skip_initial=skip_initial))

    def total_shed_tuples(self) -> int:
        return sum(node.stats.shed_tuples for node in self.nodes.values())

    def total_received_tuples(self) -> int:
        return sum(node.stats.received_tuples for node in self.nodes.values())

    def total_paced_tuples(self) -> int:
        """Tuples held back at the sources by ingress backpressure."""
        return sum(node.stats.paced_tuples for node in self.nodes.values())

    def epoch_tail_count(self) -> int:
        """Closed-epoch tail records currently held (memwatch probe)."""
        return len(self._epoch_tails)

    def result_accounting_report(self) -> Dict[str, object]:
        """Close the exactly-once result ledger across the whole federation.

        Tuple-level identity (holds at any instant)::

            arrived == recorded + deduped + dropped + lost_to_crash + retired

        plus the batch-level watermark algebra per dedup lane.  The
        ``unaccounted_tuples`` entry is the identity residual and must be
        zero; ``watermark_residual_batches`` counts current-epoch emissions
        not yet acknowledged (in flight during a run, crash-lost or
        transport-expired after a drain).
        """
        if not self.result_accounting:
            return {"enabled": False}
        recorded = 0
        deduped = 0
        lost_gap_batches = 0
        lane_problems: List[str] = []
        for coordinator in self.coordinators.all():
            recorded += coordinator.result_tuples
            ledger = coordinator.ledger
            if ledger is None:
                continue
            deduped += ledger.deduped_tuples
            lost_gap_batches += ledger.lost_batches
            lane_problems.extend(ledger.check_closure())
        # Tail residuals: emissions of epochs closed by a blank restart that
        # never reached (and can no longer reach) the coordinator...
        tail_batches = 0
        for (query_id, fragment_id, epoch), seq in self._epoch_tails.items():
            coordinator = self.coordinators.get(query_id)
            acked = (
                coordinator.ledger.acked(fragment_id, epoch)
                if coordinator is not None and coordinator.ledger is not None
                else 0
            )
            tail_batches += max(0, seq - acked)
        # ...and of the epochs still live on root fragments (in flight while
        # running; zero after a loss-free drain).
        residual = 0
        for query in self.queries.values():
            coordinator = self.coordinators.get(query.query_id)
            if coordinator is None or coordinator.ledger is None:
                continue
            for fragment in query.fragments.values():
                if not fragment.is_root:
                    continue
                epoch, seq = fragment.output_watermark
                residual += max(
                    0, seq - coordinator.ledger.acked(fragment.fragment_id, epoch)
                )
        arrived = self.result_tuples_arrived
        unaccounted = (
            arrived
            - recorded
            - deduped
            - self.dropped_result_tuples
            - self.result_tuples_lost_to_crash
            - self.result_tuples_retired
        )
        return {
            "enabled": True,
            "arrived_tuples": arrived,
            "recorded_tuples": recorded,
            "deduped_tuples": deduped,
            "dropped_tuples": self.dropped_result_tuples,
            "lost_to_crash_tuples": self.result_tuples_lost_to_crash,
            "retired_tuples": self.result_tuples_retired,
            "unaccounted_tuples": unaccounted,
            "lost_to_crash_batches": lost_gap_batches + tail_batches,
            "watermark_residual_batches": residual,
            "lane_problems": lane_problems,
        }

    # ---------------------------------------------------------- event handlers
    def generate_query_sources(
        self, query: DeployedQuery, start: float, end: float
    ) -> None:
        """One source-generation round for ``query`` over ``(start, end]``."""
        for route in query.source_plan:
            self.generate_source_route(query, route, start, end)

    def generate_source_route(
        self, query: DeployedQuery, route: SourceRoute, start: float, end: float
    ) -> None:
        """One generation round of a single source route over ``(start, end]``.

        The unit the sharded runtime schedules independently: each route's
        recurring source event lives on the shard of the node it feeds, which
        is safe because the rate estimator keeps per-source-id windows (routes
        never share estimator state) and every route feeding one node runs on
        that node's shard in ``(query rank, route index)`` order — the same
        relative order the single-heap runtime produces.
        """
        columnar = self.columnar
        # Fused source generation (generate → SIC assignment → pacing in one
        # columnar pass per source) rides the same flag as fused fragment
        # execution, so fusion=off runs are the untouched staged pipeline
        # end to end.  The emitted stream is bit-identical either way.
        fused = columnar and fused_execution_active()
        assigner = query.sic_assigner
        query_id = query.query_id
        generate_block = route.generate_block
        if columnar and generate_block is not None:
            if fused and route.generate_fused is not None:
                block = route.generate_fused(start, end)
            else:
                block = generate_block(start, end)
            if not block:
                return
            assigner.assign_block(block)
            if route.node_id is None:
                return
            batch = Batch.from_block(
                query_id,
                block,
                created_at=end,
                fragment_id=route.fragment_id,
                origin_fragment_id=None,
            )
        else:
            payload_tuples: List[Tuple] = route.generate(start, end)
            if not payload_tuples:
                return
            assigner.assign(payload_tuples)
            if route.node_id is None:
                return
            batch = Batch(
                query_id,
                payload_tuples,
                created_at=end,
                fragment_id=route.fragment_id,
                origin_fragment_id=None,
            )
        node = self.nodes.get(route.node_id)
        if node is not None and node.max_ingress_tuples is not None:
            # Overload backpressure: a bounded-ingress node pushes back
            # on its sources *before* memory grows.  Pacing happens
            # after SIC assignment, so the generator RNG and the rate
            # estimator advance exactly as in the unpaced run; tuples
            # beyond the node's current credit are held back at the
            # source and accounted as paced (source-side shedding — the
            # degradation ladder's first rung).
            credit = node.ingress_credit()
            size = len(batch)
            if credit <= 0:
                node.note_paced(size)
                return
            if size > credit:
                batch, excess = batch.split(credit)
                node.note_paced(len(excess))
            node.reserve_ingress(len(batch))
        message = DataMessage(
            destination=route.node_id,
            batch=batch,
            target_fragment_id=route.fragment_id,
        )
        self.network.send(message, sent_at=end, source=route.source_id)

    def deliver_messages(self, now: float) -> None:
        """Deliver and dispatch every message due at ``now``."""
        for message in self.network.deliver_due(now):
            self.dispatch(message, now)

    def drain_network(self, deadline: Optional[float] = None) -> float:
        """Pump the network to quiescence without advancing the federation.

        Sources, shedding rounds and coordinator rounds stay frozen; only
        in-flight deliveries (and the reliable channel's ack/retransmission
        machinery they trigger) are processed, in delivery order, until the
        queue is empty or the next delivery lies beyond ``deadline``.  This
        is how the exactly-once ledger is closed at the end of a run: after
        a drain every reliable message ever sent is delivered, a counted
        duplicate, or a counted expiry — nothing is silently in flight.
        Returns the time of the last processed delivery (at least ``now``).
        """
        now = self.now
        while True:
            next_time = self.network.next_delivery_time()
            if next_time is None:
                break
            if deadline is not None and next_time > deadline:
                break
            now = max(now, next_time)
            self.deliver_messages(now)
        return now

    def dispatch(self, message: Message, now: float) -> None:
        """Route one delivered message to its component handler.

        Messages towards departed components — a failed node, the coordinator
        of an undeployed query — are dropped, like packets to a dead host.
        So are messages from a *previous incarnation* of a query id: a batch
        created — or an ``updateSIC`` sent — at or before the current
        deployment's ``deployed_at`` was in flight when its query was
        undeployed and must not leak into a query redeployed under the same
        id (no live deployment can emit at its own deploy instant — its
        first round fires an interval later).

        Data batches whose target fragment has *moved* since the send (a
        live migration or a node rejoin re-placed it) are forwarded to the
        fragment's current host: the old host's forwarding pointer is the
        placement table, and because forwarding happens inside the delivery
        event, the replayed batches keep the deterministic
        ``(time, priority, seq)`` order of the original deliveries.
        """
        if isinstance(message, DataMessage):
            destination = message.destination
            target_fragment = message.target_fragment_id
            placed = (
                self.placement.get(target_fragment) if target_fragment else None
            )
            if placed is not None and placed != destination:
                destination = placed
                self.forwarded_batches += 1
            node = self.nodes.get(destination)
            if node is None:
                self.dispatch_dropped += 1
                return
            query = self.queries.get(message.batch.query_id)
            if query is None or message.batch.created_at <= query.deployed_at:
                self.dispatch_dropped += 1
                return
            node.on_batch(message.batch)
        elif isinstance(message, ResultMessage):
            batch = message.batch
            accounting = self.result_accounting
            if accounting:
                self.result_tuples_arrived += len(batch)
            query = self.queries.get(batch.query_id)
            if query is None or batch.created_at <= query.deployed_at:
                self.dispatch_dropped += 1
                if accounting:
                    self.dropped_result_tuples += len(batch)
                return
            coordinator = self.coordinators.get(batch.query_id)
            if coordinator is not None:
                coordinator.on_result(batch, now)
            elif accounting:
                self.dropped_result_tuples += len(batch)
        elif isinstance(message, SicUpdateMessage):
            node = self.nodes.get(message.destination)
            if node is None:
                self.dispatch_dropped += 1
                return
            query = self.queries.get(message.query_id)
            if query is None or message.sent_at <= query.deployed_at:
                self.dispatch_dropped += 1
                return
            node.on_sic_update(message.query_id, message.sic_value)
        elif isinstance(message, HeartbeatMessage):
            detector = self.failure_detector
            if detector is None:
                self.dispatch_dropped += 1
                return
            detector.on_heartbeat(message.node_id, now)

    def run_node_round(
        self,
        node: FspsNode,
        now: float,
        timer: Optional[Callable[[], float]] = None,
    ) -> NodeTickResult:
        """One shedding round on ``node``, forwarding its output batches."""
        result = node.on_shed_round(now, timer=timer)
        for batch in result.downstream:
            target_fragment = batch.fragment_id
            target_node = self.placement.get(target_fragment)
            if target_node is None:
                continue
            self.network.send(
                DataMessage(
                    destination=target_node,
                    batch=batch,
                    target_fragment_id=target_fragment,
                ),
                sent_at=now,
                source=node.node_id,
            )
        for batch in result.results:
            self.network.send(
                ResultMessage(destination=COORDINATOR_ENDPOINT, batch=batch),
                sent_at=now,
                source=node.node_id,
            )
        return result

    def run_coordinator_round(
        self, coordinator: QueryCoordinator, now: float
    ) -> None:
        """One ``updateSIC`` dissemination round for ``coordinator`` (if due)."""
        if not self.enable_sic_updates:
            return
        for update in coordinator.on_update_round(now):
            message = SicUpdateMessage(
                destination=update["node_id"],
                query_id=update["query_id"],
                sic_value=float(update["sic"]),
                sent_at=now,
            )
            self.network.send(message, sent_at=now, source=COORDINATOR_ENDPOINT)
