"""The federated stream processing system (FSPS).

This module ties together the federation substrate: autonomous nodes hosting
query fragments (:mod:`repro.federation.node`), the inter-site network
(:mod:`repro.federation.network`) and the per-query coordinators
(:mod:`repro.federation.coordinator`).  A :class:`FederatedSystem` owns the
deployment state — which fragment runs where, which sources feed which query —
and advances the whole federation one shedding interval at a time:

1. sources generate tuples for the elapsed interval, the SIC assigner stamps
   them (Equation 1) and the batches are sent towards the nodes hosting the
   fragments bound to those sources;
2. the network delivers due messages: data batches enter node input buffers,
   coordinator updates refresh the nodes' view of query result SIC values, and
   result batches reach the coordinators;
3. every node runs its overload detector / tuple shedder / fragment processing
   round (Algorithm 1 when the BALANCE-SIC shedder is configured);
4. coordinators disseminate fresh result SIC values (``updateSIC``).

The FSPS is deliberately decentralised: nodes only ever see their own input
buffer and the coordinator updates, mirroring the paper's site-autonomy
constraint (C3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple as PyTuple,
)

from ..core.fairness import FairnessSummary, summarize_fairness
from ..core.sic import SicAssigner
from ..core.stw import StwConfig
from ..core.tuples import Batch, Tuple
from ..streaming.query import QueryFragment
from .coordinator import CoordinatorRegistry, QueryCoordinator
from .network import (
    DataMessage,
    Message,
    Network,
    ResultMessage,
    SicUpdateMessage,
    UniformLatency,
)
from .node import FspsNode

__all__ = ["DeployedQuery", "FederatedSystem"]

# Endpoint name used by coordinators when exchanging messages with nodes.
COORDINATOR_ENDPOINT = "coordinator"


@dataclass
class DeployedQuery:
    """A query deployed on the FSPS.

    Attributes:
        query_id: query identifier.
        fragments: the query's fragments, keyed by fragment id.
        sources: the source objects feeding the query.  A source must expose a
            ``source_id`` attribute, a ``rate`` attribute (tuples/second) and a
            ``generate(start, end)`` method returning payload tuples.
        sic_assigner: stamps the query's source tuples with SIC values.
        source_fragment: maps source id → fragment id of the fragment whose
            receiver is bound to that source.
    """

    query_id: str
    fragments: Dict[str, QueryFragment]
    sources: List[object]
    sic_assigner: SicAssigner
    source_fragment: Dict[str, str] = field(default_factory=dict)

    @property
    def num_fragments(self) -> int:
        return len(self.fragments)


class FederatedSystem:
    """A multi-site federated stream processing deployment."""

    def __init__(
        self,
        stw_config: Optional[StwConfig] = None,
        shedding_interval: float = 0.25,
        network: Optional[Network] = None,
        coordinator_update_interval: Optional[float] = None,
        enable_sic_updates: bool = True,
        columnar: bool = True,
    ) -> None:
        if shedding_interval <= 0:
            raise ValueError(
                f"shedding_interval must be positive, got {shedding_interval}"
            )
        self.stw_config = stw_config or StwConfig(slide_seconds=shedding_interval)
        self.shedding_interval = float(shedding_interval)
        self.network = network or Network(UniformLatency())
        self.enable_sic_updates = enable_sic_updates
        # Columnar fast path: sources emit column blocks that flow through
        # SIC assignment, shedding and windowing without materializing Tuple
        # objects.  Result-identical to the per-tuple path for equal seeds;
        # disable to time (or differentially test against) the tuple path.
        self.columnar = columnar
        update_interval = coordinator_update_interval or shedding_interval
        self.coordinators = CoordinatorRegistry(
            self.stw_config, update_interval=update_interval
        )
        self.nodes: Dict[str, FspsNode] = {}
        self.queries: Dict[str, DeployedQuery] = {}
        # fragment id -> node id
        self.placement: Dict[str, str] = {}
        # Precomputed per-source generation plan: (query, source, source id,
        # fragment id, hosting node id, bound generate()/generate_block()),
        # appended at deploy time so the per-tick source loop does no
        # getattr/placement-dict chains.
        self._source_plan: List[PyTuple] = []
        self.now = 0.0
        self.ticks = 0

    # ------------------------------------------------------------------ set-up
    def add_node(self, node: FspsNode) -> FspsNode:
        if node.node_id in self.nodes:
            raise ValueError(f"node {node.node_id!r} already exists")
        node.set_coordinator_updates(self.enable_sic_updates)
        self.nodes[node.node_id] = node
        return node

    def node_ids(self) -> List[str]:
        return list(self.nodes)

    def deploy_query(
        self,
        query_id: str,
        fragments: Mapping[str, QueryFragment],
        sources: Sequence[object],
        placement: Mapping[str, str],
        nominal_rates: Optional[Dict[str, float]] = None,
    ) -> DeployedQuery:
        """Deploy a fragmented query.

        Args:
            query_id: the query identifier.
            fragments: fragment id → fragment.
            sources: source objects feeding the query (see
                :class:`DeployedQuery` for the expected protocol).
            placement: fragment id → node id; every fragment must be placed on
                an existing node.
            nominal_rates: optional source id → tuples/second seed for the SIC
                assigner's rate estimator.
        """
        if query_id in self.queries:
            raise ValueError(f"query {query_id!r} already deployed")
        if not fragments:
            raise ValueError("a query needs at least one fragment")
        if not sources:
            raise ValueError("a query needs at least one source")

        rates = dict(nominal_rates or {})
        for source in sources:
            rate = getattr(source, "rate", None)
            source_id = getattr(source, "source_id")
            if rate and source_id not in rates:
                rates[source_id] = float(rate)

        assigner = SicAssigner(
            query_id=query_id,
            num_sources=len(sources),
            stw_seconds=self.stw_config.stw_seconds,
            nominal_rates=rates,
        )

        source_fragment: Dict[str, str] = {}
        for fragment_id, fragment in fragments.items():
            for source_id in fragment.source_bindings:
                source_fragment[source_id] = fragment_id

        deployed = DeployedQuery(
            query_id=query_id,
            fragments=dict(fragments),
            sources=list(sources),
            sic_assigner=assigner,
            source_fragment=source_fragment,
        )

        coordinator = self.coordinators.coordinator(query_id)
        for fragment_id, fragment in fragments.items():
            node_id = placement.get(fragment_id)
            if node_id is None:
                raise ValueError(f"fragment {fragment_id!r} has no placement")
            node = self.nodes.get(node_id)
            if node is None:
                raise ValueError(f"placement targets unknown node {node_id!r}")
            node.host_fragment(fragment)
            self.placement[fragment_id] = node_id
            coordinator.register_hosting_node(node_id)

        # Precompute source -> (fragment, node) routing so the per-tick
        # generation loop touches no placement dicts or getattr chains.
        # Sources without a fragment binding stay in the plan with a None
        # route: they still generate (advancing their RNG/carry state) and
        # feed the rate estimator, exactly like the unrouted tuple path.
        for source in deployed.sources:
            source_id = getattr(source, "source_id")
            fragment_id = source_fragment.get(source_id)
            node_id = self.placement.get(fragment_id) if fragment_id else None
            self._source_plan.append(
                (
                    deployed,
                    source,
                    source_id,
                    fragment_id,
                    node_id,
                    source.generate,
                    getattr(source, "generate_block", None),
                )
            )

        self.queries[query_id] = deployed
        return deployed

    def query_ids(self) -> List[str]:
        return list(self.queries)

    # --------------------------------------------------------------- main loop
    def tick(self, timer: Optional[Callable[[], float]] = None) -> None:
        """Advance the federation by one shedding interval."""
        start = self.now
        self.now = start + self.shedding_interval
        self.ticks += 1

        self._generate_sources(start, self.now)
        self._deliver_messages(self.now)
        self._run_nodes(self.now, timer)
        self._disseminate_sic(self.now)
        # Record a snapshot of every query's result SIC for the run summary.
        for coordinator in self.coordinators.all():
            coordinator.snapshot(self.now)

    def run(
        self,
        duration_seconds: float,
        timer: Optional[Callable[[], float]] = None,
    ) -> None:
        """Run the federation for ``duration_seconds`` of simulated time."""
        if duration_seconds <= 0:
            raise ValueError(f"duration must be positive, got {duration_seconds}")
        ticks = int(round(duration_seconds / self.shedding_interval))
        for _ in range(max(1, ticks)):
            self.tick(timer=timer)

    # ----------------------------------------------------------------- results
    def mean_sic_per_query(self, skip_initial: int = 0) -> Dict[str, float]:
        return self.coordinators.mean_sic_per_query(skip_initial=skip_initial)

    def current_sic_per_query(self) -> Dict[str, float]:
        return self.coordinators.current_sic_values(self.now)

    def fairness_summary(self, skip_initial: int = 0) -> FairnessSummary:
        return summarize_fairness(self.mean_sic_per_query(skip_initial=skip_initial))

    def total_shed_tuples(self) -> int:
        return sum(node.stats.shed_tuples for node in self.nodes.values())

    def total_received_tuples(self) -> int:
        return sum(node.stats.received_tuples for node in self.nodes.values())

    # ----------------------------------------------------------------- helpers
    def _generate_sources(self, start: float, end: float) -> None:
        columnar = self.columnar
        for (
            query,
            _source,
            source_id,
            fragment_id,
            node_id,
            generate,
            generate_block,
        ) in self._source_plan:
            if columnar and generate_block is not None:
                block = generate_block(start, end)
                if not block:
                    continue
                query.sic_assigner.assign_block(block)
                if fragment_id is None:
                    continue
                batch = Batch.from_block(
                    query.query_id,
                    block,
                    created_at=end,
                    fragment_id=fragment_id,
                    origin_fragment_id=None,
                )
            else:
                payload_tuples: List[Tuple] = generate(start, end)
                if not payload_tuples:
                    continue
                query.sic_assigner.assign(payload_tuples)
                if fragment_id is None:
                    continue
                batch = Batch(
                    query.query_id,
                    payload_tuples,
                    created_at=end,
                    fragment_id=fragment_id,
                    origin_fragment_id=None,
                )
            message = DataMessage(
                destination=node_id,
                batch=batch,
                target_fragment_id=fragment_id,
            )
            self.network.send(message, sent_at=end, source=source_id)

    def _deliver_messages(self, now: float) -> None:
        for message in self.network.deliver_due(now):
            self._dispatch(message, now)

    def _dispatch(self, message: Message, now: float) -> None:
        if isinstance(message, DataMessage):
            node = self.nodes.get(message.destination)
            if node is not None:
                node.enqueue(message.batch)
        elif isinstance(message, ResultMessage):
            coordinator = self.coordinators.coordinator(message.batch.query_id)
            coordinator.record_result(message.batch, now)
        elif isinstance(message, SicUpdateMessage):
            node = self.nodes.get(message.destination)
            if node is not None:
                node.receive_sic_update(message.query_id, message.sic_value)

    def _run_nodes(
        self, now: float, timer: Optional[Callable[[], float]] = None
    ) -> None:
        for node in self.nodes.values():
            result = node.tick(now, timer=timer)
            for batch in result.downstream:
                target_fragment = batch.fragment_id
                target_node = self.placement.get(target_fragment)
                if target_node is None:
                    continue
                self.network.send(
                    DataMessage(
                        destination=target_node,
                        batch=batch,
                        target_fragment_id=target_fragment,
                    ),
                    sent_at=now,
                    source=node.node_id,
                )
            for batch in result.results:
                self.network.send(
                    ResultMessage(destination=COORDINATOR_ENDPOINT, batch=batch),
                    sent_at=now,
                    source=node.node_id,
                )

    def _disseminate_sic(self, now: float) -> None:
        if not self.enable_sic_updates:
            return
        for coordinator in self.coordinators.all():
            for update in coordinator.make_updates(now):
                message = SicUpdateMessage(
                    destination=update["node_id"],
                    query_id=update["query_id"],
                    sic_value=float(update["sic"]),
                )
                self.network.send(
                    message, sent_at=now, source=COORDINATOR_ENDPOINT
                )
