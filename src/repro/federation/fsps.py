"""The federated stream processing system (FSPS).

This module ties together the federation substrate: autonomous nodes hosting
query fragments (:mod:`repro.federation.node`), the inter-site network
(:mod:`repro.federation.network`) and the per-query coordinators
(:mod:`repro.federation.coordinator`).  A :class:`FederatedSystem` owns the
deployment state — which fragment runs where, which sources feed which query —
and exposes the per-component event handlers that advance it:

* :meth:`FederatedSystem.generate_query_sources` — one source-generation
  round for one query: tuples for the elapsed interval are generated, the SIC
  assigner stamps them (Equation 1) and the batches are sent towards the
  nodes hosting the fragments bound to those sources;
* :meth:`FederatedSystem.deliver_messages` / :meth:`FederatedSystem.dispatch`
  — due network messages enter node input buffers (data), refresh the nodes'
  view of query result SIC values (``updateSIC``), or reach the coordinators
  (results);
* :meth:`FederatedSystem.run_node_round` — one overload-detector / tuple
  shedder / fragment-processing round for one node (Algorithm 1 when the
  BALANCE-SIC shedder is configured), forwarding the outputs;
* :meth:`FederatedSystem.run_coordinator_round` — one ``updateSIC``
  dissemination round for one coordinator.

Two drivers exist.  The *lockstep* driver is :meth:`FederatedSystem.tick`,
which runs every handler for every component once per shedding interval in a
fixed phase order — it is the reproduction's original execution model and is
preserved as the equivalence oracle.  The *discrete-event* driver
(:mod:`repro.runtime`) schedules each component's rounds as independent heap
events, which allows heterogeneous per-node shedding intervals and the
mid-run lifecycle operations (:meth:`deploy_query` / :meth:`undeploy_query` /
:meth:`add_node` / :meth:`remove_node` / :meth:`fail_node`).

The FSPS is deliberately decentralised: nodes only ever see their own input
buffer and the coordinator updates, mirroring the paper's site-autonomy
constraint (C3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
)

from ..core.fairness import FairnessSummary, summarize_fairness
from ..core.sic import SicAssigner
from ..core.stw import StwConfig
from ..core.tuples import Batch, Tuple
from ..streaming.query import QueryFragment
from .coordinator import CoordinatorRegistry, QueryCoordinator
from .network import (
    DataMessage,
    Message,
    Network,
    ResultMessage,
    SicUpdateMessage,
    UniformLatency,
)
from .node import FspsNode, NodeTickResult

__all__ = ["DeployedQuery", "SourceRoute", "FederatedSystem"]

# Endpoint name used by coordinators when exchanging messages with nodes.
COORDINATOR_ENDPOINT = "coordinator"


@dataclass
class SourceRoute:
    """Precomputed routing of one source: where its batches are sent.

    Built at deploy time so the per-round generation loop does no
    getattr/placement-dict chains.  ``fragment_id``/``node_id`` are mutable:
    a node failure unroutes the sources feeding its fragments (the source
    keeps generating — advancing its RNG/carry state and feeding the rate
    estimator — but the data is lost, like tuples sent into a dead site).
    """

    __slots__ = ("source_id", "fragment_id", "node_id", "generate", "generate_block")

    source_id: str
    fragment_id: Optional[str]
    node_id: Optional[str]
    generate: Callable[[float, float], List[Tuple]]
    generate_block: Optional[Callable[[float, float], object]]


@dataclass
class DeployedQuery:
    """A query deployed on the FSPS.

    Attributes:
        query_id: query identifier.
        fragments: the query's fragments, keyed by fragment id.
        sources: the source objects feeding the query.  A source must expose a
            ``source_id`` attribute, a ``rate`` attribute (tuples/second) and a
            ``generate(start, end)`` method returning payload tuples.
        sic_assigner: stamps the query's source tuples with SIC values.
        source_fragment: maps source id → fragment id of the fragment whose
            receiver is bound to that source.
        source_plan: per-source :class:`SourceRoute` entries, in source order.
        deployed_at: simulation time the query was deployed.
    """

    query_id: str
    fragments: Dict[str, QueryFragment]
    sources: List[object]
    sic_assigner: SicAssigner
    source_fragment: Dict[str, str] = field(default_factory=dict)
    source_plan: List[SourceRoute] = field(default_factory=list)
    deployed_at: float = 0.0

    @property
    def num_fragments(self) -> int:
        return len(self.fragments)


class FederatedSystem:
    """A multi-site federated stream processing deployment."""

    def __init__(
        self,
        stw_config: Optional[StwConfig] = None,
        shedding_interval: float = 0.25,
        network: Optional[Network] = None,
        coordinator_update_interval: Optional[float] = None,
        enable_sic_updates: bool = True,
        columnar: bool = True,
        retain_results: bool = False,
        max_retained_results: Optional[int] = None,
    ) -> None:
        if shedding_interval <= 0:
            raise ValueError(
                f"shedding_interval must be positive, got {shedding_interval}"
            )
        self.stw_config = stw_config or StwConfig(slide_seconds=shedding_interval)
        self.shedding_interval = float(shedding_interval)
        self.network = network or Network(UniformLatency())
        self.enable_sic_updates = enable_sic_updates
        # Columnar fast path: sources emit column blocks that flow through
        # SIC assignment, shedding and windowing without materializing Tuple
        # objects.  Result-identical to the per-tuple path for equal seeds;
        # disable to time (or differentially test against) the tuple path.
        self.columnar = columnar
        update_interval = coordinator_update_interval or shedding_interval
        self.coordinators = CoordinatorRegistry(
            self.stw_config,
            update_interval=update_interval,
            retain_results=retain_results,
            max_retained_results=max_retained_results,
        )
        self.nodes: Dict[str, FspsNode] = {}
        self.queries: Dict[str, DeployedQuery] = {}
        # fragment id -> node id
        self.placement: Dict[str, str] = {}
        self.now = 0.0
        self.ticks = 0

    # ------------------------------------------------------------------ set-up
    def add_node(self, node: FspsNode) -> FspsNode:
        """Register a node (valid before the run and mid-run)."""
        if node.node_id in self.nodes:
            raise ValueError(f"node {node.node_id!r} already exists")
        node.set_coordinator_updates(self.enable_sic_updates)
        self.nodes[node.node_id] = node
        return node

    def node_ids(self) -> List[str]:
        return list(self.nodes)

    def deploy_query(
        self,
        query_id: str,
        fragments: Mapping[str, QueryFragment],
        sources: Sequence[object],
        placement: Mapping[str, str],
        nominal_rates: Optional[Dict[str, float]] = None,
    ) -> DeployedQuery:
        """Deploy a fragmented query (valid before the run and mid-run).

        Args:
            query_id: the query identifier.
            fragments: fragment id → fragment.
            sources: source objects feeding the query (see
                :class:`DeployedQuery` for the expected protocol).
            placement: fragment id → node id; every fragment must be placed on
                an existing node.
            nominal_rates: optional source id → tuples/second seed for the SIC
                assigner's rate estimator.
        """
        if query_id in self.queries:
            raise ValueError(f"query {query_id!r} already deployed")
        if not fragments:
            raise ValueError("a query needs at least one fragment")
        if not sources:
            raise ValueError("a query needs at least one source")

        rates = dict(nominal_rates or {})
        for source in sources:
            rate = getattr(source, "rate", None)
            source_id = getattr(source, "source_id")
            if rate and source_id not in rates:
                rates[source_id] = float(rate)

        assigner = SicAssigner(
            query_id=query_id,
            num_sources=len(sources),
            stw_seconds=self.stw_config.stw_seconds,
            nominal_rates=rates,
        )

        source_fragment: Dict[str, str] = {}
        for fragment_id, fragment in fragments.items():
            for source_id in fragment.source_bindings:
                source_fragment[source_id] = fragment_id

        deployed = DeployedQuery(
            query_id=query_id,
            fragments=dict(fragments),
            sources=list(sources),
            sic_assigner=assigner,
            source_fragment=source_fragment,
            deployed_at=self.now,
        )

        coordinator = self.coordinators.coordinator(query_id)
        for fragment_id, fragment in fragments.items():
            node_id = placement.get(fragment_id)
            if node_id is None:
                raise ValueError(f"fragment {fragment_id!r} has no placement")
            node = self.nodes.get(node_id)
            if node is None:
                raise ValueError(f"placement targets unknown node {node_id!r}")
            node.host_fragment(fragment)
            self.placement[fragment_id] = node_id
            coordinator.register_hosting_node(node_id)

        # Precompute source -> (fragment, node) routing so the per-round
        # generation loop touches no placement dicts or getattr chains.
        # Sources without a fragment binding stay in the plan with a None
        # route: they still generate (advancing their RNG/carry state) and
        # feed the rate estimator, exactly like the unrouted tuple path.
        for source in deployed.sources:
            source_id = getattr(source, "source_id")
            fragment_id = source_fragment.get(source_id)
            node_id = self.placement.get(fragment_id) if fragment_id else None
            deployed.source_plan.append(
                SourceRoute(
                    source_id=source_id,
                    fragment_id=fragment_id,
                    node_id=node_id,
                    generate=source.generate,
                    generate_block=getattr(source, "generate_block", None),
                )
            )

        self.queries[query_id] = deployed
        return deployed

    def query_ids(self) -> List[str]:
        return list(self.queries)

    # --------------------------------------------------------------- lifecycle
    def undeploy_query(self, query_id: str) -> QueryCoordinator:
        """Remove a query mid-run: unhost fragments, tear down its coordinator.

        Source generation for the query stops (its source plan leaves with
        it); result or data batches still in flight are dropped on delivery.
        Returns the torn-down coordinator so callers can keep its result-SIC
        history for reporting.
        """
        query = self.queries.pop(query_id, None)
        if query is None:
            raise ValueError(f"query {query_id!r} is not deployed")
        for fragment_id in query.fragments:
            node_id = self.placement.pop(fragment_id, None)
            node = self.nodes.get(node_id) if node_id else None
            if node is not None and fragment_id in node.fragments:
                node.unhost_fragment(fragment_id)
        return self.coordinators.remove(query_id)

    def remove_node(self, node_id: str) -> FspsNode:
        """Gracefully decommission an empty node.

        Refuses when the node still hosts fragments — undeploy (or let fail)
        the affected queries first; fragment state cannot be migrated.
        """
        node = self.nodes.get(node_id)
        if node is None:
            raise ValueError(f"node {node_id!r} does not exist")
        if node.fragments:
            raise ValueError(
                f"node {node_id!r} still hosts fragments "
                f"{sorted(node.fragments)}; undeploy their queries first "
                f"(or use fail_node to model a crash)"
            )
        return self.nodes.pop(node_id)

    def fail_node(self, node_id: str) -> FspsNode:
        """Model an abrupt node failure.

        The node disappears with its buffered data and hosted fragments;
        in-flight messages towards it are blackholed on delivery.  Sources
        feeding the lost fragments are unrouted — they keep generating (and
        keep feeding their query's rate estimator) but the data is lost, so
        the affected queries' result SIC degrades instead of the simulation
        erroring out.  Coordinators forget the node.
        """
        node = self.nodes.pop(node_id, None)
        if node is None:
            raise ValueError(f"node {node_id!r} does not exist")
        lost_fragments = set(node.fragments)
        for fragment_id in lost_fragments:
            self.placement.pop(fragment_id, None)
        for query in self.queries.values():
            for route in query.source_plan:
                if route.node_id == node_id:
                    route.node_id = None
        for coordinator in self.coordinators.all():
            coordinator.unregister_hosting_node(node_id)
        return node

    # --------------------------------------------------------------- main loop
    def tick(self, timer: Optional[Callable[[], float]] = None) -> None:
        """Advance the federation one shedding interval, in lockstep.

        This is the reproduction's original execution model — every
        component's handler runs once per tick in a fixed phase order — and
        the equivalence oracle for the discrete-event runtime
        (:mod:`repro.runtime`), which drives the same handlers from a heap of
        independently scheduled events.
        """
        start = self.now
        self.now = start + self.shedding_interval
        self.ticks += 1

        for query in self.queries.values():
            self.generate_query_sources(query, start, self.now)
        self.deliver_messages(self.now)
        for node in self.nodes.values():
            self.run_node_round(node, self.now, timer=timer)
        for coordinator in self.coordinators.all():
            self.run_coordinator_round(coordinator, self.now)
        # Record a snapshot of every query's result SIC for the run summary.
        for coordinator in self.coordinators.all():
            coordinator.snapshot(self.now)

    def run(
        self,
        duration_seconds: float,
        timer: Optional[Callable[[], float]] = None,
    ) -> None:
        """Run the lockstep loop for ``duration_seconds`` of simulated time."""
        if duration_seconds <= 0:
            raise ValueError(f"duration must be positive, got {duration_seconds}")
        ticks = int(round(duration_seconds / self.shedding_interval))
        for _ in range(max(1, ticks)):
            self.tick(timer=timer)

    # ----------------------------------------------------------------- results
    def mean_sic_per_query(self, skip_initial: int = 0) -> Dict[str, float]:
        return self.coordinators.mean_sic_per_query(skip_initial=skip_initial)

    def current_sic_per_query(self) -> Dict[str, float]:
        return self.coordinators.current_sic_values(self.now)

    def fairness_summary(self, skip_initial: int = 0) -> FairnessSummary:
        return summarize_fairness(self.mean_sic_per_query(skip_initial=skip_initial))

    def total_shed_tuples(self) -> int:
        return sum(node.stats.shed_tuples for node in self.nodes.values())

    def total_received_tuples(self) -> int:
        return sum(node.stats.received_tuples for node in self.nodes.values())

    # ---------------------------------------------------------- event handlers
    def generate_query_sources(
        self, query: DeployedQuery, start: float, end: float
    ) -> None:
        """One source-generation round for ``query`` over ``(start, end]``."""
        columnar = self.columnar
        assigner = query.sic_assigner
        query_id = query.query_id
        for route in query.source_plan:
            generate_block = route.generate_block
            if columnar and generate_block is not None:
                block = generate_block(start, end)
                if not block:
                    continue
                assigner.assign_block(block)
                if route.node_id is None:
                    continue
                batch = Batch.from_block(
                    query_id,
                    block,
                    created_at=end,
                    fragment_id=route.fragment_id,
                    origin_fragment_id=None,
                )
            else:
                payload_tuples: List[Tuple] = route.generate(start, end)
                if not payload_tuples:
                    continue
                assigner.assign(payload_tuples)
                if route.node_id is None:
                    continue
                batch = Batch(
                    query_id,
                    payload_tuples,
                    created_at=end,
                    fragment_id=route.fragment_id,
                    origin_fragment_id=None,
                )
            message = DataMessage(
                destination=route.node_id,
                batch=batch,
                target_fragment_id=route.fragment_id,
            )
            self.network.send(message, sent_at=end, source=route.source_id)

    def deliver_messages(self, now: float) -> None:
        """Deliver and dispatch every message due at ``now``."""
        for message in self.network.deliver_due(now):
            self.dispatch(message, now)

    def dispatch(self, message: Message, now: float) -> None:
        """Route one delivered message to its component handler.

        Messages towards departed components — a failed node, the coordinator
        of an undeployed query — are dropped, like packets to a dead host.
        So are messages from a *previous incarnation* of a query id: a batch
        created — or an ``updateSIC`` sent — at or before the current
        deployment's ``deployed_at`` was in flight when its query was
        undeployed and must not leak into a query redeployed under the same
        id (no live deployment can emit at its own deploy instant — its
        first round fires an interval later).
        """
        if isinstance(message, DataMessage):
            node = self.nodes.get(message.destination)
            if node is None:
                return
            query = self.queries.get(message.batch.query_id)
            if query is None or message.batch.created_at <= query.deployed_at:
                return
            node.on_batch(message.batch)
        elif isinstance(message, ResultMessage):
            query = self.queries.get(message.batch.query_id)
            if query is None or message.batch.created_at <= query.deployed_at:
                return
            coordinator = self.coordinators.get(message.batch.query_id)
            if coordinator is not None:
                coordinator.on_result(message.batch, now)
        elif isinstance(message, SicUpdateMessage):
            node = self.nodes.get(message.destination)
            if node is None:
                return
            query = self.queries.get(message.query_id)
            if query is None or message.sent_at <= query.deployed_at:
                return
            node.on_sic_update(message.query_id, message.sic_value)

    def run_node_round(
        self,
        node: FspsNode,
        now: float,
        timer: Optional[Callable[[], float]] = None,
    ) -> NodeTickResult:
        """One shedding round on ``node``, forwarding its output batches."""
        result = node.on_shed_round(now, timer=timer)
        for batch in result.downstream:
            target_fragment = batch.fragment_id
            target_node = self.placement.get(target_fragment)
            if target_node is None:
                continue
            self.network.send(
                DataMessage(
                    destination=target_node,
                    batch=batch,
                    target_fragment_id=target_fragment,
                ),
                sent_at=now,
                source=node.node_id,
            )
        for batch in result.results:
            self.network.send(
                ResultMessage(destination=COORDINATOR_ENDPOINT, batch=batch),
                sent_at=now,
                source=node.node_id,
            )
        return result

    def run_coordinator_round(
        self, coordinator: QueryCoordinator, now: float
    ) -> None:
        """One ``updateSIC`` dissemination round for ``coordinator`` (if due)."""
        if not self.enable_sic_updates:
            return
        for update in coordinator.on_update_round(now):
            message = SicUpdateMessage(
                destination=update["node_id"],
                query_id=update["query_id"],
                sic_value=float(update["sic"]),
                sent_at=now,
            )
            self.network.send(message, sent_at=now, source=COORDINATOR_ENDPOINT)
