"""Query coordinators (§6, "SIC maintenance").

Every query has a logically-centralised coordinator, instantiated when the
query is deployed.  The coordinator receives the query's result batches,
maintains the result SIC over the sliding STW and, at regular intervals
(matching the shedding interval in the paper's evaluation), disseminates the
current result SIC value to every node hosting one of the query's fragments —
the ``updateSIC`` step of Algorithm 1 that lets autonomous nodes converge to
globally fair shedding.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..core.stw import ResultSicTracker, StwConfig
from ..core.tuples import Batch

__all__ = ["QueryCoordinator", "CoordinatorRegistry"]


class QueryCoordinator:
    """Coordinator of a single query.

    Args:
        query_id: the query this coordinator manages.
        stw_config: STW configuration for result-SIC accounting.
        update_interval: how often (seconds) SIC updates are disseminated.
        home_node: identifier of the endpoint where the coordinator runs; used
            as the network source of its update messages.
    """

    def __init__(
        self,
        query_id: str,
        stw_config: StwConfig,
        update_interval: float = 0.25,
        home_node: str = "coordinator",
    ) -> None:
        if update_interval <= 0:
            raise ValueError(f"update_interval must be positive, got {update_interval}")
        self.query_id = query_id
        self.update_interval = float(update_interval)
        self.home_node = home_node
        self.tracker = ResultSicTracker(query_id, stw_config)
        self.hosting_nodes: Set[str] = set()
        self.result_tuples = 0
        self.result_values: List[Dict[str, object]] = []
        self.updates_sent = 0
        self._last_update_time: Optional[float] = None

    def register_hosting_node(self, node_id: str) -> None:
        """Record that ``node_id`` hosts a fragment of this query."""
        self.hosting_nodes.add(node_id)

    def record_result(self, batch: Batch, now: float) -> None:
        """Account a result batch received from the query's root fragment."""
        for t in batch:
            self.tracker.record_result(t.timestamp, t.sic)
            self.result_tuples += 1
            # Result values are kept (with their logical timestamp) so the
            # SIC-correlation experiments can align degraded and perfect runs.
            values = dict(t.values)
            values["_ts"] = t.timestamp
            self.result_values.append(values)

    def current_sic(self, now: float) -> float:
        return self.tracker.current_sic(now)

    def snapshot(self, now: float) -> float:
        return self.tracker.snapshot(now)

    def due_for_update(self, now: float) -> bool:
        """Whether an ``updateSIC`` dissemination round is due at ``now``."""
        if self._last_update_time is None:
            return True
        return now - self._last_update_time >= self.update_interval - 1e-9

    def make_updates(self, now: float) -> List[Dict[str, object]]:
        """Build the update payloads for every hosting node (if due).

        Returns a list of dictionaries with keys ``node_id``, ``query_id`` and
        ``sic``; the caller (the FSPS) wraps them into network messages so the
        coordinator itself stays transport-agnostic.
        """
        if not self.due_for_update(now):
            return []
        self._last_update_time = now
        sic = self.current_sic(now)
        updates = [
            {"node_id": node_id, "query_id": self.query_id, "sic": sic}
            for node_id in sorted(self.hosting_nodes)
        ]
        self.updates_sent += len(updates)
        return updates


class CoordinatorRegistry:
    """All coordinators of a federated deployment."""

    def __init__(
        self,
        stw_config: StwConfig,
        update_interval: float = 0.25,
    ) -> None:
        self.stw_config = stw_config
        self.update_interval = update_interval
        self._coordinators: Dict[str, QueryCoordinator] = {}

    def coordinator(self, query_id: str) -> QueryCoordinator:
        if query_id not in self._coordinators:
            self._coordinators[query_id] = QueryCoordinator(
                query_id,
                self.stw_config,
                update_interval=self.update_interval,
            )
        return self._coordinators[query_id]

    def all(self) -> List[QueryCoordinator]:
        return list(self._coordinators.values())

    def query_ids(self) -> List[str]:
        return list(self._coordinators)

    def current_sic_values(self, now: float) -> Dict[str, float]:
        return {qid: c.current_sic(now) for qid, c in self._coordinators.items()}

    def mean_sic_per_query(self, skip_initial: int = 0) -> Dict[str, float]:
        return {
            qid: c.tracker.mean_sic(skip_initial=skip_initial)
            for qid, c in self._coordinators.items()
        }

    def __len__(self) -> int:
        return len(self._coordinators)

    def __contains__(self, query_id: str) -> bool:
        return query_id in self._coordinators
