"""Query coordinators (§6, "SIC maintenance").

Every query has a logically-centralised coordinator, instantiated when the
query is deployed.  The coordinator receives the query's result batches,
maintains the result SIC over the sliding STW and, at regular intervals
(matching the shedding interval in the paper's evaluation), disseminates the
current result SIC value to every node hosting one of the query's fragments —
the ``updateSIC`` step of Algorithm 1 that lets autonomous nodes converge to
globally fair shedding.

Coordinators are event-driven components: :meth:`QueryCoordinator.on_result`
handles an arriving result batch and :meth:`QueryCoordinator.on_update_round`
runs one dissemination round.  The lockstep loop and the discrete-event
runtime (:mod:`repro.runtime`) both drive exactly these two handlers, which is
what keeps their executions result-identical.  Coordinators are torn down when
their query is undeployed (:meth:`CoordinatorRegistry.remove`).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Set, Tuple as PyTuple

from ..core.stw import ResultSicTracker, StwConfig
from ..core.tuples import Batch
from ..state.checkpoint import CheckpointError, FragmentCheckpoint
from ..state.ledger import DEDUPLICATE, ResultLedger

__all__ = ["QueryCoordinator", "CoordinatorRegistry"]


class QueryCoordinator:
    """Coordinator of a single query.

    Args:
        query_id: the query this coordinator manages.
        stw_config: STW configuration for result-SIC accounting.
        update_interval: how often (seconds) SIC updates are disseminated.
        home_node: identifier of the endpoint where the coordinator runs; used
            as the network source of its update messages.
        retain_results: keep the payload of every result tuple.  Off by
            default — unbounded retention of result dicts leaks memory on long
            runs; the SIC-correlation experiments (fig06/fig07) opt in via
            ``SimulationConfig.retain_result_values``.
        max_retained_results: cap on retained result payloads per query; when
            the cap is reached the oldest payloads are discarded.  ``None``
            keeps every payload (the pre-bounding behaviour).
        result_accounting: run arriving result batches through the
            exactly-once :class:`~repro.state.ledger.ResultLedger` — crash
            replay below the acknowledged ``(fragment, epoch, seq)``
            watermark is deduplicated before it reaches the tracker, and
            watermark gaps are accounted as lost to the crash.
    """

    def __init__(
        self,
        query_id: str,
        stw_config: StwConfig,
        update_interval: float = 0.25,
        home_node: str = "coordinator",
        retain_results: bool = False,
        max_retained_results: Optional[int] = None,
        result_accounting: bool = True,
    ) -> None:
        if update_interval <= 0:
            raise ValueError(f"update_interval must be positive, got {update_interval}")
        if max_retained_results is not None and max_retained_results <= 0:
            raise ValueError(
                f"max_retained_results must be positive, got {max_retained_results}"
            )
        self.query_id = query_id
        self.update_interval = float(update_interval)
        self.home_node = home_node
        self.tracker = ResultSicTracker(query_id, stw_config)
        self.hosting_nodes: Set[str] = set()
        self.result_tuples = 0
        self.retain_results = retain_results
        self.result_values: Deque[Dict[str, object]] = deque(
            maxlen=max_retained_results
        )
        self.ledger: Optional[ResultLedger] = (
            ResultLedger() if result_accounting else None
        )
        self.updates_sent = 0
        self._last_update_time: Optional[float] = None

    def register_hosting_node(self, node_id: str) -> None:
        """Record that ``node_id`` hosts a fragment of this query."""
        self.hosting_nodes.add(node_id)

    def unregister_hosting_node(self, node_id: str) -> None:
        """Forget ``node_id`` (it stopped hosting fragments, or failed)."""
        self.hosting_nodes.discard(node_id)

    def on_result(self, batch: Batch, now: float) -> None:
        """Handle a result batch received from the query's root fragment."""
        ledger = self.ledger
        if ledger is not None and ledger.observe(
            batch.origin_fragment_id,
            batch.origin_epoch,
            batch.origin_seq,
            len(batch),
        ) == DEDUPLICATE:
            # Crash-replayed output: the original delivery already counted.
            return
        retain = self.retain_results
        for t in batch:
            self.tracker.record_result(t.timestamp, t.sic)
            self.result_tuples += 1
            if retain:
                # Result values are kept (with their logical timestamp) so the
                # SIC-correlation experiments can align degraded and perfect
                # runs.
                values = dict(t.values)
                values["_ts"] = t.timestamp
                self.result_values.append(values)

    # Seed-era name, kept as the compatibility surface.
    record_result = on_result

    def accounted_tuples(self) -> int:
        """Recorded plus deduplicated result tuples (the loss-audit total)."""
        deduped = self.ledger.deduped_tuples if self.ledger is not None else 0
        return self.result_tuples + deduped

    def current_sic(self, now: float) -> float:
        return self.tracker.current_sic(now)

    def snapshot(self, now: float) -> float:
        return self.tracker.snapshot(now)

    def due_for_update(self, now: float) -> bool:
        """Whether an ``updateSIC`` dissemination round is due at ``now``."""
        if self._last_update_time is None:
            return True
        return now - self._last_update_time >= self.update_interval - 1e-9

    def on_update_round(self, now: float) -> List[Dict[str, object]]:
        """Build the update payloads for every hosting node (if due).

        Returns a list of dictionaries with keys ``node_id``, ``query_id`` and
        ``sic``; the caller (the FSPS or the event runtime) wraps them into
        network messages so the coordinator itself stays transport-agnostic.
        """
        if not self.due_for_update(now):
            return []
        self._last_update_time = now
        sic = self.current_sic(now)
        updates = [
            {"node_id": node_id, "query_id": self.query_id, "sic": sic}
            for node_id in sorted(self.hosting_nodes)
        ]
        self.updates_sent += len(updates)
        return updates

    # Seed-era name, kept as the compatibility surface.
    make_updates = on_update_round

    # ------------------------------------------------------ checkpoint/restore
    def snapshot_state(self, now: float = 0.0) -> Dict[str, object]:
        """Serialise the coordinator's state for failover.

        Captures the result-SIC tracker (events, history), the hosting-node
        set, the dissemination cadence anchor and the counters.  Retained
        result payloads (``result_values``) are deliberately *not* part of
        the failover state: they are an experiment-reporting convenience,
        not operational state a standby needs.
        """
        return {
            "query_id": self.query_id,
            "update_interval": self.update_interval,
            "created_at": now,
            "hosting_nodes": sorted(self.hosting_nodes),
            "result_tuples": self.result_tuples,
            "updates_sent": self.updates_sent,
            "last_update_time": self._last_update_time,
            "tracker": self.tracker.snapshot_state(),
            "ledger": (
                self.ledger.snapshot_state()
                if self.ledger is not None
                else None
            ),
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        """Rebuild the coordinator from :meth:`snapshot_state` output."""
        if state["query_id"] != self.query_id:
            raise CheckpointError(
                f"coordinator checkpoint for query {state['query_id']!r} does "
                f"not match {self.query_id!r}"
            )
        if state["update_interval"] != self.update_interval:
            raise CheckpointError(
                f"coordinator checkpoint update_interval "
                f"{state['update_interval']} does not match "
                f"{self.update_interval}"
            )
        self.hosting_nodes = set(state["hosting_nodes"])
        self.result_tuples = state["result_tuples"]
        self.updates_sent = state["updates_sent"]
        self._last_update_time = state["last_update_time"]
        self.tracker.restore_state(state["tracker"])
        if self.ledger is not None:
            ledger_state = state.get("ledger")
            if ledger_state is not None:
                # Rolls back in sympathy with the tracker: arrivals the
                # failed coordinator saw after this snapshot re-deliver (or
                # surface as lost) against the restored watermarks.
                self.ledger.restore_state(ledger_state)
            else:
                self.ledger = ResultLedger()


class CoordinatorRegistry:
    """All coordinators of a federated deployment."""

    def __init__(
        self,
        stw_config: StwConfig,
        update_interval: float = 0.25,
        retain_results: bool = False,
        max_retained_results: Optional[int] = None,
        result_accounting: bool = True,
    ) -> None:
        self.stw_config = stw_config
        self.update_interval = update_interval
        self.retain_results = retain_results
        self.max_retained_results = max_retained_results
        self.result_accounting = result_accounting
        self._coordinators: Dict[str, QueryCoordinator] = {}
        # Coordinator-layer durable stores: the latest fragment checkpoints
        # (fragment id -> envelope; node rejoin restores from these) and the
        # standby coordinator states (query id -> snapshot; failover promotes
        # from these).  Held at the registry so they survive the failure of
        # an individual coordinator.
        self._fragment_checkpoints: Dict[str, FragmentCheckpoint] = {}
        self._standby_states: Dict[str, Dict[str, object]] = {}

    def coordinator(self, query_id: str) -> QueryCoordinator:
        if query_id not in self._coordinators:
            self._coordinators[query_id] = QueryCoordinator(
                query_id,
                self.stw_config,
                update_interval=self.update_interval,
                retain_results=self.retain_results,
                max_retained_results=self.max_retained_results,
                result_accounting=self.result_accounting,
            )
        return self._coordinators[query_id]

    def get(self, query_id: str) -> Optional[QueryCoordinator]:
        """The coordinator for ``query_id``, or ``None`` when torn down.

        Unlike :meth:`coordinator` this never creates one — the message
        dispatch path uses it so a result batch arriving after its query was
        undeployed does not resurrect the coordinator.
        """
        return self._coordinators.get(query_id)

    def remove(self, query_id: str) -> QueryCoordinator:
        """Tear down and return the coordinator of an undeployed query.

        The query's durable stores (fragment checkpoints, standby state) are
        purged with it — state of an undeployed query must not leak into a
        later deployment under the same id.
        """
        try:
            coordinator = self._coordinators.pop(query_id)
        except KeyError:
            raise KeyError(f"no coordinator for query {query_id!r}") from None
        self._standby_states.pop(query_id, None)
        for fragment_id in [
            fid
            for fid, cp in self._fragment_checkpoints.items()
            if cp.query_id == query_id
        ]:
            del self._fragment_checkpoints[fragment_id]
        return coordinator

    # ------------------------------------------------------- durable stores
    def store_checkpoint(self, checkpoint: FragmentCheckpoint) -> None:
        """Persist the latest checkpoint of a fragment (validated first)."""
        self._fragment_checkpoints[
            checkpoint.validate().fragment_id
        ] = checkpoint

    def checkpoint_for(self, fragment_id: str) -> Optional[FragmentCheckpoint]:
        """The last stored checkpoint of ``fragment_id``, or ``None``."""
        return self._fragment_checkpoints.get(fragment_id)

    def discard_checkpoint(self, fragment_id: str) -> bool:
        """Drop a consumed fragment checkpoint (e.g. after a successful
        rejoin restore).  The envelope is stale the moment its state is live
        again — the next checkpoint round records a fresh one — so keeping
        it only grows the store.  Returns whether an envelope was held."""
        return self._fragment_checkpoints.pop(fragment_id, None) is not None

    def checkpoint_store_size(self) -> int:
        """Number of fragment envelopes currently held (memwatch input)."""
        return len(self._fragment_checkpoints)

    def standby_store_size(self) -> int:
        """Number of standby coordinator snapshots held (memwatch input)."""
        return len(self._standby_states)

    def checkpoint_coordinator(self, query_id: str, now: float) -> None:
        """Refresh the standby state of a live coordinator."""
        coordinator = self._coordinators.get(query_id)
        if coordinator is None:
            raise KeyError(f"no coordinator for query {query_id!r}")
        self._standby_states[query_id] = coordinator.snapshot_state(now)

    def fail_over(
        self, query_id: str
    ) -> PyTuple[QueryCoordinator, QueryCoordinator]:
        """Crash-fail a coordinator and promote a standby in its place.

        The failed coordinator's live state (unpersisted result-SIC events,
        retained payloads) is lost; the standby restores from the last
        :meth:`checkpoint_coordinator` state, or starts blank when none was
        ever taken.  Returns ``(failed, promoted)`` so callers can account
        the loss (e.g. ``failed.result_tuples - promoted.result_tuples``).
        """
        try:
            failed = self._coordinators.pop(query_id)
        except KeyError:
            raise KeyError(f"no coordinator for query {query_id!r}") from None
        promoted = QueryCoordinator(
            query_id,
            self.stw_config,
            update_interval=self.update_interval,
            retain_results=self.retain_results,
            max_retained_results=self.max_retained_results,
            result_accounting=self.result_accounting,
        )
        # The standby snapshot is consumed by the promotion: keeping it
        # would only grow the store with state the promoted coordinator now
        # carries live (the next checkpoint round records a fresh one).  A
        # second failover before that round starts blank — and the blank
        # restore is exactly accounted as lost_to_crash by the system-level
        # result ledger rather than silently restoring stale watermarks.
        standby = self._standby_states.pop(query_id, None)
        if standby is not None:
            promoted.restore_state(standby)
        self._coordinators[query_id] = promoted
        return failed, promoted

    def all(self) -> List[QueryCoordinator]:
        return list(self._coordinators.values())

    def query_ids(self) -> List[str]:
        return list(self._coordinators)

    def current_sic_values(self, now: float) -> Dict[str, float]:
        return {qid: c.current_sic(now) for qid, c in self._coordinators.items()}

    def mean_sic_per_query(self, skip_initial: int = 0) -> Dict[str, float]:
        return {
            qid: c.tracker.mean_sic(skip_initial=skip_initial)
            for qid, c in self._coordinators.items()
        }

    def __len__(self) -> int:
        return len(self._coordinators)

    def __contains__(self, query_id: str) -> bool:
        return query_id in self._coordinators
