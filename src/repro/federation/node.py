"""A THEMIS node (Figure 5 of the paper).

Each node hosts query fragments and owns the components of Figure 5: an input
buffer where incoming batches wait, an overload detector that compares the
buffer occupancy against the capacity estimated by the cost model, and a tuple
shedder that is invoked when the node is overloaded.  Kept batches are routed
to their fragments, which process them and emit derived batches for downstream
fragments or result batches for the query user.

Nodes are autonomous: the only global information they receive are the result
SIC values disseminated by the query coordinators (``updateSIC``).  When those
updates are disabled (the Figure 4 ablation) a node falls back to a purely
local estimate of each hosted query's result SIC.

Nodes are event-driven components with three handlers — :meth:`FspsNode.on_batch`
(a data batch arrives), :meth:`FspsNode.on_sic_update` (an ``updateSIC``
message arrives) and :meth:`FspsNode.on_shed_round` (one overload-detection /
shedding / processing round).  The lockstep ``FederatedSystem.tick()`` loop
and the discrete-event runtime (:mod:`repro.runtime`) drive exactly the same
handlers; under the event runtime each node additionally owns its cadence via
the optional ``shedding_interval`` attribute (heterogeneous per-node rounds).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple as PyTuple

from ..core.cost_model import CostModel, CostModelConfig
from ..core.shedding import Shedder
from ..core.stw import ResultSicTracker, StwConfig
from ..core.tuples import Batch
from ..state.checkpoint import (
    CheckpointError,
    FragmentCheckpoint,
    batch_from_state,
    batch_to_state,
)
from ..streaming.query import FragmentOutput, QueryFragment

__all__ = ["NodeStats", "NodeTickResult", "FspsNode"]


@dataclass
class NodeStats:
    """Cumulative per-node statistics over a run."""

    ticks: int = 0
    overloaded_ticks: int = 0
    received_tuples: int = 0
    kept_tuples: int = 0
    shed_tuples: int = 0
    processed_cost: float = 0.0
    shedder_invocations: int = 0
    shedder_time_seconds: float = 0.0
    # Overload-backpressure counters (bounded ingress only).  ``paced``
    # tuples were held back at the sources while the node was above its
    # high watermark (the graceful rung of the degradation ladder);
    # ``overflow`` tuples hit the hard cap itself — with sources pacing
    # correctly this stays zero, which the soak harness asserts.
    paced_tuples: int = 0
    ingress_overflow_tuples: int = 0
    backpressure_engagements: int = 0

    @property
    def shed_fraction(self) -> float:
        if self.received_tuples == 0:
            return 0.0
        return self.shed_tuples / self.received_tuples


@dataclass
class NodeTickResult:
    """Output of one node tick: batches to forward plus bookkeeping."""

    downstream: List[Batch] = field(default_factory=list)
    results: List[Batch] = field(default_factory=list)
    kept_tuples: int = 0
    shed_tuples: int = 0
    capacity: int = 0
    overloaded: bool = False


class FspsNode:
    """A single FSPS node hosting query fragments.

    Args:
        node_id: unique node identifier (also used as the network endpoint).
        shedder: the tuple shedder invoked under overload.
        budget_per_interval: processing budget (cost units) available per
            shedding interval; together with the cost model this yields the
            input-buffer threshold ``c``.
        stw_config: STW configuration used for the node's local result-SIC
            estimates.
        site: name of the administrative site the node belongs to.
        cost_model_config: optional cost-model tuning.
        shedding_interval: the node's preferred shedding-round cadence in
            seconds, honoured by the discrete-event runtime (``None`` means
            "use the federation default").  ``budget_per_interval`` is per
            *round*, so a node halving its interval should also halve its
            budget.  The lockstep loop ignores this attribute — it runs every
            node at the global interval by construction.
        max_ingress_tuples: bound on the input buffer (tuples).  ``None``
            (the default) keeps the pre-backpressure unbounded buffer.  When
            set, sources consult :meth:`ingress_credit` before sending and
            pace their generation against it; the cap itself is enforced in
            :meth:`on_batch` as the last line of defence (overflow is
            counted and dropped instead of growing memory).
        ingress_high_fraction / ingress_low_fraction: hysteresis watermarks
            as fractions of ``max_ingress_tuples`` — backpressure engages at
            the high watermark and releases once occupancy falls back to the
            low one, so sources do not flap every batch.
    """

    def __init__(
        self,
        node_id: str,
        shedder: Shedder,
        budget_per_interval: float,
        stw_config: Optional[StwConfig] = None,
        site: Optional[str] = None,
        cost_model_config: Optional[CostModelConfig] = None,
        shedding_interval: Optional[float] = None,
        max_ingress_tuples: Optional[int] = None,
        ingress_high_fraction: float = 0.8,
        ingress_low_fraction: float = 0.5,
    ) -> None:
        if budget_per_interval <= 0:
            raise ValueError(
                f"budget_per_interval must be positive, got {budget_per_interval}"
            )
        if shedding_interval is not None and shedding_interval <= 0:
            raise ValueError(
                f"shedding_interval must be positive, got {shedding_interval}"
            )
        if max_ingress_tuples is not None and max_ingress_tuples <= 0:
            raise ValueError(
                f"max_ingress_tuples must be positive, got {max_ingress_tuples}"
            )
        if not 0.0 < ingress_low_fraction <= ingress_high_fraction <= 1.0:
            raise ValueError(
                "ingress watermarks must satisfy 0 < low <= high <= 1, got "
                f"low={ingress_low_fraction}, high={ingress_high_fraction}"
            )
        self.node_id = node_id
        self.site = site or node_id
        self.shedder = shedder
        self.shedding_interval = shedding_interval
        self.budget_per_interval = float(budget_per_interval)
        self.stw_config = stw_config or StwConfig()
        self.cost_model = CostModel(cost_model_config)
        self.fragments: Dict[str, QueryFragment] = {}
        self.stats = NodeStats()
        self._input_buffer: List[Batch] = []
        # Tuple count of the input buffer, tracked incrementally so overload
        # detection never re-scans the buffer (`sum(len(b) for b in ...)`).
        self._input_buffer_tuples: int = 0
        # Result SIC per query as last reported by the query coordinators.
        self._reported_sic: Dict[str, float] = {}
        self._use_coordinator_updates = True
        # Purely local estimates, used when coordinator updates are disabled.
        self._local_trackers: Dict[str, ResultSicTracker] = {}
        # query id -> fallback fragment for batches without a (known)
        # fragment id; built lazily and invalidated when hosting changes, so
        # routing never rebuilds a candidate list per batch.
        self._query_fragment_cache: Dict[str, Optional[QueryFragment]] = {}
        # Bounded-ingress backpressure state (inactive when the cap is None).
        self.max_ingress_tuples = max_ingress_tuples
        if max_ingress_tuples is not None:
            self._ingress_high = max(
                1, int(max_ingress_tuples * ingress_high_fraction)
            )
            self._ingress_low = max(
                0, int(max_ingress_tuples * ingress_low_fraction)
            )
        else:
            self._ingress_high = self._ingress_low = 0
        self._backpressured = False
        # Tuples promised to in-flight sends (sources reserved credit for
        # them); counted as occupancy so several sources pacing within the
        # same round cannot jointly overshoot the cap.
        self._ingress_reserved = 0

    # ------------------------------------------------------------------ wiring
    def host_fragment(self, fragment: QueryFragment) -> None:
        """Deploy ``fragment`` on this node."""
        if fragment.fragment_id in self.fragments:
            raise ValueError(
                f"fragment {fragment.fragment_id} already hosted on {self.node_id}"
            )
        self.fragments[fragment.fragment_id] = fragment
        self._query_fragment_cache.clear()
        self._local_trackers.setdefault(
            fragment.query_id, ResultSicTracker(fragment.query_id, self.stw_config)
        )

    def unhost_fragment(self, fragment_id: str) -> QueryFragment:
        """Remove a hosted fragment (query undeploy / node decommission).

        The fragment's buffered window state leaves with it.  When the last
        fragment of a query departs, the node also drops its local SIC
        tracker and the coordinator-reported SIC for that query, so the
        shedder no longer balances a query the node does not host.
        """
        try:
            fragment = self.fragments.pop(fragment_id)
        except KeyError:
            raise ValueError(
                f"fragment {fragment_id!r} is not hosted on {self.node_id}"
            ) from None
        self._query_fragment_cache.clear()
        query_id = fragment.query_id
        if not any(f.query_id == query_id for f in self.fragments.values()):
            self._local_trackers.pop(query_id, None)
            self._reported_sic.pop(query_id, None)
        return fragment

    def hosted_queries(self) -> List[str]:
        """Identifiers of queries with at least one fragment on this node."""
        return sorted({f.query_id for f in self.fragments.values()})

    # ------------------------------------------------------ checkpoint/restore
    def _buffered_for(self, fragment: QueryFragment) -> List[Batch]:
        """Input-buffer batches that would be routed to ``fragment``."""
        fragment_id = fragment.fragment_id
        query_id = fragment.query_id
        return [
            b
            for b in self._input_buffer
            if b.fragment_id == fragment_id
            or (b.fragment_id is None and b.query_id == query_id)
        ]

    def checkpoint_fragment(
        self, fragment_id: str, now: float = 0.0, detach: bool = False
    ) -> FragmentCheckpoint:
        """Capture a hosted fragment's full state into a checkpoint envelope.

        The envelope carries the fragment's operator-window state, the
        input-buffer batches waiting for the fragment (delivered but not yet
        processed), and the node-side per-query context that should travel
        with the fragment (coordinator-reported SIC, local SIC tracker).

        Args:
            fragment_id: the hosted fragment to checkpoint.
            now: simulation time stamped on the envelope.
            detach: when true, the checkpointed state *leaves* this node —
                the buffered batches are drained from the input buffer and
                the fragment is unhosted (the migration path).  When false
                the node is untouched (the periodic-checkpoint path).
        """
        fragment = self.fragments.get(fragment_id)
        if fragment is None:
            raise ValueError(
                f"fragment {fragment_id!r} is not hosted on {self.node_id}"
            )
        buffered = self._buffered_for(fragment)
        query_id = fragment.query_id
        host_context: Dict[str, object] = {}
        if query_id in self._reported_sic:
            host_context["reported_sic"] = self._reported_sic[query_id]
        tracker = self._local_trackers.get(query_id)
        if tracker is not None:
            host_context["local_tracker"] = tracker.snapshot_state()
        checkpoint = FragmentCheckpoint(
            fragment_id=fragment_id,
            query_id=query_id,
            created_at=now,
            fragment_state=fragment.snapshot(),
            buffered_batches=[batch_to_state(b) for b in buffered],
            host_context=host_context,
            pending_tuples=fragment.pending_tuples()
            + sum(len(b) for b in buffered),
            pending_sic=fragment.pending_sic() + sum(b.sic for b in buffered),
        )
        if detach:
            if buffered:
                drained = set(id(b) for b in buffered)
                self._input_buffer = [
                    b for b in self._input_buffer if id(b) not in drained
                ]
                self._input_buffer_tuples -= sum(len(b) for b in buffered)
            self.unhost_fragment(fragment_id)
        return checkpoint

    def adopt_fragment(
        self, fragment: QueryFragment, checkpoint: FragmentCheckpoint
    ) -> int:
        """Host ``fragment`` and restore its state from ``checkpoint``.

        The fragment's operator state is rebuilt entirely from the envelope's
        serialised form (no live structure is shared with the previous host),
        the host context is applied, and the checkpointed input-buffer
        batches are replayed into this node's buffer in their original order.
        Replayed batches do **not** count as newly received — the federation
        already counted them on first delivery.

        The host context (reported SIC, local tracker) is applied only when
        this node does not already host another fragment of the same query:
        an established host's own view of the query is at least as fresh as
        the envelope's, and its local tracker history must not be clobbered
        by the departing host's.

        Returns the number of replayed batches.
        """
        checkpoint.validate()
        if checkpoint.fragment_id != fragment.fragment_id:
            raise CheckpointError(
                f"checkpoint for fragment {checkpoint.fragment_id!r} does not "
                f"match {fragment.fragment_id!r}"
            )
        query_id = fragment.query_id
        query_already_hosted = any(
            f.query_id == query_id for f in self.fragments.values()
        )
        self.host_fragment(fragment)
        fragment.restore(checkpoint.fragment_state)
        context = checkpoint.host_context
        if not query_already_hosted:
            if "reported_sic" in context:
                self._reported_sic[query_id] = context["reported_sic"]
            if "local_tracker" in context:
                tracker = self._local_trackers.get(query_id)
                if tracker is not None:
                    tracker.restore_state(context["local_tracker"])
        replayed = [batch_from_state(s) for s in checkpoint.buffered_batches]
        for batch in replayed:
            self._input_buffer.append(batch)
            self._input_buffer_tuples += len(batch)
        return len(replayed)

    def set_coordinator_updates(self, enabled: bool) -> None:
        """Enable or disable the use of coordinator SIC updates (Figure 4 ablation)."""
        self._use_coordinator_updates = enabled

    # --------------------------------------------------------------- messaging
    def on_batch(self, batch: Batch) -> None:
        """Handle an incoming data batch: append it to the input buffer.

        With a bounded ingress queue the cap is enforced here as the last
        line of defence: tuples beyond it are dropped and counted as
        overflow instead of growing memory.  Sources that consult
        :meth:`ingress_credit` (the intended protocol) never trip it —
        backpressure engages at the high watermark first.
        """
        size = len(batch)
        self.stats.received_tuples += size
        self._ingress_reserved = max(0, self._ingress_reserved - size)
        cap = self.max_ingress_tuples
        if cap is not None:
            room = cap - self._input_buffer_tuples
            if room <= 0:
                self.stats.ingress_overflow_tuples += size
                self._update_backpressure()
                return
            if size > room:
                batch, overflow = batch.split(room)
                self.stats.ingress_overflow_tuples += len(overflow)
                size = room
        self._input_buffer.append(batch)
        self._input_buffer_tuples += size
        if cap is not None:
            self._update_backpressure()

    # Seed-era name, kept as the compatibility surface.
    enqueue = on_batch

    # ----------------------------------------------------- ingress backpressure
    def ingress_credit(self) -> int:
        """Tuples this node currently accepts from its sources.

        Zero while backpressured (occupancy crossed the high watermark and
        has not yet fallen back to the low one); otherwise the remaining
        room under the hard cap, net of credit already reserved by other
        sources this round.  Unbounded nodes never push back.
        """
        cap = self.max_ingress_tuples
        if cap is None:
            return 2**62
        self._update_backpressure()
        if self._backpressured:
            return 0
        return max(0, cap - self._input_buffer_tuples - self._ingress_reserved)

    def reserve_ingress(self, num_tuples: int) -> None:
        """Promise buffer room to an in-flight send (released on arrival)."""
        self._ingress_reserved += num_tuples
        self._update_backpressure()

    def note_paced(self, num_tuples: int) -> None:
        """Account tuples a source held back under backpressure."""
        self.stats.paced_tuples += num_tuples

    @property
    def backpressured(self) -> bool:
        return self._backpressured

    def _update_backpressure(self) -> None:
        occupancy = self._input_buffer_tuples + self._ingress_reserved
        if self._backpressured:
            if occupancy <= self._ingress_low:
                self._backpressured = False
        elif occupancy >= self._ingress_high:
            self._backpressured = True
            self.stats.backpressure_engagements += 1

    def on_sic_update(self, query_id: str, sic_value: float) -> None:
        """Handle an ``updateSIC`` message from a query coordinator."""
        self._reported_sic[query_id] = float(sic_value)

    # Seed-era name, kept as the compatibility surface.
    receive_sic_update = on_sic_update

    def input_buffer_size(self) -> int:
        """Number of tuples currently waiting in the input buffer."""
        return self._input_buffer_tuples

    def tracker_footprint(self) -> "PyTuple[int, int]":
        """(window events, history samples) over the node's local result-SIC
        trackers — the memwatch probes for this node's tracker state."""
        events = sum(t.window_event_count() for t in self._local_trackers.values())
        history = sum(t.history_size() for t in self._local_trackers.values())
        return events, history

    # --------------------------------------------------------------- main loop
    def on_shed_round(
        self, now: float, timer: Optional[callable] = None
    ) -> NodeTickResult:
        """Run one shedding round: detect overload, shed, process.

        Args:
            now: current simulation time (end of the round's interval).
            timer: optional callable returning wall-clock seconds, used to
                measure the shedder's execution time for the §7.6 experiment.
        """
        result = NodeTickResult()
        self.stats.ticks += 1
        capacity = self.cost_model.capacity(self.budget_per_interval)
        result.capacity = capacity

        buffered = self._input_buffer
        buffered_tuples = self._input_buffer_tuples
        self._input_buffer = []
        self._input_buffer_tuples = 0
        if self.max_ingress_tuples is not None:
            # Draining the buffer is what releases backpressure (hysteresis:
            # occupancy must fall to the low watermark, not merely below
            # the high one).
            self._update_backpressure()
        overloaded = buffered_tuples > capacity
        result.overloaded = overloaded
        if overloaded:
            self.stats.overloaded_ticks += 1

        reported = self._current_sic_view(now)
        if overloaded:
            self.stats.shedder_invocations += 1
            start = timer() if timer else None
            decision = self.shedder.shed(
                buffered, capacity, reported, total_tuples=buffered_tuples
            )
            if timer and start is not None:
                self.stats.shedder_time_seconds += timer() - start
            kept = decision.kept
            result.shed_tuples = decision.shed_tuples
            self.stats.shed_tuples += decision.shed_tuples
            result.kept_tuples = decision.kept_tuples
        else:
            kept = buffered
            result.kept_tuples = buffered_tuples
        self.stats.kept_tuples += result.kept_tuples

        # Keep the local tracker windows flat even when coordinator updates
        # shadow them (their lazy expiry in current_sic() never runs then).
        for tracker in self._local_trackers.values():
            tracker.expire(now)

        # Route kept batches to their fragments and record the kept SIC in the
        # node's local estimate of each query's result SIC.
        for batch in kept:
            fragment = self._resolve_fragment(batch)
            if fragment is None:
                continue
            fragment.deliver(batch, origin_fragment_id=batch.origin_fragment_id)
            tracker = self._local_trackers.get(batch.query_id)
            if tracker is not None:
                tracker.record_result(now, batch.sic)

        # Process every hosted fragment.
        total_cost = 0.0
        for fragment in self.fragments.values():
            output: FragmentOutput = fragment.process(now)
            total_cost += output.processing_cost
            result.downstream.extend(output.downstream)
            result.results.extend(output.results)
        if result.kept_tuples:
            # The capacity threshold counts input-buffer tuples, so the cost
            # model is fed the per-IB-tuple cost (the fragment-internal fan-out
            # is folded into the cost, not into the tuple count).
            self.cost_model.observe(result.kept_tuples, total_cost)
            self.stats.processed_cost += total_cost
        return result

    # Seed-era name, kept as the compatibility surface.
    tick = on_shed_round

    # ----------------------------------------------------------------- helpers
    def _current_sic_view(self, now: float) -> Dict[str, float]:
        """The per-query result SIC values the shedder should balance."""
        view: Dict[str, float] = {}
        for query_id in self.hosted_queries():
            if self._use_coordinator_updates and query_id in self._reported_sic:
                view[query_id] = self._reported_sic[query_id]
            else:
                tracker = self._local_trackers.get(query_id)
                view[query_id] = tracker.current_sic(now) if tracker else 0.0
        return view

    def _resolve_fragment(self, batch: Batch) -> Optional[QueryFragment]:
        fragment_id = batch.fragment_id
        if fragment_id:
            fragment = self.fragments.get(fragment_id)
            if fragment is not None:
                return fragment
        # Fall back to the only hosted fragment of the batch's query, if any;
        # the per-query answer is cached so the candidate scan runs once per
        # query, not once per batch.
        query_id = batch.query_id
        cache = self._query_fragment_cache
        if query_id in cache:
            return cache[query_id]
        candidates = [
            f for f in self.fragments.values() if f.query_id == query_id
        ]
        resolved = candidates[0] if len(candidates) == 1 else None
        cache[query_id] = resolved
        return resolved

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FspsNode(id={self.node_id!r}, fragments={len(self.fragments)}, "
            f"budget={self.budget_per_interval})"
        )
