"""Fragment placement strategies (§2.1 C1, §3 "Query deployment").

In an FSPS the mapping of query fragments to nodes is decided by users and
constrained by local policies; it is therefore an *input* to THEMIS rather
than something the system optimises.  The evaluation nevertheless needs to
generate placements with controlled properties: balanced round-robin layouts,
uniformly random layouts and Zipf-skewed layouts (used in the node-scalability
experiment, §7.3, to model sites that host far more fragments than others).

A placement is simply a mapping ``fragment_id -> node_id``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from ..streaming.query import QueryFragment

__all__ = [
    "Placement",
    "PlacementStrategy",
    "ExplicitPlacement",
    "RoundRobinPlacement",
    "RandomPlacement",
    "ZipfPlacement",
    "make_placement_strategy",
]


@dataclass
class Placement:
    """The result of placing a set of fragments on a set of nodes."""

    assignments: Dict[str, str] = field(default_factory=dict)

    def node_for(self, fragment_id: str) -> str:
        try:
            return self.assignments[fragment_id]
        except KeyError:
            raise KeyError(f"fragment {fragment_id!r} has not been placed") from None

    def fragments_on(self, node_id: str) -> List[str]:
        return [f for f, n in self.assignments.items() if n == node_id]

    def load_per_node(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for node_id in self.assignments.values():
            counts[node_id] = counts.get(node_id, 0) + 1
        return counts

    def __len__(self) -> int:
        return len(self.assignments)


class PlacementStrategy:
    """Interface of placement strategies."""

    def place(
        self, fragments: Sequence[QueryFragment], node_ids: Sequence[str]
    ) -> Placement:
        raise NotImplementedError

    @staticmethod
    def _check(fragments: Sequence[QueryFragment], node_ids: Sequence[str]) -> None:
        if not node_ids:
            raise ValueError("cannot place fragments on an empty set of nodes")
        if not fragments:
            raise ValueError("no fragments to place")


class ExplicitPlacement(PlacementStrategy):
    """Use a user-provided ``fragment_id -> node_id`` mapping."""

    def __init__(self, assignments: Mapping[str, str]) -> None:
        self.assignments = dict(assignments)

    def place(
        self, fragments: Sequence[QueryFragment], node_ids: Sequence[str]
    ) -> Placement:
        self._check(fragments, node_ids)
        placement = Placement()
        nodes = set(node_ids)
        for fragment in fragments:
            node = self.assignments.get(fragment.fragment_id)
            if node is None:
                raise ValueError(f"no node assigned for fragment {fragment.fragment_id}")
            if node not in nodes:
                raise ValueError(f"unknown node {node!r} for fragment {fragment.fragment_id}")
            placement.assignments[fragment.fragment_id] = node
        return placement


class RoundRobinPlacement(PlacementStrategy):
    """Spread fragments evenly over nodes, in deterministic order.

    Fragments of the same query are spread over distinct nodes whenever there
    are at least as many nodes as fragments per query, which matches the
    paper's assumption that each fragment of a query runs on a different node.
    """

    def place(
        self, fragments: Sequence[QueryFragment], node_ids: Sequence[str]
    ) -> Placement:
        self._check(fragments, node_ids)
        placement = Placement()
        cursor = 0
        per_query_used: Dict[str, set] = {}
        for fragment in fragments:
            used = per_query_used.setdefault(fragment.query_id, set())
            node = None
            for offset in range(len(node_ids)):
                candidate = node_ids[(cursor + offset) % len(node_ids)]
                if candidate not in used or len(used) >= len(node_ids):
                    node = candidate
                    cursor = (cursor + offset + 1) % len(node_ids)
                    break
            if node is None:
                node = node_ids[cursor % len(node_ids)]
                cursor += 1
            used.add(node)
            placement.assignments[fragment.fragment_id] = node
        return placement


class RandomPlacement(PlacementStrategy):
    """Place every fragment on a uniformly random node (same-query fragments
    avoid sharing a node when possible)."""

    def __init__(self, seed: Optional[int] = 0) -> None:
        self.rng = random.Random(seed)

    def place(
        self, fragments: Sequence[QueryFragment], node_ids: Sequence[str]
    ) -> Placement:
        self._check(fragments, node_ids)
        placement = Placement()
        per_query_used: Dict[str, set] = {}
        for fragment in fragments:
            used = per_query_used.setdefault(fragment.query_id, set())
            available = [n for n in node_ids if n not in used] or list(node_ids)
            node = self.rng.choice(available)
            used.add(node)
            placement.assignments[fragment.fragment_id] = node
        return placement


class ZipfPlacement(PlacementStrategy):
    """Skewed placement: node ``i`` is chosen with probability ∝ 1 / (i+1)^s.

    Reproduces the skewed workload distribution of characteristic C1 and the
    Zipf deployment of the scalability experiment (§7.3).
    """

    def __init__(self, exponent: float = 1.0, seed: Optional[int] = 0) -> None:
        if exponent < 0:
            raise ValueError(f"exponent must be non-negative, got {exponent}")
        self.exponent = float(exponent)
        self.rng = random.Random(seed)

    def _weights(self, count: int) -> List[float]:
        return [1.0 / ((rank + 1) ** self.exponent) for rank in range(count)]

    def place(
        self, fragments: Sequence[QueryFragment], node_ids: Sequence[str]
    ) -> Placement:
        self._check(fragments, node_ids)
        weights = self._weights(len(node_ids))
        placement = Placement()
        per_query_used: Dict[str, set] = {}
        for fragment in fragments:
            used = per_query_used.setdefault(fragment.query_id, set())
            candidates = [
                (node, weight)
                for node, weight in zip(node_ids, weights)
                if node not in used
            ]
            if not candidates:
                candidates = list(zip(node_ids, weights))
            nodes, node_weights = zip(*candidates)
            node = self.rng.choices(nodes, weights=node_weights, k=1)[0]
            used.add(node)
            placement.assignments[fragment.fragment_id] = node
        return placement


def make_placement_strategy(
    name: str,
    seed: Optional[int] = 0,
    zipf_exponent: float = 1.0,
    explicit: Optional[Mapping[str, str]] = None,
) -> PlacementStrategy:
    """Factory used by experiment configurations."""
    normalized = name.strip().lower().replace("_", "-")
    if normalized in ("round-robin", "roundrobin", "rr"):
        return RoundRobinPlacement()
    if normalized == "random":
        return RandomPlacement(seed=seed)
    if normalized == "zipf":
        return ZipfPlacement(exponent=zipf_exponent, seed=seed)
    if normalized == "explicit":
        if explicit is None:
            raise ValueError("explicit placement requires the 'explicit' mapping")
        return ExplicitPlacement(explicit)
    raise ValueError(f"unknown placement strategy {name!r}")
